"""Benchmark of the persistent counts cache: re-tracing must be skipped.

The acceptance floor for the program layer's counts namespace: a warm
re-estimate of an RSA-scale (n >= 1024) modular exponentiation against a
store that has already traced it is **>= 10x faster** than the cold run —
with a *fresh* ``EstimateCache``, so no in-memory memo can answer; only
the store can skip the work.

Two warmth levels are asserted:

* same spec — the result store answers directly (result namespace);
* different budget — a different *result* address for the same workload,
  so the full pipeline re-runs, but the counts come from the
  ``repro-counts-v1`` namespace instead of re-streaming the 1024-bit
  modexp emission.

The shared default factory designer is pre-warmed with one throwaway
estimate before any timing, so both ratios measure the counts work the
store elides — not the designer's one-time per-(qubit, scheme) catalog
build, which every run shares.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    EstimateCache,
    EstimateSpec,
    ProgramRef,
    Registry,
    ResultStore,
    run_specs,
)

BITS = 1024


def _spec(budget: float) -> EstimateSpec:
    return EstimateSpec(
        program=ProgramRef(kind="modexp", bits=BITS),
        qubit="qubit_maj_ns_e4",
        budget=budget,
        backend="counting",
    )


@pytest.fixture()
def registry() -> Registry:
    registry = Registry()
    # Warm the shared designer/distance catalogs on a spec that shares no
    # store address with the timed runs (tiny program, third budget).
    warmup = EstimateSpec(
        program=ProgramRef(kind="modexp", bits=16),
        qubit="qubit_maj_ns_e4",
        budget=1e-2,
    )
    assert run_specs([warmup], registry=registry, cache=EstimateCache())[0].ok
    return registry


def test_warm_counts_reestimate_is_10x_faster(tmp_path, registry):
    store = ResultStore(tmp_path)

    start = time.perf_counter()
    cold = run_specs(
        [_spec(1e-3)], registry=registry, store=store, cache=EstimateCache()
    )[0]
    cold_s = time.perf_counter() - start
    assert cold.ok and not cold.from_store
    counts_key = _spec(1e-3).program.counts_cache_key(registry, "counting")
    assert store.get_counts(counts_key) is not None  # the trace persisted

    # Same spec, fresh in-memory cache: the result namespace answers.
    start = time.perf_counter()
    warm_same = run_specs(
        [_spec(1e-3)], registry=registry, store=store, cache=EstimateCache()
    )[0]
    warm_same_s = time.perf_counter() - start
    assert warm_same.ok and warm_same.from_store
    assert warm_same.result == cold.result

    # Different budget, fresh in-memory cache: a result-store miss — the
    # pipeline re-runs, but the counts namespace skips the n=1024 trace.
    start = time.perf_counter()
    warm_counts = run_specs(
        [_spec(1e-4)], registry=registry, store=store, cache=EstimateCache()
    )[0]
    warm_counts_s = time.perf_counter() - start
    assert warm_counts.ok and not warm_counts.from_store

    floor = 10.0
    assert cold_s / warm_same_s >= floor, (
        f"warm same-spec re-run only {cold_s / warm_same_s:.1f}x faster "
        f"(cold {cold_s:.3f}s, warm {warm_same_s:.3f}s)"
    )
    assert cold_s / warm_counts_s >= floor, (
        f"warm counts-cache re-run only {cold_s / warm_counts_s:.1f}x faster "
        f"(cold {cold_s:.3f}s, warm {warm_counts_s:.3f}s)"
    )


def test_counts_cache_result_identical_to_retrace(tmp_path, registry):
    """Counts served from the store change nothing about the estimate."""
    store = ResultStore(tmp_path)
    with_store = run_specs(
        [_spec(1e-3)], registry=registry, store=store, cache=EstimateCache()
    )[0]
    # Second run resolves counts purely from the namespace (fresh cache),
    # under a *different* budget so the full pipeline re-runs on top.
    cached = run_specs(
        [_spec(1e-4)], registry=registry, store=store, cache=EstimateCache()
    )[0]
    bare = run_specs([_spec(1e-4)], registry=registry, cache=EstimateCache())[0]
    assert with_store.ok and cached.ok and bare.ok
    assert cached.result == bare.result
