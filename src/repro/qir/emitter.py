"""Emitter: IR circuits back to textual QIR.

Produces the dynamic-allocation dialect (`__quantum__rt__qubit_allocate`
per qubit) that :func:`repro.qir.parse_qir` accepts, so circuits
round-trip. Temporary-AND pairs have no QIR intrinsic; they lower to their
standard realization (CCiX for the compute, measurement + reset for the
uncompute) with the same logical counts.
"""

from __future__ import annotations

from ..ir import Circuit
from ..ir.ops import Op

_SIMPLE = {
    Op.X: "x",
    Op.Y: "y",
    Op.Z: "z",
    Op.H: "h",
    Op.CX: "cnot",
    Op.CZ: "cz",
    Op.SWAP: "swap",
    Op.CCX: "ccx",
    Op.CCZ: "ccz",
    Op.CCIX: "ccix",
}
_ADJ = {Op.S: ("s", "body"), Op.S_ADJ: ("s", "adj"), Op.T: ("t", "body"), Op.T_ADJ: ("t", "adj")}
_ROTATIONS = {Op.RX: "rx", Op.RY: "ry", Op.RZ: "rz"}


def emit_qir(circuit: Circuit, entry_point: str = "main") -> str:
    """Serialize a circuit to QIR text.

    Raises ``ValueError`` for circuits containing injected estimates
    (``ACCOUNT`` has no QIR representation).
    """
    lines = [f"define void @{entry_point}() {{", "entry:"]
    names: dict[int, str] = {}
    next_qubit = 0
    next_result = 0

    def q(qubit: int) -> str:
        return f"%Qubit* {names[qubit]}"

    for op, q0, q1, q2, param in circuit.instructions:
        if op == Op.ALLOC:
            names[q0] = f"%q{next_qubit}"
            next_qubit += 1
            lines.append(
                f"  {names[q0]} = call %Qubit* @__quantum__rt__qubit_allocate()"
            )
        elif op == Op.RELEASE:
            lines.append(
                f"  call void @__quantum__rt__qubit_release({q(q0)})"
            )
            del names[q0]
        elif op in _SIMPLE:
            gate = _SIMPLE[op]
            args = ", ".join(q(x) for x in (q0, q1, q2) if x != -1)
            lines.append(f"  call void @__quantum__qis__{gate}__body({args})")
        elif op in _ADJ:
            gate, variant = _ADJ[op]
            lines.append(f"  call void @__quantum__qis__{gate}__{variant}({q(q0)})")
        elif op in _ROTATIONS:
            gate = _ROTATIONS[op]
            lines.append(
                f"  call void @__quantum__qis__{gate}__body(double {param!r}, {q(q0)})"
            )
        elif op == Op.AND:
            # Lower to the CCiX realization: identical logical counts.
            lines.append(
                "  call void @__quantum__qis__ccix__body("
                f"{q(q0)}, {q(q1)}, {q(q2)})"
            )
        elif op == Op.AND_UNCOMPUTE:
            # Measurement-based uncompute: one measurement (+ classically
            # controlled Clifford fix-up, free); the following RELEASE in
            # the stream emits the qubit_release call.
            lines.append(
                f"  %r{next_result} = call %Result* @__quantum__qis__m__body({q(q2)})"
            )
            next_result += 1
        elif op == Op.MEASURE:
            lines.append(
                f"  %r{next_result} = call %Result* @__quantum__qis__m__body({q(q0)})"
            )
            next_result += 1
        elif op == Op.RESET:
            lines.append(f"  call void @__quantum__qis__reset__body({q(q0)})")
        elif op == Op.ACCOUNT:
            raise ValueError(
                "circuits containing account_for_estimates cannot be emitted "
                "to QIR; estimates have no gate-level representation"
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled opcode {Op(op).name}")

    lines.append("  ret void")
    lines.append("}")
    return "\n".join(lines) + "\n"
