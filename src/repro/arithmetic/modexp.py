"""In-place modular multiplication and modular exponentiation.

The missing piece between :class:`~repro.arithmetic.modular.ModularMultiplier`
(out-of-place ``acc += x*k mod N``) and Shor's algorithm is *in-place*
multiplication ``|x> -> |x*k mod N>``, built with the standard
two-register dance (requires ``gcd(k, N) = 1`` so ``k`` is invertible):

    |x>|0>   --acc += x*k-->   |x>|xk>
             --swap-->         |xk>|x>
             --acc -= x*k^-1-->|xk>|0>      (x = (xk) * k^{-1}, so it zeroes)

Controlled in-place multiplication conditions the swap and uses the
imprint trick inside the adders; :func:`modexp` chains one controlled
in-place multiplication by ``k^(2^i) mod N`` per exponent bit — the exact
workload Gidney's windowed-arithmetic paper accelerates.
"""

from __future__ import annotations

from typing import Sequence

from ..counts import LogicalCounts
from ..ir import Builder, Circuit, CircuitBuilder
from ..ir.counting import CountingBuilder
from .modular import ModularMultiplier
from .tally import GateTally


def _modular_inverse(value: int, modulus: int) -> int:
    """Modular inverse via extended Euclid; raises if not coprime."""
    g, x = _extended_gcd(value % modulus, modulus)
    if g != 1:
        raise ValueError(
            f"{value} is not invertible modulo {modulus} (gcd = {g}); "
            "in-place modular multiplication needs an invertible factor"
        )
    return x % modulus


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x = gcd (mod b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


def mod_mul_inplace(
    builder: Builder,
    x: Sequence[int],
    constant: int,
    modulus: int,
    *,
    window: int | None = None,
    control: int | None = None,
) -> None:
    """In-place ``x = x * constant mod modulus`` (``x < modulus``).

    ``constant`` must be coprime with the modulus. With ``control`` given,
    the operation applies only when the control is set (the two
    multiplications are built from controlled modular additions and the
    swap becomes a Fredkin ladder).
    """
    n = len(x)
    constant %= modulus
    inverse = _modular_inverse(constant, modulus)

    forward = ModularMultiplier(n, modulus, constant, window=window)
    backward = ModularMultiplier(
        n, modulus, (modulus - inverse) % modulus, window=window
    )

    acc = builder.allocate_register(n)
    if control is None:
        forward.emit(builder, x, acc)  # acc = x*k
        for xq, aq in zip(x, acc):
            builder.swap(xq, aq)  # x <-> acc
        backward.emit(builder, x, acc)  # acc += x * (-k^{-1}) = xk*(-k^{-1}) + x... zeroes
    else:
        forward.emit_controlled(builder, control, x, acc)
        for xq, aq in zip(x, acc):
            _fredkin(builder, control, xq, aq)
        backward.emit_controlled(builder, control, x, acc)
    builder.release_register(acc)


def _fredkin(builder: Builder, control: int, a: int, b: int) -> None:
    """Controlled swap from CNOTs and one Toffoli."""
    builder.cx(b, a)
    builder.ccx(control, a, b)
    builder.cx(b, a)


def emit_modexp(
    builder: Builder,
    base: int,
    modulus: int,
    exponent_bits: int,
    *,
    window: int | None = None,
) -> None:
    """Emit the quantum core of Shor's order finding onto ``builder``.

    ``|e>|1> -> |e>|base^e mod N>``: one controlled in-place
    multiplication by ``base^(2^i) mod N`` per exponent bit, followed by
    readout of the result register. Every multiplication block shares one
    ``subcircuit`` key — the per-bit constants differ, but all of them
    are coprime powers of the base, whose count contribution depends only
    on ``(n, modulus, window)`` — so the counting backend traces a single
    block and replays the remaining ``2n - 1`` in O(1) each.
    """
    if base % modulus in (0,):
        raise ValueError("base must be nonzero modulo the modulus")
    n = max((modulus - 1).bit_length(), 1)
    exponent = builder.allocate_register(exponent_bits)
    result = builder.allocate_register(n)
    for q in exponent:
        builder.h(q)
    builder.x(result[0])  # |1>
    factor = base % modulus
    key = ("modexp-ctrl-mul", n, modulus, window)
    for bit in range(exponent_bits):
        control = exponent[bit]

        def block(b, factor=factor, control=control):
            mod_mul_inplace(
                b, result, factor, modulus, window=window, control=control
            )

        builder.subcircuit(key, block)
        factor = (factor * factor) % modulus
    for q in result:
        builder.measure(q)


def modexp_circuit(
    base: int,
    modulus: int,
    exponent_bits: int,
    *,
    window: int | None = None,
) -> Circuit:
    """The materialized order-finding circuit (see :func:`emit_modexp`).

    The result register holds ``n = bit-length capacity`` of the modulus;
    the exponent register holds ``exponent_bits`` qubits in uniform
    superposition (Hadamards), as in phase estimation.
    """
    builder = CircuitBuilder(f"modexp-{modulus}")
    emit_modexp(builder, base, modulus, exponent_bits, window=window)
    return builder.finish()


def modexp_counting_counts(
    base: int,
    modulus: int,
    exponent_bits: int,
    *,
    window: int | None = None,
) -> LogicalCounts:
    """Logical counts of :func:`modexp_circuit` via the streaming backend.

    Emits the identical construction into a
    :class:`~repro.ir.counting.CountingBuilder` — no instruction stream is
    ever stored, and the repeated multiplication blocks are memoized — so
    RSA-scale moduli (n >= 2048) count in seconds and O(n) memory where
    the materialized path would need billions of instruction tuples.
    Bit-for-bit equal to ``modexp_circuit(...).logical_counts()``.
    """
    builder = CountingBuilder(f"modexp-{modulus}")
    emit_modexp(builder, base, modulus, exponent_bits, window=window)
    return builder.logical_counts()


def modexp_logical_counts(
    modulus_bits: int,
    exponent_bits: int | None = None,
    *,
    window: int | None = None,
) -> LogicalCounts:
    """Closed-form logical counts of :func:`modexp_circuit` at scale.

    Mirrors the construction exactly (validated against traced circuits in
    the tests): per exponent bit, two controlled out-of-place modular
    multiplications plus an n-Toffoli Fredkin ladder; final readout of the
    result register. The exponent register defaults to ``2n`` (standard
    order finding).

    The mirror evaluates a representative modulus ``2^n - 1``; adder and
    lookup tallies depend only on the modulus *bit length*, so the counts
    are exact for any modulus of exactly ``modulus_bits`` bits.
    """
    n = modulus_bits
    if n < 2:
        raise ValueError("modular exponentiation needs a modulus of >= 2 bits")
    if exponent_bits is None:
        exponent_bits = 2 * n
    representative = (1 << n) - 1
    mult = ModularMultiplier(n, representative, window=window)
    per_mult = mult.tally_controlled()
    fredkin = GateTally(ccz=n)
    per_bit = per_mult * 2 + fredkin
    total = per_bit * exponent_bits + GateTally(measurements=n)

    # Peak width (see mod_add's workspace analysis): the exponent and
    # result registers, the in-place multiplication's accumulator, and the
    # deepest modular-addition moment — comparison scratch + constant
    # scratch + carries (3n + 4) — on top of the per-mode local register.
    mod_add_peak = 3 * n + 4
    if mult.window == 0:
        local = n + 1  # constant-imprint scratch + the control AND ancilla
    else:
        local = n  # lookup temp register
    width = exponent_bits + 2 * n + local + mod_add_peak
    return total.to_logical_counts(width)
