"""First-class programs: the open workload catalog behind the spec layer.

The paper's estimator is a *pre-layout* pipeline: any logical workload —
however it was authored — reduces to :class:`~repro.counts.LogicalCounts`
before a single layout or QEC decision is made (Sec. III-A). This module
makes that entry point an open set. A :class:`Program` is one workload in
declarative form: it knows how to serialize itself (``to_body``), how to
address itself (:meth:`Program.content_hash` over a canonical body), and
how to produce its counts through any counting backend
(:meth:`Program.counts` / :meth:`Program.counts_factory`).

Program *kinds* are registered in a module-level catalog
(:func:`register_program_kind`), so the spec layer's
:class:`~repro.estimator.spec.ProgramRef` dispatches over whatever is
registered instead of a hard-coded tuple. Shipped kinds:

``multiplier``
    One of the paper's multiplication algorithms (``algorithm``, ``bits``).
``modexp``
    n-bit modular exponentiation, the RSA workload (``bits``, optional
    ``exponentBits`` / ``window``).
``qir``
    A QIR program — ``file`` (path to ``.ll`` text) or inline ``text`` —
    parsed by :func:`repro.qir.parse_qir`. Content addressing always
    hashes the program *text*, never the path, so an edited file can
    never be served stale cached counts or results.
``formula``
    Closed-form counts: each :class:`LogicalCounts` field is a
    :class:`repro.formulas.Formula` string over user ``variables``
    (e.g. ``{"t_count": "4 * n^3", "variables": {"n": 1024}}``).
``random``
    A seeded :class:`repro.ir.random_circuits.RandomCircuitGenerator`
    workload (``operations``, optional ``seed`` / ``minQubits``).
``counts``
    Inline :class:`LogicalCounts` — used by scenario files to register a
    known workload under a name.

Named program instances live in the :class:`repro.registry.Registry`
``programs`` section (seeded with ``rsa_1024`` / ``rsa_2048``, extended
by scenario files), so specs, sweeps, the CLI (``--program NAME``), and
the service all reference workloads the same way they reference hardware
profiles.

Every kind resolves counts through a *picklable* zero-argument factory
(module-level functions under :func:`functools.partial`), so batch
workers construct and trace circuits themselves, and the factory can be
wrapped by the persistent counts cache
(:meth:`repro.estimator.store.ResultStore.get_counts`).

Counts are backend-independent by contract (asserted by the test suite):
kinds with no closed form (``qir``, ``random``) answer the ``formula``
backend via the streaming counting builder, so one spec hash — which
excludes the backend — always maps to one set of counts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache, partial
from pathlib import Path
from typing import Any, Callable, ClassVar, Iterator, Mapping

from .counts import LogicalCounts

__all__ = [
    "PROGRAM_SCHEMA",
    "FormulaProgram",
    "InlineCountsProgram",
    "ModexpProgram",
    "MultiplierProgram",
    "Program",
    "ProgramError",
    "QIRProgram",
    "RandomProgram",
    "forbid_file_programs",
    "make_program",
    "program_from_dict",
    "program_kind_listing",
    "program_kinds",
    "register_program_kind",
]

#: Version tag of the canonical program form; part of every program
#: content hash (and, with the backend, of every counts-cache key), so a
#: schema change can never alias old cached counts.
PROGRAM_SCHEMA = "repro-program-v1"


class ProgramError(ValueError):
    """Raised for invalid program definitions (a :class:`ValueError`)."""


_GUARD = threading.local()


@contextmanager
def forbid_file_programs() -> Iterator[None]:
    """Reject file-referencing programs parsed inside this context.

    A ``{"qir": {"file": ...}}`` body makes *this* process read the path
    at parse time. The estimation service wraps every untrusted-payload
    parse (specs, sweep documents, and therefore sweep-axis expansion) in
    this context, so a remote client can never make the server read — or
    probe, or leak through parse errors — server-local files, however the
    reference is spelled. Guarding at parse time covers every
    construction path; scanning payload JSON would not (axis fragments
    assemble program bodies only during expansion). Thread-local, so
    concurrent operator-trusted parses (CLI, scenario loads in other
    threads) are unaffected.
    """
    previous = getattr(_GUARD, "forbid_files", False)
    _GUARD.forbid_files = True
    try:
        yield
    finally:
        _GUARD.forbid_files = previous


def _file_programs_forbidden() -> bool:
    return getattr(_GUARD, "forbid_files", False)


# -- field validation helpers ------------------------------------------------


def _check_fields(
    kind: str, body: Mapping[str, Any], required: set[str], optional: set[str]
) -> None:
    unknown = set(body) - required - optional
    if unknown:
        raise ProgramError(
            f"unknown {kind} program fields {sorted(unknown)}; "
            f"known: {sorted(required | optional)}"
        )
    missing = required - set(body)
    if missing:
        raise ProgramError(f"a {kind} program needs {sorted(missing)}")


def _int_field(kind: str, name: str, value: Any, minimum: int) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ProgramError(
            f"{kind} {name!r} must be an int >= {minimum}, got {value!r}"
        )
    return value


# -- picklable counts factories (module-level for process fan-out) -----------


def _multiplier_counts(algorithm: str, bits: int, backend: str) -> LogicalCounts:
    """Resolve one multiplier's counts (runs inside batch workers)."""
    from .arithmetic import multiplier_by_name

    return multiplier_by_name(algorithm, bits).backend_counts(backend)


def _modexp_counts(
    bits: int, exponent_bits: int, window: int | None, backend: str
) -> LogicalCounts:
    """Resolve an n-bit modular exponentiation's counts (in workers)."""
    from .arithmetic import (
        modexp_circuit,
        modexp_counting_counts,
        modexp_logical_counts,
    )

    if backend == "formula":
        return modexp_logical_counts(bits, exponent_bits, window=window)
    modulus = (1 << bits) - 1  # counts depend only on the bit length
    if backend == "counting":
        return modexp_counting_counts(2, modulus, exponent_bits, window=window)
    return modexp_circuit(2, modulus, exponent_bits, window=window).logical_counts()


@lru_cache(maxsize=8)
def _qir_circuit(text: str, name: str):
    """Parse QIR text into a circuit (memoized: eager validation at spec
    construction and lazy counts resolution share one parse)."""
    from .qir import parse_qir

    return parse_qir(text, name=name)


def _qir_counts(text: str, name: str) -> LogicalCounts:
    """Trace a QIR program's counts (the trace itself runs only when no
    cache — in-memory or the store's counts namespace — answers first;
    ``Circuit.logical_counts`` memoizes the traced result)."""
    return _qir_circuit(text, name).logical_counts()


def _formula_counts(
    counts_items: tuple[tuple[str, Any], ...],
    variable_items: tuple[tuple[str, float], ...],
) -> LogicalCounts:
    """Evaluate per-field formulas into logical counts."""
    from .formulas import Formula

    env = dict(variable_items)
    values: dict[str, int] = {}
    for field_name, source in counts_items:
        value = Formula(source)(**env)
        rounded = round(value)
        if abs(value - rounded) > 1e-6 or rounded < 0:
            raise ProgramError(
                f"formula program field {field_name!r} evaluated to {value!r}; "
                "counts must be non-negative integers"
            )
        values[field_name] = int(rounded)
    try:
        return LogicalCounts.from_dict(values)
    except (TypeError, ValueError) as exc:
        raise ProgramError(f"invalid formula program counts: {exc}") from exc


def _random_counts(
    seed: int, operations: int, min_qubits: int, backend: str
) -> LogicalCounts:
    """Counts of a seeded random circuit through the chosen backend.

    There is no closed form for a random workload, so the ``formula``
    backend answers via the streaming counting builder — identical counts
    (asserted by the equality tests), just never materialized.
    """
    from .ir.random_circuits import RandomCircuitGenerator

    generator = RandomCircuitGenerator(seed=seed, min_qubits=min_qubits)
    if backend == "materialize":
        return generator.generate(operations).logical_counts()
    from .ir.counting import CountingBuilder

    builder = CountingBuilder("random")
    generator.emit_onto(builder, operations)
    return builder.finish().logical_counts()


def _inline_counts(counts: LogicalCounts) -> LogicalCounts:
    return counts


# -- the Program abstraction -------------------------------------------------


@dataclass(frozen=True)
class Program:
    """One declarative workload: serializable, hashable, countable.

    Subclasses are frozen dataclasses registered under a ``kind`` string;
    :meth:`from_body` validates the JSON body eagerly (a typo in a spec
    or scenario file is a spec error, not a crashed batch worker) and
    :meth:`counts_factory` returns a *picklable* zero-argument callable
    resolving :class:`LogicalCounts` through a counting backend.
    """

    #: Kind string this class is registered under.
    kind: ClassVar[str]
    #: Human-readable field summary for unknown-kind error listings.
    fields_help: ClassVar[str]

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "Program":
        raise NotImplementedError

    def to_body(self) -> dict[str, Any]:
        """JSON body (the value under the kind key); lossless round-trip."""
        raise NotImplementedError

    def canonical_body(self) -> dict[str, Any]:
        """The body whose JSON keys :meth:`content_hash` (defaults omitted,
        external references like file paths inlined)."""
        return self.to_body()

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        raise NotImplementedError

    def counts(self, backend: str = "formula") -> LogicalCounts:
        """Resolve this program's pre-layout logical counts."""
        return self.counts_factory(backend)()

    def content_hash(self) -> str:
        """SHA-256 identity over the schema tag plus the canonical body.

        Two programs producing the same canonical body share one hash —
        this (plus the backend) keys the persistent counts cache, so a
        workload is traced once ever per store, not once per process.
        Memoized by program equality: sweep points re-referencing one
        workload hash its (possibly large) body once, not once per point.
        """
        return _content_hash(self)

    def counts_identity(self) -> str:
        """The identity under which this program's *traced counts* cache.

        Defaults to :meth:`content_hash`. Kinds whose serialized body
        omits defaults that resolve to explicit values override this with
        the normalized form, so equivalent spellings share one trace (in
        the batch memo and the store's counts namespace) even though
        their serialized bodies — and thus spec hashes — differ.
        """
        return self.content_hash()


@lru_cache(maxsize=256)
def _content_hash(program: Program) -> str:
    canonical = {"kind": program.kind, "program": program.canonical_body()}
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"{PROGRAM_SCHEMA}\n{payload}".encode()).hexdigest()


#: Open catalog of program kinds (kind string -> adapter class).
_KINDS: dict[str, type[Program]] = {}


def register_program_kind(cls: type[Program]) -> type[Program]:
    """Register a :class:`Program` subclass under its ``kind`` (decorator)."""
    existing = _KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"program kind {cls.kind!r} is already registered")
    _KINDS[cls.kind] = cls
    return cls


def program_kinds() -> dict[str, type[Program]]:
    """The registered kinds (kind string -> adapter class), a copy."""
    return dict(_KINDS)


def program_kind_listing() -> str:
    """Every registered kind with its fields, for lookup error messages."""
    return "; ".join(
        f"{kind} ({cls.fields_help})" for kind, cls in sorted(_KINDS.items())
    )


def make_program(kind: str, body: Any) -> Program:
    """Build a program of a registered kind from its JSON body.

    Raises :class:`ProgramError` for unknown kinds — listing every
    registered kind with its required fields — and for invalid bodies.
    """
    cls = _KINDS.get(kind)
    if cls is None:
        raise ProgramError(
            f"unknown program kind {kind!r}; available kinds: "
            f"{program_kind_listing()}"
        )
    if not isinstance(body, Mapping):
        raise ProgramError(
            f"a {kind} program body must be a JSON object, got {body!r}"
        )
    return cls.from_body(body)


def program_from_dict(data: Any) -> Program:
    """Parse a one-key ``{"<kind>": {...}}`` program document."""
    if not isinstance(data, Mapping) or len(data) != 1:
        raise ProgramError(
            "a program document is an object with exactly one program kind "
            f"as key — available kinds: {program_kind_listing()} — got {data!r}"
        )
    ((kind, body),) = data.items()
    return make_program(kind, body)


@lru_cache(maxsize=128)
def _factory_cache(program: Program, backend: str) -> Callable[[], LogicalCounts]:
    """Identity-stable factories: equal (program, backend) pairs share one
    factory object, so the batch engine's identity deduplication works
    even before the explicit program memo key."""
    return program.counts_factory(backend)


def cached_counts_factory(
    program: Program, backend: str
) -> Callable[[], LogicalCounts]:
    """The shared factory instance for a (program, backend) pair."""
    return _factory_cache(program, backend)


# -- shipped kinds -----------------------------------------------------------


@register_program_kind
@dataclass(frozen=True)
class MultiplierProgram(Program):
    """One of the paper's multipliers (schoolbook / karatsuba / windowed)."""

    algorithm: str
    bits: int

    kind: ClassVar[str] = "multiplier"
    fields_help: ClassVar[str] = "algorithm, bits"

    def __post_init__(self) -> None:
        if not self.algorithm or not isinstance(self.algorithm, str):
            raise ProgramError("a multiplier program needs an 'algorithm'")
        from .arithmetic import MULTIPLIER_ALGORITHMS

        if self.algorithm not in MULTIPLIER_ALGORITHMS:
            # Validate eagerly: counts resolve lazily inside batch
            # workers, where an unknown name would crash the whole
            # sweep instead of failing this one spec.
            raise ProgramError(
                f"unknown multiplier {self.algorithm!r}; available: "
                f"{sorted(MULTIPLIER_ALGORITHMS)}"
            )
        _int_field("multiplier", "bits", self.bits, 1)

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "MultiplierProgram":
        _check_fields("multiplier", body, {"algorithm", "bits"}, set())
        return cls(algorithm=body["algorithm"], bits=body["bits"])

    def to_body(self) -> dict[str, Any]:
        return {"algorithm": self.algorithm, "bits": self.bits}

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        return partial(_multiplier_counts, self.algorithm, self.bits, backend)


@register_program_kind
@dataclass(frozen=True)
class ModexpProgram(Program):
    """n-bit modular exponentiation (the RSA workload, paper Sec. V).

    ``exponent_bits`` defaults to ``2 * bits`` (standard order finding)
    and ``window`` to the cost-balancing size; defaults are omitted from
    the serialized and canonical bodies, exactly as the closed
    ``ProgramRef`` serialized them — stored hashes are unchanged.
    """

    bits: int
    exponent_bits: int | None = None
    window: int | None = None

    kind: ClassVar[str] = "modexp"
    fields_help: ClassVar[str] = "bits[, exponentBits, window]"

    def __post_init__(self) -> None:
        _int_field("modexp", "bits", self.bits, 2)
        if self.exponent_bits is not None:
            _int_field("modexp", "exponentBits", self.exponent_bits, 1)
        if self.window is not None:
            _int_field("modexp", "window", self.window, 0)

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "ModexpProgram":
        _check_fields("modexp", body, {"bits"}, {"exponentBits", "window"})
        return cls(
            bits=body["bits"],
            exponent_bits=body.get("exponentBits"),
            window=body.get("window"),
        )

    def to_body(self) -> dict[str, Any]:
        body: dict[str, Any] = {"bits": self.bits}
        if self.exponent_bits is not None:
            body["exponentBits"] = self.exponent_bits
        if self.window is not None:
            body["window"] = self.window
        return body

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        exponent_bits = (
            self.exponent_bits if self.exponent_bits is not None else 2 * self.bits
        )
        return partial(_modexp_counts, self.bits, exponent_bits, self.window, backend)

    def counts_identity(self) -> str:
        # `{"bits": n}` and `{"bits": n, "exponentBits": 2n}` are the same
        # workload: normalize the default so both share one trace, even
        # though their serialized bodies (and spec hashes) stay distinct.
        if self.exponent_bits is not None:
            return self.content_hash()
        return dataclasses.replace(self, exponent_bits=2 * self.bits).content_hash()


@register_program_kind
@dataclass(frozen=True)
class QIRProgram(Program):
    """A QIR program: a ``.ll`` file path or inline QIR ``text``.

    The file is read — and the text parsed — eagerly at construction, so
    an unreadable path or uninterpretable instruction fails as a spec
    error, never inside a batch worker. Content addressing always covers
    the *text* (see :meth:`canonical_body`), so editing a referenced file
    changes every hash and can never be served stale cached counts.
    """

    text: str
    file: str | None = None

    kind: ClassVar[str] = "qir"
    fields_help: ClassVar[str] = "file or text"

    def __post_init__(self) -> None:
        if not isinstance(self.text, str) or not self.text.strip():
            raise ProgramError("a qir program needs non-empty QIR text")
        from .qir import QIRParseError

        try:
            # Parse eagerly (an uninterpretable instruction must fail the
            # spec, not a batch worker); counting waits for the factory.
            _qir_circuit(self.text, self._name())
        except QIRParseError as exc:
            raise ProgramError(f"invalid qir program: {exc}") from exc

    def _name(self) -> str:
        return Path(self.file).stem if self.file else "qir-program"

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "QIRProgram":
        _check_fields("qir", body, set(), {"file", "text"})
        file, text = body.get("file"), body.get("text")
        if (file is None) == (text is None):
            raise ProgramError("a qir program needs exactly one of 'file' or 'text'")
        if file is not None:
            if not isinstance(file, str) or not file:
                raise ProgramError(f"qir 'file' must be a path string, got {file!r}")
            if _file_programs_forbidden():
                raise ProgramError(
                    "qir 'file' references are not accepted here; inline "
                    "the program 'text' instead"
                )
            try:
                text = Path(file).read_text()
            except OSError as exc:
                raise ProgramError(f"cannot read QIR file {file}: {exc}") from exc
            return cls(text=text, file=file)
        if not isinstance(text, str):
            raise ProgramError(f"qir 'text' must be a string, got {text!r}")
        return cls(text=text)

    def to_body(self) -> dict[str, Any]:
        # The file spelling round-trips (from_dict re-reads the path);
        # clients submitting to a remote service should use 'text'.
        if self.file is not None:
            return {"file": self.file}
        return {"text": self.text}

    def canonical_body(self) -> dict[str, Any]:
        return {"text": self.text}

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        # The backend is irrelevant: QIR arrives as one explicit
        # instruction stream, already traced by the parser.
        return partial(_qir_counts, self.text, self._name())


@register_program_kind
@dataclass(frozen=True)
class FormulaProgram(Program):
    """Closed-form counts: one formula per :class:`LogicalCounts` field.

    ``counts`` maps LogicalCounts field names to
    :class:`repro.formulas.Formula` sources (strings or plain numbers)
    over the names bound in ``variables`` — the same little language QEC
    schemes and distillation units use for their model parameters.
    """

    formulas: tuple[tuple[str, Any], ...]
    variables: tuple[tuple[str, float], ...] = ()

    kind: ClassVar[str] = "formula"
    fields_help: ClassVar[str] = "counts[, variables]"

    def __post_init__(self) -> None:
        from .formulas import Formula, FormulaError

        if not self.formulas:
            raise ProgramError("a formula program needs a non-empty 'counts' map")
        bound = {name for name, _ in self.variables}
        for field_name, source in self.formulas:
            try:
                formula = Formula(source)
            except (FormulaError, TypeError) as exc:
                raise ProgramError(
                    f"invalid formula for {field_name!r}: {exc}"
                ) from exc
            free = formula.free_variables - bound
            if free:
                raise ProgramError(
                    f"formula for {field_name!r} uses unbound variables "
                    f"{sorted(free)}; bind them under 'variables'"
                )
        # Evaluate once eagerly: negative, fractional, or structurally
        # invalid counts are spec errors, not batch-worker crashes.
        _formula_counts(self.formulas, self.variables)

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "FormulaProgram":
        _check_fields("formula", body, {"counts"}, {"variables"})
        raw_counts = body["counts"]
        if not isinstance(raw_counts, Mapping) or not raw_counts:
            raise ProgramError(
                "formula 'counts' must be a non-empty object mapping "
                "LogicalCounts fields to formulas"
            )
        raw_variables = body.get("variables") or {}
        if not isinstance(raw_variables, Mapping):
            raise ProgramError("formula 'variables' must be an object of numbers")
        for name, value in raw_variables.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProgramError(
                    f"formula variable {name!r} must be a number, got {value!r}"
                )
        return cls(
            formulas=tuple(sorted(raw_counts.items())),
            variables=tuple(sorted(raw_variables.items())),
        )

    def to_body(self) -> dict[str, Any]:
        body: dict[str, Any] = {"counts": dict(self.formulas)}
        if self.variables:
            body["variables"] = dict(self.variables)
        return body

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        # Closed form: every backend evaluates the same formulas.
        return partial(_formula_counts, self.formulas, self.variables)


@register_program_kind
@dataclass(frozen=True)
class RandomProgram(Program):
    """A seeded random-circuit workload (fuzzing / load generation)."""

    operations: int
    seed: int = 0
    min_qubits: int = 3

    kind: ClassVar[str] = "random"
    fields_help: ClassVar[str] = "operations[, seed, minQubits]"

    def __post_init__(self) -> None:
        _int_field("random", "operations", self.operations, 1)
        _int_field("random", "seed", self.seed, 0)
        _int_field("random", "minQubits", self.min_qubits, 1)

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "RandomProgram":
        _check_fields("random", body, {"operations"}, {"seed", "minQubits"})
        return cls(
            operations=body["operations"],
            seed=body.get("seed", 0),
            min_qubits=body.get("minQubits", 3),
        )

    def to_body(self) -> dict[str, Any]:
        body: dict[str, Any] = {"operations": self.operations}
        if self.seed != 0:
            body["seed"] = self.seed
        if self.min_qubits != 3:
            body["minQubits"] = self.min_qubits
        return body

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        return partial(
            _random_counts, self.seed, self.operations, self.min_qubits, backend
        )


@register_program_kind
@dataclass(frozen=True)
class InlineCountsProgram(Program):
    """Known logical counts registered as a named workload.

    Canonicalizes to the same ``{"counts": {...}}`` shape an inline-counts
    spec uses, so a spec naming this program and a spec carrying the same
    literal counts share one resolved hash (and one stored result).
    """

    logical_counts: LogicalCounts

    kind: ClassVar[str] = "counts"
    fields_help: ClassVar[str] = "LogicalCounts fields"

    def __post_init__(self) -> None:
        if not isinstance(self.logical_counts, LogicalCounts):
            raise ProgramError(
                "a counts program wraps LogicalCounts, got "
                f"{type(self.logical_counts).__name__}"
            )

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "InlineCountsProgram":
        try:
            return cls(logical_counts=LogicalCounts.from_dict(dict(body)))
        except (TypeError, ValueError) as exc:
            raise ProgramError(f"invalid counts program: {exc}") from exc

    def to_body(self) -> dict[str, Any]:
        return self.logical_counts.to_dict()

    def counts_factory(self, backend: str) -> Callable[[], LogicalCounts]:
        return partial(_inline_counts, self.logical_counts)
