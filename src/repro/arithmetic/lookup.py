"""QROM-style table lookup via unary iteration (windowed arithmetic core).

:func:`lookup` XORs ``table[address]`` into a target register, where the
address is a small quantum register and the table is classical — the
"quantum circuit equivalent of a look-up table" the paper attributes to
windowed multiplication (Sec. V, citing arXiv:1905.07682).

The implementation is the recursive select tree: branch on the top address
bit, with each branch guarded by a temporary AND of the incoming control
and the (possibly negated) address bit. Leaves write their table entry
with CNOTs. Cost for a ``w``-bit address: ``2^(w+1) - 4`` CCiX (``w >= 2``)
and as many measurements; zero CCZ/T.

Uncomputation (:func:`unlookup_adjoint`) replays the recorded tape in
reverse. The data-write CNOTs undo for free; the select-tree ANDs that
the forward pass already uncomputed internally are re-computed and
re-uncomputed, so an unlookup costs the same ``2^(w+1) - 4`` CCiX as the
lookup. (Gidney's measurement-based unlookup gets this down to
``O(2^(w/2))``, but it requires X-basis measurements that the reversible
simulator cannot check; since lookup cost is dominated by the adjacent
``Theta(n)``-AND addition for every sensible window size, we take the
simulable variant and note the constant in DESIGN.md.)
"""

from __future__ import annotations

from typing import Sequence

from ..ir import Builder
from ..ir.circuit import Instruction
from .tally import GateTally


def _write_entry(
    builder: Builder,
    control: int | None,
    value: int,
    target: Sequence[int],
) -> None:
    for position, qubit in enumerate(target):
        if (value >> position) & 1:
            if control is None:
                builder.x(qubit)
            else:
                builder.cx(control, qubit)


def _select(
    builder: Builder,
    control: int | None,
    address: Sequence[int],
    table: Sequence[int],
    lo: int,
    span: int,
    target: Sequence[int],
) -> None:
    """Apply entries ``table[lo : lo+span]`` under ``control``."""
    if span == 1 or not address:
        if lo < len(table):
            _write_entry(builder, control, table[lo], target)
        return
    bit = address[-1]
    rest = address[:-1]
    half = span // 2
    if lo + half >= len(table):
        # Entire upper half is out of range (implicit zeros): only recurse
        # into the lower half, conditioned on the bit being 0 — but since
        # the upper half contributes nothing, condition-free descent on the
        # negated bit suffices.
        builder.x(bit)
        if control is None:
            _select(builder, bit, rest, table, lo, half, target)
        else:
            t = builder.and_compute(control, bit)
            _select(builder, t, rest, table, lo, half, target)
            builder.and_uncompute(control, bit, t)
        builder.x(bit)
        return
    if control is None:
        # Top level: the address bit itself is the control.
        builder.x(bit)
        _select(builder, bit, rest, table, lo, half, target)
        builder.x(bit)
        _select(builder, bit, rest, table, lo + half, half, target)
    else:
        builder.x(bit)
        t0 = builder.and_compute(control, bit)
        _select(builder, t0, rest, table, lo, half, target)
        builder.and_uncompute(control, bit, t0)
        builder.x(bit)
        t1 = builder.and_compute(control, bit)
        _select(builder, t1, rest, table, lo + half, half, target)
        builder.and_uncompute(control, bit, t1)


def lookup(
    builder: Builder,
    address: Sequence[int],
    table: Sequence[int],
    target: Sequence[int],
) -> None:
    """``target ^= table[address]`` (missing entries are zero).

    ``address`` is little-endian; ``table`` may have up to ``2^len(address)``
    non-negative entries, each fitting in ``target``.
    """
    w = len(address)
    if len(table) > (1 << w):
        raise ValueError(
            f"table of {len(table)} entries needs more than {w} address bits"
        )
    for index, value in enumerate(table):
        if value < 0:
            raise ValueError(f"table entry {index} is negative: {value}")
        if value >> len(target):
            raise ValueError(
                f"table entry {index} ({value}) does not fit in the "
                f"{len(target)}-qubit target"
            )
    if not table:
        return
    _select(builder, None, address, table, 0, 1 << w, target)


def lookup_recorded(
    builder: Builder,
    address: Sequence[int],
    table: Sequence[int],
    target: Sequence[int],
) -> list[Instruction]:
    """Perform :func:`lookup` while recording its tape for later unlookup."""
    builder.start_recording()
    lookup(builder, address, table, target)
    return builder.stop_recording()


def unlookup_adjoint(builder: Builder, tape: list[Instruction]) -> None:
    """Undo a recorded lookup; every AND becomes a free measured uncompute."""
    builder.emit_adjoint(tape)


def lookup_counts(address_bits: int, num_entries: int) -> GateTally:
    """Gate tally of :func:`lookup` (mirrors the recursion exactly)."""
    if num_entries > (1 << address_bits):
        raise ValueError("table larger than the address space")
    if num_entries == 0:
        return GateTally()

    def select_ands(control: bool, bits: int, lo: int, span: int) -> int:
        if span == 1 or bits == 0:
            return 0
        half = span // 2
        if lo + half >= num_entries:
            inner = select_ands(True, bits - 1, lo, half)
            return (1 + inner) if control else inner
        if not control:
            return select_ands(True, bits - 1, lo, half) + select_ands(
                True, bits - 1, lo + half, half
            )
        return 2 + select_ands(True, bits - 1, lo, half) + select_ands(
            True, bits - 1, lo + half, half
        )

    ands = select_ands(False, address_bits, 0, 1 << address_bits)
    return GateTally(ccix=ands, measurements=ands)


def unlookup_adjoint_counts(address_bits: int, num_entries: int) -> GateTally:
    """Gate tally of :func:`unlookup_adjoint`: ANDs become measurements."""
    forward = lookup_counts(address_bits, num_entries)
    return GateTally(ccix=0, measurements=forward.ccix)


def lookup_ancillas(address_bits: int) -> int:
    """Peak live AND ancillas during a lookup (one per tree level)."""
    return max(0, address_bits - 1)
