"""QIR front end (paper Sec. IV-B.2).

The tool "is built on top of Quantum Intermediate Representation and can
use it as an input algorithm specification, either in raw form or emitted
using PyQIR or another QIR-generation tool". This package implements that
input path for the textual form of QIR: a parser for the LLVM-IR subset
that QIR programs use (``%Qubit*`` SSA values, ``__quantum__qis__*``
intrinsic calls, ``__quantum__rt__qubit_allocate``/``release``) and an
emitter producing the same dialect from an IR circuit, so programs can
round-trip.

Example
-------
>>> from repro.qir import parse_qir
>>> circuit = parse_qir('''
... define void @main() {
... entry:
...   %q0 = call %Qubit* @__quantum__rt__qubit_allocate()
...   call void @__quantum__qis__t__body(%Qubit* %q0)
...   %r0 = call %Result* @__quantum__qis__m__body(%Qubit* %q0)
...   call void @__quantum__rt__qubit_release(%Qubit* %q0)
...   ret void
... }
... ''')
>>> circuit.logical_counts().t_count
1
"""

from .parser import QIRParseError, parse_qir
from .emitter import emit_qir

__all__ = ["QIRParseError", "emit_qir", "parse_qir"]
