"""Tests for the planar-ISA lowering layer.

The key property: the operation-by-operation lowering and the closed-form
layout step (Sec. III-B formulas) must agree exactly on logical depth and
T-state demand for any circuit — the consistency of the paper's Fig. 1
pipeline.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import LogicalCounts
from repro.arithmetic import SchoolbookMultiplier, WindowedMultiplier
from repro.ir import CircuitBuilder
from repro.isa import ISAProgram, LogicalOperation, OperationKind, lower
from repro.isa.lowering import lowered_matches_layout


class TestUnitCosts:
    def test_t_gate(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.t(q)
        program = lower(b.finish(), synthesis_budget=0.0)
        assert len(program) == 1
        op = program.operations[0]
        assert op.kind is OperationKind.T_STATE_INJECTION
        assert (op.cycles, op.t_states) == (1, 1)

    def test_ccz_gadget(self):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        b.ccz(*q)
        b.ccx(*q)
        t = b.and_compute(q[0], q[1])
        b.and_uncompute(q[0], q[1], t)
        program = lower(b.finish(), synthesis_budget=0.0)
        gadgets = [op for op in program if op.kind is OperationKind.CCZ_GADGET]
        measurements = [op for op in program if op.kind is OperationKind.MEASUREMENT]
        assert len(gadgets) == 3  # CCZ + Toffoli + AND
        assert all((g.cycles, g.t_states) == (3, 4) for g in gadgets)
        assert len(measurements) == 1  # the AND uncompute

    def test_clifford_gates_vanish(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.h(q[0]); b.s(q[0]); b.cx(q[0], q[1]); b.swap(q[0], q[1]); b.z(q[1])
        program = lower(b.finish(), synthesis_budget=0.0)
        assert len(program) == 0
        assert program.depth == 1  # floor

    def test_rotation_costs_synthesis_length(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.rz(0.3, q)
        program = lower(b.finish(), synthesis_budget=1e-3)
        op = program.operations[0]
        assert op.kind is OperationKind.ROTATION_SYNTHESIS
        assert op.cycles == op.t_states == program.t_states_per_rotation
        expected = math.ceil(0.53 * math.log2(1 / 1e-3) + 5.3)
        assert program.t_states_per_rotation == expected

    def test_pi_over_4_rotation_lowers_to_t(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.rz(math.pi / 4, q)
        program = lower(b.finish(), synthesis_budget=0.0)
        assert program.operations[0].kind is OperationKind.T_STATE_INJECTION

    def test_operation_validation(self):
        with pytest.raises(ValueError, match="cycle"):
            LogicalOperation(OperationKind.MEASUREMENT, (0,), 0, 0)
        with pytest.raises(ValueError, match="layer"):
            LogicalOperation(OperationKind.MEASUREMENT, (0,), 1, 0, layer=3)
        with pytest.raises(ValueError, match="layer"):
            LogicalOperation(OperationKind.ROTATION_SYNTHESIS, (0,), 4, 4)


class TestRotationLayers:
    def test_parallel_rotations_share_a_layer(self):
        b = CircuitBuilder()
        q = b.allocate_register(4)
        for qubit in q:
            b.rz(0.1, qubit)
        program = lower(b.finish(), synthesis_budget=1e-3)
        layers = {op.layer for op in program}
        assert len(layers) == 1
        # depth = 4 (one injection cycle each) + t_rot (one shared layer)
        assert program.depth == 4 + program.t_states_per_rotation

    def test_entangler_forces_new_layer(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.rz(0.1, q[0])
        b.cx(q[0], q[1])  # Clifford, but carries the dependency
        b.rz(0.1, q[1])
        program = lower(b.finish(), synthesis_budget=1e-3)
        layers = {op.layer for op in program if op.layer is not None}
        assert len(layers) == 2

    def test_injected_estimates_layers_are_separate(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.rz(0.1, q)
        b.account_for_estimates(
            LogicalCounts(num_qubits=2, rotation_count=4, rotation_depth=2)
        )
        program = lower(b.finish(), synthesis_budget=1e-3)
        layers = {op.layer for op in program if op.layer is not None}
        assert len(layers) == 3  # 1 traced + 2 injected


class TestAgreementWithLayout:
    """Lowered depth/T-counts must equal the closed-form formulas exactly."""

    def _assert_agree(self, circuit, budget):
        program, layout = lowered_matches_layout(circuit, budget)
        assert program.total_t_states == layout.t_states
        assert program.depth == layout.logical_depth
        assert program.logical_qubits == layout.pre_layout.num_qubits

    def test_multiplier_circuits(self):
        for mult in (SchoolbookMultiplier(16), WindowedMultiplier(24)):
            self._assert_agree(mult.circuit(), 0.0)

    def test_rotation_circuit(self):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        for i, qubit in enumerate(q):
            b.rz(0.1 * (i + 1), qubit)
        b.cx(q[0], q[1])
        b.rz(0.7, q[1])
        b.t(q[2])
        b.ccz(*q)
        b.measure(q[0])
        self._assert_agree(b.finish(), 1e-3)

    def test_injected_estimates(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.t(q)
        b.account_for_estimates(
            LogicalCounts(
                num_qubits=7,
                t_count=11,
                ccz_count=3,
                rotation_count=5,
                rotation_depth=2,
                measurement_count=4,
            )
        )
        self._assert_agree(b.finish(), 1e-3)

    @given(
        ops=st.lists(
            st.sampled_from(["t", "ccz", "and", "rz0", "rz1", "cx", "m", "h"]),
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_any_circuit_agrees(self, ops):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        for op in ops:
            if op == "t":
                b.t(q[0])
            elif op == "ccz":
                b.ccz(*q)
            elif op == "and":
                t = b.and_compute(q[0], q[1])
                b.and_uncompute(q[0], q[1], t)
            elif op == "rz0":
                b.rz(0.21, q[0])
            elif op == "rz1":
                b.rz(0.43, q[1])
            elif op == "cx":
                b.cx(q[0], q[1])
            elif op == "m":
                b.measure(q[2])
            elif op == "h":
                b.h(q[1])
        circuit = b.finish()
        budget = 1e-3 if circuit.logical_counts().rotation_count else 0.0
        self._assert_agree(circuit, budget)
