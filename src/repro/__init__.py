"""repro — a reproduction of the Azure Quantum Resource Estimator (SC'23).

This library estimates the logical and physical resources required to run
quantum algorithms on fault-tolerant quantum computers, following
"Using Azure Quantum Resource Estimator for Assessing Performance of Fault
Tolerant Quantum Computation" (van Dam, Mykhailova, Soeken; SC 2023) and
its companion technical paper (Beverland et al., arXiv:2211.07629).

Quickstart
----------
>>> from repro import LogicalCounts, estimate, qubit_params
>>> counts = LogicalCounts(num_qubits=100, t_count=10**6, measurement_count=10**5)
>>> result = estimate(counts, qubit_params("qubit_gate_ns_e3"), budget=1e-3)
>>> print(result.summary())

Sweeps over many (program, qubit, scheme, budget, constraints) points go
through :func:`estimate_batch` (see :mod:`repro.estimator.batch`), which
memoizes cross-point work and optionally fans out over processes;
:func:`estimate_frontier` trades qubits against runtime on top of it.
Declarative, resumable sweeps with per-group Pareto frontiers are
:class:`SweepSpec` / :func:`run_sweep` (see :mod:`repro.estimator.sweep`
and the ``repro sweep`` CLI subcommand).

The case-study quantum arithmetic (schoolbook / Karatsuba / windowed
multiplication) lives in :mod:`repro.arithmetic`; figure reproduction
drivers live in :mod:`repro.experiments`.
"""

from .advantage import AdvantageAssessment, ImplementationLevel, assess
from .budget import ErrorBudget, ErrorBudgetPartition
from .counts import LogicalCounts
from .distillation import (
    DistillationRound,
    DistillationUnit,
    TFactory,
    TFactoryDesigner,
    design_t_factory,
)
from .estimator import (
    BatchOutcome,
    Constraints,
    EstimateCache,
    EstimateRequest,
    EstimateSpec,
    EstimationError,
    Frontier,
    FrontierGroup,
    FrontierPoint,
    FrontierSpec,
    PhysicalResourceEstimates,
    ProgramRef,
    ResultStore,
    SpecOutcome,
    SweepAxis,
    SweepPointOutcome,
    SweepQueue,
    SweepResult,
    SweepSpec,
    estimate,
    estimate_batch,
    estimate_frontier,
    run_specs,
    run_sweep,
    run_worker,
)
from .formulas import Formula
from .layout import layout_resources, logical_qubits_after_layout
from .programs import Program, program_from_dict
from .qec import (
    FLOQUET_CODE,
    LogicalQubit,
    QECScheme,
    SURFACE_CODE_GATE_BASED,
    SURFACE_CODE_MAJORANA,
    default_scheme_for,
    qec_scheme,
)
from .qubits import (
    InstructionSet,
    PREDEFINED_PROFILES,
    PhysicalQubitParams,
    qubit_params,
)
from .qir import emit_qir, parse_qir
from .registry import Registry, default_registry
from .report import render_report
from .synthesis import RotationSynthesis

__version__ = "0.1.0"

__all__ = [
    "AdvantageAssessment",
    "BatchOutcome",
    "Constraints",
    "DistillationRound",
    "DistillationUnit",
    "ErrorBudget",
    "ErrorBudgetPartition",
    "EstimateCache",
    "EstimateRequest",
    "EstimateSpec",
    "EstimationError",
    "FLOQUET_CODE",
    "Formula",
    "Frontier",
    "FrontierGroup",
    "FrontierPoint",
    "FrontierSpec",
    "ImplementationLevel",
    "InstructionSet",
    "LogicalCounts",
    "LogicalQubit",
    "PREDEFINED_PROFILES",
    "PhysicalQubitParams",
    "PhysicalResourceEstimates",
    "Program",
    "ProgramRef",
    "QECScheme",
    "Registry",
    "ResultStore",
    "RotationSynthesis",
    "SpecOutcome",
    "SURFACE_CODE_GATE_BASED",
    "SURFACE_CODE_MAJORANA",
    "SweepAxis",
    "SweepPointOutcome",
    "SweepQueue",
    "SweepResult",
    "SweepSpec",
    "TFactory",
    "TFactoryDesigner",
    "assess",
    "default_registry",
    "default_scheme_for",
    "design_t_factory",
    "emit_qir",
    "estimate",
    "estimate_batch",
    "estimate_frontier",
    "layout_resources",
    "logical_qubits_after_layout",
    "parse_qir",
    "program_from_dict",
    "qec_scheme",
    "qubit_params",
    "render_report",
    "run_specs",
    "run_sweep",
    "run_worker",
]
