"""Tests for the content-addressed persistent result store."""

from __future__ import annotations

import json
import random

import pytest

from repro import LogicalCounts, Registry, ResultStore, estimate, qubit_params
from repro.estimator.spec import EstimateSpec, run_specs
from repro.estimator.store import RESULT_SCHEMA, STORE_ENV_VAR, default_store_root

COUNTS = LogicalCounts(num_qubits=40, t_count=50_000, measurement_count=500)
HASH_A = "ab" + "0" * 62
HASH_B = "cd" + "1" * 62


@pytest.fixture()
def result():
    return estimate(COUNTS, qubit_params("qubit_gate_ns_e3"))


class TestPutGet:
    def test_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path)
        assert store.put(HASH_A, result, spec={"label": "x"})
        assert store.get(HASH_A) == result
        assert HASH_A in store
        assert list(store.keys()) == [HASH_A]
        assert len(store) == 1

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(HASH_A) is None
        assert HASH_A not in store

    def test_document_embeds_spec_and_schema(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result, spec={"label": "x"})
        document = store.get_raw(HASH_A)
        assert document["schema"] == RESULT_SCHEMA
        assert document["specHash"] == HASH_A
        assert document["spec"] == {"label": "x"}
        assert document["result"] == result.to_dict()

    def test_rewrite_is_idempotent(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.put(HASH_A, result)
        assert len(store) == 1
        assert store.get(HASH_A) == result

    def test_fanout_layout(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        expected = tmp_path / RESULT_SCHEMA / HASH_A[:2] / f"{HASH_A}.json"
        assert expected.is_file()
        assert store.path_for(HASH_A) == expected

    def test_malformed_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            store.path_for("../../etc/passwd")
        with pytest.raises(ValueError, match="malformed"):
            store.get("")

    def test_no_temp_files_left_behind(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.put(HASH_B, result)
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestRobustness:
    def test_corrupt_file_reads_as_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.path_for(HASH_A).write_text("{not json")
        assert store.get(HASH_A) is None

    def test_wrong_schema_tag_is_invisible(self, tmp_path, result):
        old = ResultStore(tmp_path, schema="repro-result-v0")
        old.put(HASH_A, result)
        current = ResultStore(tmp_path)
        assert current.get(HASH_A) is None
        assert len(current) == 0
        # And vice versa: the old namespace still reads its own entry.
        assert old.get(HASH_A) == result

    def test_mismatched_hash_inside_document_is_a_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        document = json.loads(store.path_for(HASH_A).read_text())
        document["specHash"] = HASH_B
        store.path_for(HASH_A).write_text(json.dumps(document))
        assert store.get(HASH_A) is None

    def test_unwritable_root_degrades_to_noop(self, tmp_path, result):
        # A root whose parent is a regular file can never be created
        # (works even when the suite runs as root, unlike chmod tricks).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = ResultStore(blocker / "store")
        assert store.put(HASH_A, result) is False
        assert store.get(HASH_A) is None

    def test_clear(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.put(HASH_B, result)
        assert store.clear() == 2
        assert len(store) == 0


class TestIntegrityDigest:
    def test_documents_carry_a_verified_digest(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        document = json.loads(store.path_for(HASH_A).read_text())
        assert isinstance(document.get("digest"), str)
        assert len(document["digest"]) == 64

    def test_pre_digest_document_reads_as_miss(self, tmp_path, result):
        # A v1-style document (no digest) must never be served.
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        document = json.loads(store.path_for(HASH_A).read_text())
        del document["digest"]
        store.path_for(HASH_A).write_text(json.dumps(document))
        assert store.get(HASH_A) is None

    def test_sweep_namespace_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        document = {"counts": {"total": 2, "ok": 2, "failed": 0}, "points": []}
        assert store.put_sweep(HASH_A, document)
        assert store.get_sweep(HASH_A) == document
        assert store.get_sweep(HASH_B) is None
        # Sweep documents are invisible to the result namespace.
        assert store.get(HASH_A) is None
        assert len(store) == 0

    def test_sweep_namespace_rejects_malformed_hash(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            store.sweep_path_for("../evil")


class TestCorruptionFuzz:
    """Seeded fuzz: any damaged store file is a miss, then recomputed.

    Truncations and byte flips must either break the JSON parse or fail
    the integrity digest — a corrupted result is *never* served. The
    end-to-end half asserts :func:`run_specs` treats the corruption as a
    miss, recomputes the point, and heals the store.
    """

    SPEC = EstimateSpec(
        program=LogicalCounts(num_qubits=30, t_count=10_000, measurement_count=200),
        qubit="qubit_gate_ns_e3",
    )

    @pytest.fixture()
    def warmed(self, tmp_path):
        store = ResultStore(tmp_path)
        registry = Registry()
        outcome = run_specs([self.SPEC], registry=registry, store=store)[0]
        assert outcome.ok and not outcome.from_store
        path = store.path_for(outcome.spec_hash)
        return store, registry, outcome, path, path.read_bytes()

    @staticmethod
    def _corrupt(pristine: bytes, rng: random.Random) -> bytes:
        if rng.random() < 0.5:
            cut = rng.randrange(0, len(pristine))  # truncate (maybe to empty)
            return pristine[:cut]
        index = rng.randrange(0, len(pristine))
        old = pristine[index]
        new = rng.choice([b for b in range(256) if b != old])
        return pristine[:index] + bytes([new]) + pristine[index + 1 :]

    @pytest.mark.parametrize("seed", range(25))
    def test_every_corruption_reads_as_a_miss(self, warmed, seed):
        store, _, outcome, path, pristine = warmed
        rng = random.Random(seed)
        path.write_bytes(self._corrupt(pristine, rng))
        assert store.get(outcome.spec_hash) is None, (
            f"seed {seed}: corrupted document was served"
        )
        assert store.get_raw(outcome.spec_hash) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_corrupted_points_are_recomputed_and_healed(self, warmed, seed):
        store, registry, outcome, path, pristine = warmed
        rng = random.Random(1000 + seed)
        path.write_bytes(self._corrupt(pristine, rng))
        again = run_specs([self.SPEC], registry=registry, store=store)[0]
        assert again.ok
        assert again.from_store is False, "a corrupt entry must not be served"
        assert again.result.to_dict() == outcome.result.to_dict()
        # The store healed: the recomputed document verifies again.
        assert store.get(outcome.spec_hash) is not None

    def test_byte_flip_in_embedded_spec_metadata_is_detected(self, warmed):
        # The digest covers the whole document, not just the result: a
        # flip inside the debug 'spec' section also reads as a miss.
        store, _, outcome, path, pristine = warmed
        index = pristine.index(b'"spec"') + len(b'"spec"') + 4
        flipped = pristine[:index] + bytes([pristine[index] ^ 0x01]) + pristine[index + 1 :]
        path.write_bytes(flipped)
        assert store.get_raw(outcome.spec_hash) is None


class TestStatsAndGc:
    """Operator visibility (`stats`) and litter reclamation (`gc`)."""

    @pytest.fixture()
    def store(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        return store

    def _plant_orphans(self, store, *, age_s=0.0):
        """Strand a writer tmp file, a lease, and a takeover tombstone."""
        from repro.estimator.store import QUEUE_SCHEMA

        lease_dir = store.root / QUEUE_SCHEMA / HASH_A / "leases"
        lease_dir.mkdir(parents=True, exist_ok=True)
        orphans = [
            store.root / RESULT_SCHEMA / ".deadbeef-crashed.tmp",
            lease_dir / "000000.lease",
            lease_dir / ".000000.lease.stale-pid1-feedf00d",
        ]
        for path in orphans:
            path.write_text('{"owner":"dead","deadline":0.0}')
        if age_s:
            import os
            import time

            stale = time.time() - age_s
            for path in orphans:
                os.utime(path, (stale, stale))
        return orphans

    def test_stats_counts_namespaces_and_orphans(self, store):
        orphans = self._plant_orphans(store)
        stats = store.stats()
        assert stats["namespaces"]["results"]["documents"] == 1
        assert stats["namespaces"]["results"]["bytes"] > 0
        for name in ("sweeps", "counts", "queue", "jobs"):
            assert stats["namespaces"][name]["documents"] == 0
        assert stats["orphans"]["files"] == len(orphans)
        assert stats["orphans"]["bytes"] == sum(
            path.stat().st_size for path in orphans
        )

    def test_gc_spares_fresh_files(self, store):
        self._plant_orphans(store)  # mtime = now: could be live
        report = store.gc(older_than_s=3600.0)
        assert report["removedFiles"] == 0
        assert report["reclaimedBytes"] == 0
        assert store.stats()["orphans"]["files"] == 3

    def test_gc_reclaims_expired_litter_and_reports_bytes(self, store, result):
        orphans = self._plant_orphans(store, age_s=7200.0)
        expected = sum(path.stat().st_size for path in orphans)
        report = store.gc(older_than_s=3600.0)
        assert report["removedFiles"] == len(orphans)
        assert report["reclaimedBytes"] == expected
        assert not any(path.exists() for path in orphans)
        # Documents are never gc candidates.
        assert store.get(HASH_A) == result
        assert store.stats()["orphans"]["files"] == 0

    def test_gc_zero_cutoff_takes_everything_orphaned(self, store):
        self._plant_orphans(store)
        report = store.gc(older_than_s=0.0)
        assert report["removedFiles"] == 3
        assert store.stats()["orphans"]["files"] == 0


class TestStatsTTLCache:
    """`stats()` is O(files) only on cache misses: the walk is TTL-cached."""

    def test_second_stats_within_ttl_does_no_walk(self, tmp_path, result):
        store = ResultStore(tmp_path, stats_ttl=3600.0)
        store.put(HASH_A, result)
        first = store.stats()
        walks = store.stats_walks
        second = store.stats()
        assert store.stats_walks == walks  # served from the snapshot
        assert second["namespaces"] == first["namespaces"]
        assert second["orphans"] == first["orphans"]

    def test_in_process_writes_invalidate_the_snapshot(self, tmp_path, result):
        store = ResultStore(tmp_path, stats_ttl=3600.0)
        store.put(HASH_A, result)
        assert store.stats()["namespaces"]["results"]["documents"] == 1
        store.put(HASH_B, result)
        # The TTL has not expired, but this process changed the disk —
        # the count must be current, not an hour stale.
        assert store.stats()["namespaces"]["results"]["documents"] == 2

    def test_refresh_forces_a_walk(self, tmp_path, result):
        store = ResultStore(tmp_path, stats_ttl=3600.0)
        store.put(HASH_A, result)
        store.stats()
        walks = store.stats_walks
        store.stats(refresh=True)
        assert store.stats_walks == walks + 1

    def test_zero_ttl_walks_every_call(self, tmp_path):
        store = ResultStore(tmp_path, stats_ttl=0.0)
        store.stats()
        walks = store.stats_walks
        store.stats()
        assert store.stats_walks == walks + 1

    def test_other_process_writes_hidden_only_until_refresh(
        self, tmp_path, result
    ):
        ours = ResultStore(tmp_path, stats_ttl=3600.0)
        assert ours.stats()["namespaces"]["results"]["documents"] == 0
        ResultStore(tmp_path).put(HASH_A, result)  # "another process"
        assert ours.stats()["namespaces"]["results"]["documents"] == 0
        assert ours.stats(refresh=True)["namespaces"]["results"]["documents"] == 1


class TestGcClockSkew:
    """gc compares ages, not raw wall-clock cutoffs (shared-store skew)."""

    @pytest.fixture()
    def store(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        return store

    def _plant_orphan(self, store, *, mtime_offset_s=0.0):
        """One stranded writer tmp file with its mtime shifted by offset."""
        import os
        import time

        path = store.root / RESULT_SCHEMA / ".deadbeef-crashed.tmp"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"torn":')
        when = time.time() + mtime_offset_s
        os.utime(path, (when, when))
        return path

    def test_far_future_mtime_is_collected_not_immortal(self, store):
        # Regression: a cutoff of now - older_than never reaches a file
        # stamped by a badly skewed clock, leaving it immortal litter.
        orphan = self._plant_orphan(store, mtime_offset_s=86_400.0)
        report = store.gc(older_than_s=3600.0)
        assert report["removedFiles"] == 1
        assert not orphan.exists()

    def test_slightly_future_mtime_is_spared_as_fresh(self, store):
        # A writer whose clock runs a little ahead (or our clock stepped
        # back) must keep its in-flight files — PR 7's "fresh files
        # spared" guarantee, now skew-tolerant.
        orphan = self._plant_orphan(store, mtime_offset_s=120.0)
        report = store.gc(older_than_s=3600.0)
        assert report["removedFiles"] == 0
        assert orphan.exists()

    def test_future_skew_tolerance_is_configurable(self, store):
        orphan = self._plant_orphan(store, mtime_offset_s=120.0)
        report = store.gc(older_than_s=3600.0, future_skew_s=60.0)
        assert report["removedFiles"] == 1
        assert not orphan.exists()

    def test_gc_invalidates_the_stats_snapshot(self, tmp_path, result):
        store = ResultStore(tmp_path, stats_ttl=3600.0)
        store.put(HASH_A, result)
        self._plant_orphan(store, mtime_offset_s=-7200.0)
        assert store.stats()["orphans"]["files"] == 1
        store.gc(older_than_s=3600.0)
        assert store.stats()["orphans"]["files"] == 0


class TestEviction:
    """LRU-by-mtime document eviction bounds the store's disk use."""

    def _put_aged(self, store, result, hashes, *, step_s=100.0):
        """Documents with strictly increasing mtimes (oldest first)."""
        import os
        import time

        base = time.time() - step_s * (len(hashes) + 1)
        for index, spec_hash in enumerate(hashes):
            store.put(spec_hash, result)
            when = base + index * step_s
            os.utime(store.path_for(spec_hash), (when, when))

    def _document_bytes(self, store):
        namespaces = store.stats(refresh=True)["namespaces"]
        return sum(
            namespaces[name]["bytes"] for name in store.EVICTABLE_NAMESPACES
        )

    def test_evicts_oldest_first_down_to_the_budget(self, tmp_path, result):
        store = ResultStore(tmp_path)
        hashes = [f"{i:02x}" + "0" * 62 for i in range(4)]
        self._put_aged(store, result, hashes)
        size = store.path_for(hashes[0]).stat().st_size
        report = store.evict(max_bytes=2 * size)
        assert report["evictedFiles"] == 2
        assert report["remainingBytes"] <= 2 * size
        assert store.get(hashes[0]) is None  # oldest two gone
        assert store.get(hashes[1]) is None
        assert store.get(hashes[2]) == result  # newest two kept
        assert store.get(hashes[3]) == result
        assert store.stats()["evictions"]["files"] == 2

    def test_under_budget_is_a_no_op(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        report = store.evict(max_bytes=10**9)
        assert report["evictedFiles"] == 0
        assert store.get(HASH_A) == result

    def test_never_touches_queue_leases_or_journal(self, tmp_path, result):
        from repro.estimator.store import JOBS_SCHEMA, QUEUE_SCHEMA

        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        chunk = store.root / QUEUE_SCHEMA / HASH_A / "chunks" / "000000.json"
        chunk.parent.mkdir(parents=True)
        chunk.write_text('{"chunk": 0}')
        lease = store.root / QUEUE_SCHEMA / HASH_A / "leases" / "000000.lease"
        lease.parent.mkdir(parents=True)
        lease.write_text('{"owner": "w1"}')
        journal = store.root / JOBS_SCHEMA / HASH_A[:2] / f"{HASH_A}.json"
        journal.parent.mkdir(parents=True)
        journal.write_text('{"status": "running"}')
        report = store.evict(max_bytes=0)
        assert store.get(HASH_A) is None  # documents evicted...
        assert chunk.exists()  # ...crash-safety substrate untouched
        assert lease.exists()
        assert journal.exists()
        assert report["remainingBytes"] == 0

    def test_memory_cache_entries_die_with_their_documents(
        self, tmp_path, result
    ):
        # Regression: the PR 8 read-through LRU must not serve a
        # document eviction removed from disk.
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        assert store.get(HASH_A) == result  # populates the memory cache
        assert store.get(HASH_A) == result  # cache hit
        assert store.memory_cache_stats()["results"]["hits"] >= 1
        store.evict(max_bytes=0)
        assert store.get(HASH_A) is None  # miss, never a stale cache hit

    def test_counts_memory_cache_invalidated_too(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ee" + "2" * 62
        store.put_counts(key, COUNTS)
        assert store.get_counts(key) == COUNTS
        store.evict(max_bytes=0)
        assert store.get_counts(key) is None

    def test_max_bytes_store_stays_bounded_across_writes(
        self, tmp_path, result
    ):
        probe = ResultStore(tmp_path / "probe")
        probe.put(HASH_A, result)
        size = probe.path_for(HASH_A).stat().st_size
        budget = 3 * size + size // 2
        store = ResultStore(tmp_path / "bounded", max_bytes=budget)
        hashes = [f"{i:02x}" + "3" * 62 for i in range(8)]
        for spec_hash in hashes:
            store.put(spec_hash, result)
            assert self._document_bytes(store) <= budget
        # The newest document always survives its own write.
        assert store.get(hashes[-1]) == result

    def test_evict_without_budget_is_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="budget"):
            store.evict()
        with pytest.raises(ValueError, match=">= 0"):
            store.evict(max_bytes=-1)


class TestDefaultRoot:
    def test_env_var_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "custom"))
        assert default_store_root() == tmp_path / "custom"
        assert ResultStore().root == tmp_path / "custom"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        root = default_store_root()
        assert root.name == "store"
        assert "repro" in str(root)


class TestMemoryCache:
    """The bounded in-process read-through LRU in front of get()."""

    def test_put_never_populates_the_cache(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        assert store.memory_cache_stats()["results"]["entries"] == 0

    def test_second_read_is_a_memory_hit(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        assert store.get(HASH_A) == result  # disk read, then cached
        assert store.get(HASH_A) == result  # served from memory
        assert store.memory_cache_stats()["results"] == {
            "hits": 1,
            "misses": 1,
            "entries": 1,
        }

    def test_cached_entry_outlives_disk_corruption(self, tmp_path, result):
        # Documents are immutable (same hash, same bytes), so a value
        # that passed the integrity digest once may be served from
        # memory even after the file is damaged behind our back.
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        assert store.get(HASH_A) == result
        store.path_for(HASH_A).write_text("{not json")
        assert store.get(HASH_A) == result
        # A fresh store (fresh cache) sees the corruption as a miss.
        assert ResultStore(tmp_path).get(HASH_A) is None

    def test_eviction_respects_capacity(self, tmp_path, result):
        store = ResultStore(tmp_path, cache_size=1)
        store.put(HASH_A, result)
        store.put(HASH_B, result)
        assert store.get(HASH_A) is not None
        assert store.get(HASH_B) is not None  # evicts HASH_A
        stats = store.memory_cache_stats()
        assert stats["capacity"] == 1
        assert stats["results"]["entries"] == 1
        assert store.get(HASH_A) is not None  # re-read from disk
        assert store.memory_cache_stats()["results"]["hits"] == 0

    def test_zero_capacity_disables_memory_caching(self, tmp_path, result):
        store = ResultStore(tmp_path, cache_size=0)
        store.put(HASH_A, result)
        assert store.get(HASH_A) == result
        assert store.get(HASH_A) == result
        assert store.memory_cache_stats()["results"]["entries"] == 0
        assert store.memory_cache_stats()["results"]["hits"] == 0

    def test_clear_drops_the_memory_cache_too(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        assert store.get(HASH_A) == result
        assert store.clear() == 1
        assert store.get(HASH_A) is None

    def test_counts_namespace_is_cached_independently(self, tmp_path):
        store = ResultStore(tmp_path)
        counts = LogicalCounts(num_qubits=3, t_count=10)
        store.put_counts(HASH_A, counts, backend="counting")
        assert store.get_counts(HASH_A) == counts
        assert store.get_counts(HASH_A) == counts
        stats = store.memory_cache_stats()
        assert stats["counts"] == {"hits": 1, "misses": 1, "entries": 1}
        assert stats["results"]["entries"] == 0

    def test_store_stats_embeds_memory_cache_block(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.get(HASH_A)
        block = store.stats()["memoryCache"]
        assert set(block) == {"capacity", "results", "counts"}
        assert block["results"]["entries"] == 1


class TestOptimizeNamespace:
    TRACE = {"status": "running", "rounds": [], "probes": [], "result": None}

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put_optimize(HASH_A, self.TRACE)
        assert store.get_optimize(HASH_A) == self.TRACE
        assert store.get_optimize(HASH_B) is None
        # Invisible to the result namespace.
        assert store.get(HASH_A) is None
        assert len(store) == 0

    def test_overwrite_updates_the_trace(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_optimize(HASH_A, self.TRACE)
        done = {**self.TRACE, "status": "done", "result": {"answer": {}}}
        assert store.put_optimize(HASH_A, done)
        assert store.get_optimize(HASH_A)["status"] == "done"

    def test_malformed_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            store.optimize_path_for("../evil")

    def test_corrupt_trace_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_optimize(HASH_A, self.TRACE)
        store.optimize_path_for(HASH_A).write_text("{not json")
        assert store.get_optimize(HASH_A) is None

    def test_stats_counts_the_namespace(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_optimize(HASH_A, self.TRACE)
        stats = store.stats()
        assert stats["namespaces"]["optimize"]["documents"] == 1
        assert stats["namespaces"]["optimize"]["bytes"] > 0


class TestPutMany:
    """Batched persistence writes documents identical to per-point put."""

    def test_documents_byte_identical_to_put(self, tmp_path, result):
        one = ResultStore(tmp_path / "one")
        many = ResultStore(tmp_path / "many")
        entries = [
            (HASH_A, result, {"label": "a"}),
            (HASH_B, result, {"label": "b"}),
        ]
        for spec_hash, res, spec in entries:
            one.put(spec_hash, res, spec=spec)
        assert many.put_many(entries) == 2
        for spec_hash, _, _ in entries:
            assert (
                many.path_for(spec_hash).read_bytes()
                == one.path_for(spec_hash).read_bytes()
            )

    def test_written_entries_are_retrievable_and_counted(self, tmp_path, result):
        store = ResultStore(tmp_path)
        assert store.put_many([(HASH_A, result, None), (HASH_B, result, None)]) == 2
        assert store.get(HASH_A) == result
        assert store.get(HASH_B) == result
        assert len(store) == 2

    def test_empty_batch_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put_many([]) == 0
        assert len(store) == 0

    def test_batch_respects_byte_budget_eviction(self, tmp_path, result):
        # A budget roughly one document wide: after a two-document batch
        # the store must have evicted back under (or near) the cap via
        # the single batched bookkeeping pass.
        probe = ResultStore(tmp_path / "probe")
        probe.put(HASH_A, result)
        document_bytes = probe.path_for(HASH_A).stat().st_size
        store = ResultStore(tmp_path / "capped", max_bytes=document_bytes + 8)
        store.put_many([(HASH_A, result, None), (HASH_B, result, None)])
        assert len(store) == 1
