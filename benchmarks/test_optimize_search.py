"""Benchmark of the adaptive inverse-design search (``repro optimize``).

The acceptance floor for the optimize layer, on the reference two-axis
RSA-2048 problem (2 qubit profiles x 128-budget geometric ladder,
``min-qubits`` under ``maxTFactories == 1`` with a physical-qubit cap):

* the adaptive search returns **exactly** the answer a dense sweep of
  the grid plus :func:`reduce_answer` produces,
* using **>= 10x fewer** estimator evaluations than the dense grid
  (cold store; a local run measures ~16x), and
* a warm re-run against the same store answers from the persisted
  ``repro-optimize-v1`` probe trace with **zero** evaluations.

Measured numbers are emitted to ``BENCH_optimize.json`` next to the
repository root for trend tracking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ResultStore
from repro.distillation import TFactoryDesigner
from repro.estimator.batch import EstimateCache
from repro.estimator.optimize import OptimizeSpec, reduce_answer, run_optimize
from repro.estimator.sweep import run_sweep

#: The reference inverse-design question: the smallest machine (by
#: physical qubits, capped at 60M) that factors RSA-2048 with one
#: T factory, searched over hardware profile x error budget.
REFERENCE_DOC = {
    "base": {
        "program": {"name": "rsa_2048"},
        "constraints": {"maxTFactories": 1},
    },
    "axes": [
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]},
        {"field": "budget", "geom": {"start": 1e-12, "factor": 1.2, "count": 128}},
    ],
    "objective": "min-qubits",
    "constraints": {"maxPhysicalQubits": 60_000_000},
}

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_optimize.json"


def _fresh_cache() -> EstimateCache:
    # A private designer: the shared default's factory catalogs may be
    # warm from other benchmarks, which would skew the timings.
    return EstimateCache(designer=TFactoryDesigner())


def test_optimize_reaches_dense_answer_10x_cheaper(tmp_path):
    spec = OptimizeSpec.from_dict(json.loads(json.dumps(REFERENCE_DOC)))
    grid = spec.num_points()
    store = ResultStore(tmp_path)

    start = time.perf_counter()
    cold = run_optimize(spec, store=store, cache=_fresh_cache())
    cold_s = time.perf_counter() - start
    assert cold.from_trace is False

    start = time.perf_counter()
    dense = run_sweep(spec.sweep_spec(), cache=_fresh_cache())
    dense_s = time.perf_counter() - start
    reference = reduce_answer(
        spec.objective,
        spec.constraints,
        [(point.index, point.result) for point in dense.points],
    )

    # Exact answer equality with the dense grid...
    assert cold.answer == reference
    assert cold.answer, "the reference problem must have a feasible answer"
    # ... at >= 10x fewer estimator evaluations.
    ratio = grid / max(1, cold.num_evaluations)
    assert ratio >= 10.0, (
        f"adaptive search used {cold.num_evaluations} evaluations for a "
        f"{grid}-point grid ({ratio:.1f}x); floor is 10x"
    )

    # Warm re-run: the stored probe trace answers with zero evaluations.
    start = time.perf_counter()
    warm = run_optimize(spec, store=store, cache=_fresh_cache())
    warm_s = time.perf_counter() - start
    assert warm.from_trace is True
    assert warm.num_evaluations == 0
    assert warm.to_dict() == cold.to_dict()

    print(
        f"\noptimize: {cold.num_evaluations}/{grid} evaluations "
        f"({ratio:.1f}x fewer), cold {cold_s:.2f}s "
        f"(dense sweep {dense_s:.2f}s), warm {warm_s:.4f}s (0 evaluations)"
    )
    BENCH_PATH.write_text(
        json.dumps(
            {
                "problem": REFERENCE_DOC,
                "gridPoints": grid,
                "evaluations": cold.num_evaluations,
                "probes": len(cold.probes),
                "evaluationRatio": round(ratio, 2),
                "answer": list(cold.answer),
                "coldSeconds": round(cold_s, 3),
                "denseSweepSeconds": round(dense_s, 3),
                "warmSeconds": round(warm_s, 4),
                "warmEvaluations": warm.num_evaluations,
            },
            indent=2,
        )
        + "\n"
    )
