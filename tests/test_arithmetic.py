"""Correctness tests for adders, lookups, and register helpers.

Every circuit is verified bit-exactly on the reversible simulator, and
every closed-form count function is checked against the tracer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic import (
    add_constant_controlled,
    add_constant_controlled_counts,
    add_into,
    add_into_counts,
    copy_register,
    lookup,
    lookup_counts,
    subtract_into,
    subtract_into_counts,
    write_constant,
)
from repro.arithmetic.lookup import lookup_recorded, unlookup_adjoint
from repro.ir import CircuitBuilder, validate
from repro.sim import run_reversible


def _init(reg, value):
    return {q: (value >> i) & 1 for i, q in enumerate(reg)}


class TestAddInto:
    @pytest.mark.parametrize("n,m", [(1, 1), (1, 2), (2, 2), (3, 5), (4, 4), (5, 8)])
    def test_exhaustive_small(self, n, m):
        for av in range(1 << n):
            for bv in range(1 << m):
                b = CircuitBuilder()
                ar, br = b.allocate_register(n), b.allocate_register(m)
                add_into(b, ar, br)
                c = b.finish()
                validate(c)
                sim = run_reversible(c, {**_init(ar, av), **_init(br, bv)})
                assert sim.read_register(br) == (av + bv) % (1 << m)
                assert sim.read_register(ar) == av  # addend preserved

    @given(
        n=st.integers(1, 24),
        extra=st.integers(0, 8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_sizes(self, n, extra, data):
        m = n + extra
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << m) - 1))
        b = CircuitBuilder()
        ar, br = b.allocate_register(n), b.allocate_register(m)
        add_into(b, ar, br)
        c = b.finish()
        sim = run_reversible(c, {**_init(ar, av), **_init(br, bv)})
        assert sim.read_register(br) == (av + bv) % (1 << m)

    def test_carry_out_via_extended_register(self):
        b = CircuitBuilder()
        ar = b.allocate_register(3)
        br = b.allocate_register(3)
        carry = b.allocate()
        add_into(b, ar, list(br) + [carry])
        c = b.finish()
        sim = run_reversible(c, {**_init(ar, 7), **_init(br, 5)})
        assert sim.read_register(list(br) + [carry]) == 12  # carry bit set

    def test_rejects_addend_longer_than_target(self):
        b = CircuitBuilder()
        ar, br = b.allocate_register(4), b.allocate_register(3)
        with pytest.raises(ValueError, match="longer than"):
            add_into(b, ar, br)

    @pytest.mark.parametrize("n,m", [(1, 1), (1, 2), (3, 3), (3, 7), (8, 8), (8, 16)])
    def test_counts_match_trace(self, n, m):
        b = CircuitBuilder()
        ar, br = b.allocate_register(n), b.allocate_register(m)
        add_into(b, ar, br)
        traced = b.finish().logical_counts()
        counted = add_into_counts(n, m)
        assert traced.ccix_count == counted.ccix
        assert traced.measurement_count == counted.measurements
        assert traced.ccz_count == counted.ccz == 0
        assert traced.t_count == counted.t == 0

    def test_cost_is_target_length_minus_one(self):
        assert add_into_counts(8, 8).ccix == 7
        assert add_into_counts(3, 10).ccix == 9  # carry ripple costs too
        assert add_into_counts(1, 1).ccix == 0


class TestSubtract:
    @given(
        n=st.integers(1, 16),
        extra=st.integers(0, 6),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_subtraction(self, n, extra, data):
        m = n + extra
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << m) - 1))
        b = CircuitBuilder()
        ar, br = b.allocate_register(n), b.allocate_register(m)
        subtract_into(b, ar, br)
        sim = run_reversible(b.finish(), {**_init(ar, av), **_init(br, bv)})
        assert sim.read_register(br) == (bv - av) % (1 << m)

    def test_add_then_subtract_roundtrip(self):
        b = CircuitBuilder()
        ar, br = b.allocate_register(6), b.allocate_register(8)
        add_into(b, ar, br)
        subtract_into(b, ar, br)
        sim = run_reversible(b.finish(), {**_init(ar, 45), **_init(br, 200)})
        assert sim.read_register(br) == 200

    def test_counts(self):
        assert subtract_into_counts(4, 6) == add_into_counts(4, 6)


class TestControlledConstantAdd:
    @given(
        n=st.integers(1, 12),
        ctrl=st.integers(0, 1),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_controlled_add(self, n, ctrl, data):
        k = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << (n + 1)) - 1))
        b = CircuitBuilder()
        control = b.allocate()
        br = b.allocate_register(n + 1)
        scratch = b.allocate_register(n)
        add_constant_controlled(b, control, k, br, scratch)
        for q in scratch:
            b.release(q)  # must be back to zero -> release check in sim
        c = b.finish()
        validate(c)
        sim = run_reversible(c, {control: ctrl, **_init(br, bv)})
        expected = (bv + ctrl * k) % (1 << (n + 1))
        assert sim.read_register(br) == expected
        assert sim.bit(control) == ctrl

    def test_zero_constant_emits_nothing(self):
        b = CircuitBuilder()
        control = b.allocate()
        br = b.allocate_register(4)
        scratch = b.allocate_register(4)
        before = len(b._instructions)
        add_constant_controlled(b, control, 0, br, scratch)
        assert len(b._instructions) == before
        assert add_constant_controlled_counts(0, 4).ccix == 0

    def test_constant_reduced_modulo_register(self):
        # constant with bits above the register width is reduced mod 2^m
        b = CircuitBuilder()
        control = b.allocate()
        br = b.allocate_register(3)
        scratch = b.allocate_register(3)
        add_constant_controlled(b, control, 0b1101, br, scratch)  # 13 -> 5 mod 8
        sim = run_reversible(b.finish(), {control: 1})
        assert sim.read_register(br) == 5

    def test_scratch_too_small_rejected(self):
        b = CircuitBuilder()
        control = b.allocate()
        br = b.allocate_register(5)
        scratch = b.allocate_register(2)
        with pytest.raises(ValueError, match="scratch"):
            add_constant_controlled(b, control, 0b11111, br, scratch)


class TestLookup:
    @pytest.mark.parametrize("w", [1, 2, 3, 4])
    def test_exhaustive_full_tables(self, w):
        table = [(v * 37 + 11) % 64 for v in range(1 << w)]
        for addr in range(1 << w):
            b = CircuitBuilder()
            ar, tr = b.allocate_register(w), b.allocate_register(6)
            lookup(b, ar, table, tr)
            sim = run_reversible(b.finish(), _init(ar, addr))
            assert sim.read_register(tr) == table[addr]
            assert sim.read_register(ar) == addr  # address preserved

    @pytest.mark.parametrize("w,entries", [(3, 1), (3, 5), (4, 9), (4, 16), (5, 17)])
    def test_partial_tables_missing_entries_read_zero(self, w, entries):
        table = list(range(1, entries + 1))
        for addr in (0, entries - 1, min(entries, (1 << w) - 1), (1 << w) - 1):
            b = CircuitBuilder()
            ar, tr = b.allocate_register(w), b.allocate_register(6)
            lookup(b, ar, table, tr)
            sim = run_reversible(b.finish(), _init(ar, addr))
            expected = table[addr] if addr < entries else 0
            assert sim.read_register(tr) == expected

    def test_xor_semantics_on_nonzero_target(self):
        b = CircuitBuilder()
        ar, tr = b.allocate_register(2), b.allocate_register(4)
        write_constant(b, tr, 0b1100)
        lookup(b, ar, [0b1010, 0, 0, 0], tr)
        sim = run_reversible(b.finish(), _init(ar, 0))
        assert sim.read_register(tr) == 0b0110

    def test_unlookup_restores_target(self):
        table = [v * 3 for v in range(8)]
        for addr in range(8):
            b = CircuitBuilder()
            ar, tr = b.allocate_register(3), b.allocate_register(5)
            tape = lookup_recorded(b, ar, table, tr)
            unlookup_adjoint(b, tape)
            for q in tr:
                b.release(q)  # sim errors if not restored to zero
            sim = run_reversible(b.finish(), _init(ar, addr))
            assert sim.read_register(ar) == addr

    @pytest.mark.parametrize("w,entries", [(1, 2), (2, 4), (3, 8), (4, 16), (5, 32), (3, 5), (5, 19)])
    def test_counts_match_trace(self, w, entries):
        table = [v + 1 for v in range(entries)]
        b = CircuitBuilder()
        ar, tr = b.allocate_register(w), b.allocate_register(8)
        lookup(b, ar, table, tr)
        traced = b.finish().logical_counts()
        counted = lookup_counts(w, entries)
        assert traced.ccix_count == counted.ccix
        assert traced.measurement_count == counted.measurements

    def test_full_table_cost_formula(self):
        # Full tables cost 2^(w+1) - 4 ANDs for w >= 2.
        for w in range(2, 8):
            assert lookup_counts(w, 1 << w).ccix == 2 ** (w + 1) - 4

    def test_oversized_table_rejected(self):
        b = CircuitBuilder()
        ar, tr = b.allocate_register(2), b.allocate_register(4)
        with pytest.raises(ValueError, match="address bits"):
            lookup(b, ar, [0] * 5, tr)

    def test_entry_too_wide_rejected(self):
        b = CircuitBuilder()
        ar, tr = b.allocate_register(1), b.allocate_register(2)
        with pytest.raises(ValueError, match="fit"):
            lookup(b, ar, [7], tr)


class TestRegisters:
    def test_write_constant(self):
        b = CircuitBuilder()
        r = b.allocate_register(6)
        write_constant(b, r, 0b101101)
        assert run_reversible(b.finish()).read_register(r) == 0b101101

    def test_write_constant_bounds(self):
        b = CircuitBuilder()
        r = b.allocate_register(2)
        with pytest.raises(ValueError, match="fit"):
            write_constant(b, r, 4)
        with pytest.raises(ValueError, match="non-negative"):
            write_constant(b, r, -1)

    def test_copy_register(self):
        b = CircuitBuilder()
        src = b.allocate_register(4)
        dst = b.allocate_register(5)
        write_constant(b, src, 0b1011)
        copy_register(b, src, dst)
        sim = run_reversible(b.finish())
        assert sim.read_register(dst) == 0b1011

    def test_copy_register_target_too_short(self):
        b = CircuitBuilder()
        src, dst = b.allocate_register(3), b.allocate_register(2)
        with pytest.raises(ValueError, match="shorter"):
            copy_register(b, src, dst)
