"""Instruction opcodes.

Instructions are stored as plain tuples ``(opcode, q0, q1, q2, param)``
(unused slots ``-1``/``0.0``) rather than objects: multiplier circuits
reach millions of instructions and tuple streams keep building, tracing,
and simulating fast (see the HPC guide note on avoiding per-element object
overhead in hot loops).
"""

from __future__ import annotations

from enum import IntEnum


class Op(IntEnum):
    """Opcodes of the IR. Values are stable (used in serialized streams)."""

    ALLOC = 0  # q0 = qubit id
    RELEASE = 1  # q0 = qubit id (must be in |0> by convention)

    # Clifford gates: free at the logical level, still validated/simulated.
    X = 2
    Y = 3
    Z = 4
    H = 5
    S = 6
    S_ADJ = 7
    CX = 8  # q0 = control, q1 = target
    CZ = 9
    SWAP = 10

    # Non-Clifford gates.
    T = 11
    T_ADJ = 12
    RX = 13  # param = angle (radians)
    RY = 14
    RZ = 15
    CCZ = 16  # q0, q1, q2 (symmetric)
    CCX = 17  # Toffoli; q0, q1 = controls, q2 = target; counts as one CCZ
    CCIX = 18  # doubly-controlled iX; q0, q1 = controls, q2 = target

    # Gidney temporary-AND pair. AND counts as one CCiX; AND_UNCOMPUTE is
    # measurement-based (one single-qubit measurement, Clifford fix-up).
    AND = 19  # q0, q1 = controls, q2 = fresh target ancilla
    AND_UNCOMPUTE = 20  # q0, q1 = controls, q2 = target (released to |0>)

    MEASURE = 21  # q0 = qubit, Z basis
    RESET = 22  # q0 = qubit, back to |0>

    # Known-logical-estimates injection: param slot holds an index into the
    # circuit's estimates table (paper Sec. IV-B.3).
    ACCOUNT = 23


OPCODE_NAMES: dict[int, str] = {op.value: op.name for op in Op}

#: Ops acting on one qubit (q0 only).
ONE_QUBIT_OPS = frozenset(
    {
        Op.ALLOC,
        Op.RELEASE,
        Op.X,
        Op.Y,
        Op.Z,
        Op.H,
        Op.S,
        Op.S_ADJ,
        Op.T,
        Op.T_ADJ,
        Op.RX,
        Op.RY,
        Op.RZ,
        Op.MEASURE,
        Op.RESET,
    }
)

#: Ops acting on two distinct qubits (q0, q1).
TWO_QUBIT_OPS = frozenset({Op.CX, Op.CZ, Op.SWAP})

#: Ops acting on three distinct qubits (q0, q1, q2).
THREE_QUBIT_OPS = frozenset({Op.CCZ, Op.CCX, Op.CCIX, Op.AND, Op.AND_UNCOMPUTE})

#: Rotation ops whose angle decides Clifford vs non-Clifford handling.
ROTATION_OPS = frozenset({Op.RX, Op.RY, Op.RZ})
