"""Planar-ISA layout model (paper Sec. III-B; Beverland et al. App. B).

The tool assumes 2D nearest-neighbor connectivity. To realize the
all-to-all connectivity a generic program needs, algorithmic logical
qubits are arranged with interleaved rows of auxiliary logical qubits
that route multi-qubit Pauli measurements, which costs extra logical
qubits:

    Q_alg = 2*Q + ceil(sqrt(8*Q)) + 1

where ``Q`` is the pre-layout logical qubit count. The layout step also
fixes the algorithmic logical depth (in logical cycles) and the total
number of T states consumed, combining the raw counts with the rotation
synthesis cost:

    depth    = M + R + T + 3*(CCZ + CCiX) + t_rot * D_R
    t_states = T + 4*(CCZ + CCiX) + t_rot * R

(each CCZ/CCiX takes 3 cycles and consumes 4 T states; each rotation
layer takes ``t_rot`` cycles, each rotation consumes ``t_rot`` T states).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .counts import LogicalCounts
from .synthesis import RotationSynthesis


def logical_qubits_after_layout(pre_layout_qubits: int) -> int:
    """Post-layout logical qubit count ``2Q + ceil(sqrt(8Q)) + 1``."""
    if pre_layout_qubits < 1:
        raise ValueError(f"need at least one logical qubit, got {pre_layout_qubits}")
    q = pre_layout_qubits
    return 2 * q + math.ceil(math.sqrt(8 * q)) + 1


@dataclass(frozen=True)
class AlgorithmicLogicalResources:
    """Post-layout logical resources of an algorithm (paper Sec. III-B)."""

    logical_qubits: int
    logical_depth: int
    t_states: int
    t_states_per_rotation: int
    pre_layout: LogicalCounts

    @property
    def logical_operations(self) -> int:
        """Total reliable logical operations: qubits x depth.

        This is the quantity the paper reports as "logical quantum
        operations" (e.g. 1.12e11 for 2048-bit windowed multiplication):
        every logical qubit participates in every logical cycle, because
        idle qubits still undergo error-corrected idle operations.
        """
        return self.logical_qubits * self.logical_depth


def layout_resources(
    counts: LogicalCounts,
    synthesis_budget: float,
    synthesis: RotationSynthesis | None = None,
) -> AlgorithmicLogicalResources:
    """Apply the planar-ISA layout step to pre-layout counts.

    Parameters
    ----------
    counts:
        Pre-layout logical counts (from the tracer or direct entry).
    synthesis_budget:
        Error budget allocated to rotation synthesis (the ``rotations``
        part of the partition).
    synthesis:
        Rotation synthesis cost model; defaults to the standard
        ``ceil(0.53 log2(R/eps) + 5.3)``.
    """
    synthesis = synthesis or RotationSynthesis()
    t_rot = synthesis.t_states_per_rotation(counts.rotation_count, synthesis_budget)

    depth = (
        counts.measurement_count
        + counts.rotation_count
        + counts.t_count
        + 3 * (counts.ccz_count + counts.ccix_count)
        + t_rot * counts.rotation_depth
    )
    t_states = (
        counts.t_count
        + 4 * (counts.ccz_count + counts.ccix_count)
        + t_rot * counts.rotation_count
    )
    if depth == 0:
        # A program with no counted operations still occupies its qubits
        # for at least one cycle; avoids zero-depth degeneracies downstream.
        depth = 1
    return AlgorithmicLogicalResources(
        logical_qubits=logical_qubits_after_layout(counts.num_qubits),
        logical_depth=depth,
        t_states=t_states,
        t_states_per_rotation=t_rot,
        pre_layout=counts,
    )
