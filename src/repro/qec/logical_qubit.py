"""Resolved logical qubit: a scheme instantiated at a concrete distance.

This is the "logical qubit parameters" output group of the tool (paper
Sec. IV-D.3): the code distance together with the derived per-logical-qubit
physical footprint, cycle time, and achieved logical error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..qubits import PhysicalQubitParams
from .scheme import QECScheme

#: Hard upper bound used by searches; far above any practical device.
MAX_CODE_DISTANCE = 51


@dataclass(frozen=True)
class LogicalQubit:
    """A logical qubit of a QEC scheme at a fixed code distance."""

    scheme: QECScheme
    qubit: PhysicalQubitParams
    code_distance: int

    @classmethod
    def for_target_error_rate(
        cls,
        scheme: QECScheme,
        qubit: PhysicalQubitParams,
        required_error_rate: float,
    ) -> "LogicalQubit":
        """Instantiate at the smallest distance meeting the target rate."""
        scheme.check_compatible(qubit)
        distance = scheme.required_code_distance(qubit, required_error_rate)
        return cls(scheme=scheme, qubit=qubit, code_distance=distance)

    @property
    def physical_qubits(self) -> int:
        """Physical qubits forming this logical qubit."""
        return self.scheme.physical_qubits(self.qubit, self.code_distance)

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one logical cycle in nanoseconds."""
        return self.scheme.cycle_time_ns(self.qubit, self.code_distance)

    @property
    def logical_error_rate(self) -> float:
        """Achieved logical error rate per qubit per cycle."""
        return self.scheme.logical_error_rate(self.qubit, self.code_distance)

    @property
    def logical_cycles_per_second(self) -> float:
        """Logical clock rate in Hz (inverse of the cycle time)."""
        return 1e9 / self.cycle_time_ns

    def to_dict(self) -> dict[str, Any]:
        return {
            "codeDistance": self.code_distance,
            "physicalQubits": self.physical_qubits,
            "logicalCycleTime_ns": self.cycle_time_ns,
            "logicalErrorRate": self.logical_error_rate,
            "logicalCyclesPerSecond": self.logical_cycles_per_second,
            "qecScheme": self.scheme.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: dict[str, Any], qubit: PhysicalQubitParams
    ) -> "LogicalQubit":
        """Inverse of :meth:`to_dict`.

        The serialized form carries the scheme but not the qubit model
        (the enclosing result serializes it once at the top level), so the
        caller supplies ``qubit``. Derived quantities (footprint, cycle
        time, error rate) are recomputed from the scheme formulas.
        """
        return cls(
            scheme=QECScheme.from_dict(data["qecScheme"]),
            qubit=qubit,
            code_distance=data["codeDistance"],
        )
