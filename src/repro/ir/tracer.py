"""Pre-layout resource tracer (paper Sec. III-A).

Walks an instruction stream once and produces
:class:`~repro.counts.LogicalCounts`:

* **width** — high-water mark of simultaneously allocated qubits;
* **T count** — T/T† gates, plus rotations whose angle reduces to an odd
  multiple of pi/4 (those synthesize to a single T up to Cliffords);
* **rotation count/depth** — rotations with arbitrary angles; depth is the
  number of rotation *layers* under ASAP scheduling of the dependency
  graph (paper Sec. III-B.2), tracked with per-qubit layer counters;
* **CCZ / CCiX counts** — CCZ and Toffoli count as CCZ; CCiX and
  temporary-AND computes count as CCiX;
* **measurements** — explicit measurements, resets, and the measurement
  half of temporary-AND uncomputes.

Rotations by multiples of pi/2 are Clifford and cost nothing here.
"""

from __future__ import annotations

import math

from ..counts import LogicalCounts
from .circuit import Circuit, CircuitError
from .ops import Op

#: Angles closer than this to a pi/4 grid point are snapped onto it.
ANGLE_TOLERANCE = 1e-12


def _classify_angle(angle: float) -> str:
    """Classify a rotation angle: 'clifford', 't', or 'rotation'."""
    quarter_turns = angle / (math.pi / 2)
    nearest = round(quarter_turns)
    if abs(quarter_turns - nearest) <= ANGLE_TOLERANCE:
        return "clifford"
    eighth_turns = angle / (math.pi / 4)
    nearest = round(eighth_turns)
    if abs(eighth_turns - nearest) <= ANGLE_TOLERANCE:
        return "t"
    return "rotation"


def trace(circuit: Circuit) -> LogicalCounts:
    """Compute pre-layout logical counts of a circuit."""
    active = 0
    width = 0
    t_count = 0
    rotations = 0
    ccz = 0
    ccix = 0
    measurements = 0

    # Rotation-layer tracking: layer[q] = number of rotation layers qubit q
    # has passed through; multi-qubit gates synchronize the counters of the
    # qubits they touch. The overall rotation depth is the max layer index.
    layer: dict[int, int] = {}
    rotation_depth = 0

    injected: list[LogicalCounts] = []

    for op, q0, q1, q2, param in circuit.instructions:
        if op == Op.ALLOC:
            active += 1
            if active > width:
                width = active
            layer.setdefault(q0, 0)
        elif op == Op.RELEASE:
            active -= 1
            if active < 0:
                raise CircuitError("RELEASE without matching ALLOC")
        elif op == Op.T or op == Op.T_ADJ:
            t_count += 1
        elif op == Op.RX or op == Op.RY or op == Op.RZ:
            kind = _classify_angle(param)
            if kind == "t":
                t_count += 1
            elif kind == "rotation":
                rotations += 1
                new_layer = layer[q0] + 1
                layer[q0] = new_layer
                if new_layer > rotation_depth:
                    rotation_depth = new_layer
        elif op == Op.CCZ or op == Op.CCX:
            ccz += 1
            _sync3(layer, q0, q1, q2)
        elif op == Op.CCIX or op == Op.AND:
            ccix += 1
            _sync3(layer, q0, q1, q2)
        elif op == Op.AND_UNCOMPUTE:
            measurements += 1
            _sync3(layer, q0, q1, q2)
        elif op == Op.MEASURE or op == Op.RESET:
            measurements += 1
        elif op == Op.CX or op == Op.CZ or op == Op.SWAP:
            lq0 = layer[q0]
            lq1 = layer[q1]
            if lq0 != lq1:
                m = lq0 if lq0 > lq1 else lq1
                layer[q0] = m
                layer[q1] = m
        elif op == Op.ACCOUNT:
            injected.append(circuit.estimates[int(param)])
        # Remaining single-qubit Cliffords need no action.

    counts = LogicalCounts(
        num_qubits=max(width, 1),
        t_count=t_count,
        rotation_count=rotations,
        rotation_depth=rotation_depth,
        ccz_count=ccz,
        ccix_count=ccix,
        measurement_count=measurements,
    )
    for extra in injected:
        # Injected estimates contribute their counts; their qubits are
        # auxiliary to the traced program's width (see account_for_estimates).
        combined_width = counts.num_qubits + extra.num_qubits
        counts = counts.add(extra)
        counts = LogicalCounts(
            num_qubits=combined_width,
            t_count=counts.t_count,
            rotation_count=counts.rotation_count,
            rotation_depth=counts.rotation_depth,
            ccz_count=counts.ccz_count,
            ccix_count=counts.ccix_count,
            measurement_count=counts.measurement_count,
        )
    return counts


def _sync3(layer: dict[int, int], q0: int, q1: int, q2: int) -> None:
    """Synchronize rotation-layer counters across a three-qubit gate."""
    m = layer[q0]
    if layer[q1] > m:
        m = layer[q1]
    if layer[q2] > m:
        m = layer[q2]
    layer[q0] = m
    layer[q1] = m
    layer[q2] = m
