"""Tests for in-place modular multiplication and modular exponentiation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic import mod_mul_inplace, modexp_circuit, modexp_logical_counts
from repro.arithmetic.modexp import _modular_inverse
from repro.ir import CircuitBuilder, validate
from repro.sim import run_reversible


def _init(reg, value):
    return {q: (value >> i) & 1 for i, q in enumerate(reg)}


class TestModularInverse:
    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_property_inverse(self, data):
        modulus = data.draw(st.integers(2, 10_000))
        coprime = data.draw(
            st.integers(1, modulus - 1).filter(lambda v: math.gcd(v, modulus) == 1)
        )
        inverse = _modular_inverse(coprime, modulus)
        assert (coprime * inverse) % modulus == 1

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError, match="not invertible"):
            _modular_inverse(6, 9)


class TestInPlaceModMul:
    @pytest.mark.parametrize("window", [0, None])
    def test_exhaustive_small(self, window):
        n, modulus = 3, 7
        for k in (1, 2, 3, 4, 5, 6):
            for xv in range(modulus):
                b = CircuitBuilder()
                x = b.allocate_register(n)
                mod_mul_inplace(b, x, k, modulus, window=window)
                c = b.finish()
                validate(c)
                sim = run_reversible(c, _init(x, xv))
                assert sim.read_register(x) == (xv * k) % modulus

    @pytest.mark.parametrize("ctrl", [0, 1])
    def test_controlled(self, ctrl):
        n, modulus, k = 4, 13, 5
        for xv in range(modulus):
            b = CircuitBuilder()
            control = b.allocate()
            x = b.allocate_register(n)
            mod_mul_inplace(b, x, k, modulus, control=control)
            sim = run_reversible(b.finish(), {control: ctrl, **_init(x, xv)})
            expected = (xv * k) % modulus if ctrl else xv
            assert sim.read_register(x) == expected
            assert sim.bit(control) == ctrl

    def test_ancillas_all_returned(self):
        """In-place multiplication leaves only the x register allocated."""
        b = CircuitBuilder()
        x = b.allocate_register(4)
        before = b.num_active_qubits
        mod_mul_inplace(b, x, 3, 13)
        assert b.num_active_qubits == before

    def test_non_coprime_factor_rejected(self):
        b = CircuitBuilder()
        x = b.allocate_register(4)
        with pytest.raises(ValueError, match="not invertible"):
            mod_mul_inplace(b, x, 4, 12)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random(self, data):
        n = data.draw(st.integers(2, 8))
        modulus = data.draw(st.integers(3, (1 << n)))
        k = data.draw(
            st.integers(1, modulus - 1).filter(lambda v: math.gcd(v, modulus) == 1)
        )
        xv = data.draw(st.integers(0, modulus - 1))
        b = CircuitBuilder()
        x = b.allocate_register(n)
        mod_mul_inplace(b, x, k, modulus)
        sim = run_reversible(b.finish(), _init(x, xv))
        assert sim.read_register(x) == (xv * k) % modulus


class TestModExp:
    @pytest.mark.parametrize("base,modulus", [(2, 7), (3, 7), (5, 13), (7, 15)])
    def test_exhaustive_exponents(self, base, modulus):
        n = (modulus - 1).bit_length()
        exponent_bits = 3
        for e in range(1 << exponent_bits):
            # Rebuild without the superposition preamble for classical sim.
            b = CircuitBuilder()
            exp = b.allocate_register(exponent_bits)
            res = b.allocate_register(n)
            b.x(res[0])
            factor = base % modulus
            for bit in range(exponent_bits):
                mod_mul_inplace(b, res, factor, modulus, control=exp[bit])
                factor = (factor * factor) % modulus
            sim = run_reversible(b.finish(), _init(exp, e))
            assert sim.read_register(res) == pow(base, e, modulus), (base, modulus, e)

    def test_circuit_structure(self):
        circuit = modexp_circuit(3, 7, exponent_bits=4)
        counts = circuit.logical_counts()
        assert counts.ccz_count == 4 * 3  # one 3-qubit Fredkin ladder per bit
        assert counts.measurement_count >= 3  # result readout

    def test_invalid_base(self):
        with pytest.raises(ValueError, match="nonzero"):
            modexp_circuit(7, 7, exponent_bits=2)

    @pytest.mark.parametrize(
        "n,window", [(3, 0), (3, None), (4, 2), (5, None), (6, 3)]
    )
    def test_closed_form_matches_trace(self, n, window):
        """The scaling mirror equals traced counts, width included."""
        modulus = (1 << n) - 1
        circuit = modexp_circuit(2, modulus, exponent_bits=2, window=window)
        assert circuit.logical_counts() == modexp_logical_counts(n, 2, window=window)

    def test_closed_form_scales_to_rsa_sizes(self):
        counts = modexp_logical_counts(2048)
        # ~4n modular multiplier calls, each ~4n^2/w ANDs: order 1e10.
        assert counts.ccix_count > 10**9
        assert counts.num_qubits == pytest.approx(2 * 2048 + 6 * 2048 + 4, abs=2)

    def test_small_modulus_rejected(self):
        with pytest.raises(ValueError, match=">= 2 bits"):
            modexp_logical_counts(1)
