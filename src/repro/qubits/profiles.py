"""The six predefined hardware profiles (paper Sec. IV-C.1, Fig. 4).

Values follow Beverland et al. (arXiv:2211.07629, Table V) and the paper's
own listing for ``qubit_maj_ns_e4`` (Sec. V: 100 ns operations, Clifford
error 1e-4, non-Clifford error 0.05):

* ``qubit_gate_ns_e3`` / ``..._e4`` — nanosecond-regime gate-based qubits
  (superconducting-transmon-like): 50 ns gates, 100 ns measurement, error
  rates 1e-3 (realistic) / 1e-4 (optimistic).
* ``qubit_gate_us_e3`` / ``..._e4`` — microsecond-regime gate-based qubits
  (trapped-ion-like): 100 us operations, Clifford errors 1e-3 / 1e-4 and
  high-fidelity T gates (1e-6).
* ``qubit_maj_ns_e4`` / ``..._e6`` — measurement-based Majorana qubits:
  100 ns measurements, Clifford error 1e-4 / 1e-6, physical T error
  5e-2 / 1e-2.
"""

from __future__ import annotations

from .params import InstructionSet, PhysicalQubitParams

QUBIT_GATE_NS_E3 = PhysicalQubitParams(
    name="qubit_gate_ns_e3",
    instruction_set=InstructionSet.GATE_BASED,
    one_qubit_measurement_time_ns=100.0,
    one_qubit_measurement_error_rate=1e-3,
    one_qubit_gate_time_ns=50.0,
    one_qubit_gate_error_rate=1e-3,
    two_qubit_gate_time_ns=50.0,
    two_qubit_gate_error_rate=1e-3,
    t_gate_time_ns=50.0,
    t_gate_error_rate=1e-3,
)

QUBIT_GATE_NS_E4 = PhysicalQubitParams(
    name="qubit_gate_ns_e4",
    instruction_set=InstructionSet.GATE_BASED,
    one_qubit_measurement_time_ns=100.0,
    one_qubit_measurement_error_rate=1e-4,
    one_qubit_gate_time_ns=50.0,
    one_qubit_gate_error_rate=1e-4,
    two_qubit_gate_time_ns=50.0,
    two_qubit_gate_error_rate=1e-4,
    t_gate_time_ns=50.0,
    t_gate_error_rate=1e-4,
)

QUBIT_GATE_US_E3 = PhysicalQubitParams(
    name="qubit_gate_us_e3",
    instruction_set=InstructionSet.GATE_BASED,
    one_qubit_measurement_time_ns=100_000.0,
    one_qubit_measurement_error_rate=1e-3,
    one_qubit_gate_time_ns=100_000.0,
    one_qubit_gate_error_rate=1e-3,
    two_qubit_gate_time_ns=100_000.0,
    two_qubit_gate_error_rate=1e-3,
    t_gate_time_ns=100_000.0,
    t_gate_error_rate=1e-6,
)

QUBIT_GATE_US_E4 = PhysicalQubitParams(
    name="qubit_gate_us_e4",
    instruction_set=InstructionSet.GATE_BASED,
    one_qubit_measurement_time_ns=100_000.0,
    one_qubit_measurement_error_rate=1e-4,
    one_qubit_gate_time_ns=100_000.0,
    one_qubit_gate_error_rate=1e-4,
    two_qubit_gate_time_ns=100_000.0,
    two_qubit_gate_error_rate=1e-4,
    t_gate_time_ns=100_000.0,
    t_gate_error_rate=1e-6,
)

QUBIT_MAJ_NS_E4 = PhysicalQubitParams(
    name="qubit_maj_ns_e4",
    instruction_set=InstructionSet.MAJORANA,
    one_qubit_measurement_time_ns=100.0,
    one_qubit_measurement_error_rate=1e-4,
    two_qubit_joint_measurement_time_ns=100.0,
    two_qubit_joint_measurement_error_rate=1e-4,
    t_gate_error_rate=5e-2,
)

QUBIT_MAJ_NS_E6 = PhysicalQubitParams(
    name="qubit_maj_ns_e6",
    instruction_set=InstructionSet.MAJORANA,
    one_qubit_measurement_time_ns=100.0,
    one_qubit_measurement_error_rate=1e-6,
    two_qubit_joint_measurement_time_ns=100.0,
    two_qubit_joint_measurement_error_rate=1e-6,
    t_gate_error_rate=1e-2,
)

#: All predefined profiles by their tool-facing name.
PREDEFINED_PROFILES: dict[str, PhysicalQubitParams] = {
    p.name: p
    for p in (
        QUBIT_GATE_NS_E3,
        QUBIT_GATE_NS_E4,
        QUBIT_GATE_US_E3,
        QUBIT_GATE_US_E4,
        QUBIT_MAJ_NS_E4,
        QUBIT_MAJ_NS_E6,
    )
}


def qubit_params(name: str, **overrides: object) -> PhysicalQubitParams:
    """Look up a profile by name, optionally customizing parameters.

    Resolves through the default :class:`~repro.registry.Registry`, so
    user-defined profiles (registered in code or loaded from scenario
    files) are found alongside the predefined ones.

    >>> qubit_params("qubit_gate_ns_e3")
    >>> qubit_params("qubit_maj_ns_e4", t_gate_error_rate=0.01)
    """
    from ..registry import default_registry  # deferred: avoids import cycle

    return default_registry().qubit(name, **overrides)
