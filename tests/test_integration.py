"""End-to-end integration tests crossing every layer of the stack."""

from __future__ import annotations

import json

import pytest

from repro import (
    Constraints,
    ErrorBudget,
    LogicalCounts,
    assess,
    emit_qir,
    estimate,
    estimate_frontier,
    parse_qir,
    qubit_params,
)
from repro.arithmetic import ModularMultiplier, WindowedMultiplier, multiplier_by_name
from repro.ir import CircuitBuilder, validate
from repro.isa import lower
from repro.sim import run_reversible


class TestCircuitToEstimatePaths:
    """The same program through every input path must estimate identically."""

    def test_closed_form_and_traced_counts_estimate_identically(self):
        mult = WindowedMultiplier(64)
        qubit = qubit_params("qubit_maj_ns_e4")
        via_closed_form = estimate(mult.logical_counts(), qubit, budget=1e-4)
        via_trace = estimate(mult.circuit(), qubit, budget=1e-4)
        assert via_closed_form.to_dict() == via_trace.to_dict()

    def test_qir_round_trip_estimates_identically(self):
        mult = WindowedMultiplier(16)
        qubit = qubit_params("qubit_gate_ns_e4")
        direct = estimate(mult.circuit(), qubit, budget=1e-3)
        through_qir = estimate(parse_qir(emit_qir(mult.circuit())), qubit, budget=1e-3)
        assert direct.to_dict() == through_qir.to_dict()

    def test_account_for_estimates_matches_direct_composition(self):
        """Injecting a subroutine's counts == adding them by hand."""
        sub = LogicalCounts(num_qubits=20, t_count=500, ccz_count=100)
        b = CircuitBuilder()
        q = b.allocate_register(4)
        b.t(q[0])
        b.ccz(q[0], q[1], q[2])
        b.measure(q[3])
        b.account_for_estimates(sub)
        traced = b.finish().logical_counts()

        manual = LogicalCounts(
            num_qubits=4, t_count=1, ccz_count=1, measurement_count=1
        ).add(sub)
        manual = LogicalCounts(
            num_qubits=4 + 20,  # aux qubits add to width (tool semantics)
            t_count=manual.t_count,
            ccz_count=manual.ccz_count,
            measurement_count=manual.measurement_count,
        )
        assert traced == manual


class TestSimulateThenEstimate:
    """The workflow the library is built around: prove, then cost."""

    @pytest.mark.parametrize("algorithm", ["schoolbook", "karatsuba", "windowed"])
    def test_verified_multiplier_then_estimated(self, algorithm):
        n = 24
        mult = multiplier_by_name(algorithm, n)
        b = CircuitBuilder()
        x = b.allocate_register(n)
        acc = b.allocate_register(2 * n)
        mult.emit(b, x, acc)
        circuit = b.finish()
        validate(circuit)

        xv = 0xBEEF42
        sim = run_reversible(circuit, {q: (xv >> i) & 1 for i, q in enumerate(x)})
        assert sim.read_register(acc) == xv * mult.constant

        result = estimate(mult.logical_counts(), qubit_params("qubit_maj_ns_e6"))
        assert result.physical_qubits > 0
        verdict = assess(result)
        assert verdict.level.name in ("RESILIENT", "SCALE")

    def test_modular_multiplier_full_stack(self):
        n, modulus = 8, 251
        mult = ModularMultiplier(n, modulus, constant=123)
        b = CircuitBuilder()
        x = b.allocate_register(n)
        acc = b.allocate_register(n)
        mult.emit(b, x, acc)
        circuit = b.finish()
        sim = run_reversible(circuit, {q: (77 >> i) & 1 for i, q in enumerate(x)})
        assert sim.read_register(acc) == (77 * 123) % modulus

        counts = mult.tally().to_logical_counts(circuit.logical_counts().num_qubits)
        result = estimate(counts, qubit_params("qubit_gate_ns_e3"), budget=1e-3)
        assert result.breakdown.num_t_states == 4 * counts.ccix_count


class TestComposedWorkloads:
    def test_sequential_scaling_scales_t_states_linearly(self):
        base = WindowedMultiplier(32).logical_counts()
        qubit = qubit_params("qubit_maj_ns_e4")
        one = estimate(base, qubit, budget=1e-4)
        ten = estimate(base.scaled(10), qubit, budget=1e-4)
        assert ten.breakdown.num_t_states == 10 * one.breakdown.num_t_states
        assert ten.breakdown.algorithmic_logical_qubits == one.breakdown.algorithmic_logical_qubits
        # runtime grows at least 10x (more cycles, maybe larger distance)
        assert ten.runtime_seconds >= 10 * one.runtime_seconds * 0.99

    def test_parallel_composition_widens_machine(self):
        base = WindowedMultiplier(32).logical_counts()
        qubit = qubit_params("qubit_maj_ns_e4")
        one = estimate(base, qubit, budget=1e-4)
        two = estimate(base.parallel(base), qubit, budget=1e-4)
        assert two.logical_qubits > one.logical_qubits
        assert (
            two.breakdown.physical_qubits_for_algorithm
            > one.breakdown.physical_qubits_for_algorithm
        )

    def test_isa_lowering_consistent_with_estimate(self):
        mult = WindowedMultiplier(32)
        circuit = mult.circuit()
        result = estimate(circuit, qubit_params("qubit_maj_ns_e4"), budget=1e-4)
        program = lower(circuit, result.error_budget.rotations)
        assert program.total_t_states == result.breakdown.num_t_states
        assert program.depth == result.breakdown.algorithmic_logical_depth


class TestReportFidelity:
    def test_full_json_report_is_self_consistent(self):
        mult = WindowedMultiplier(48)
        result = estimate(
            mult.logical_counts(),
            qubit_params("qubit_gate_us_e4"),
            budget=ErrorBudget(total=1e-4),
            constraints=Constraints(max_t_factories=10),
        )
        report = json.loads(result.to_json())
        bd = report["breakdown"]
        assert (
            report["physicalCounts"]["physicalQubits"]
            == bd["physicalQubitsForAlgorithm"] + bd["physicalQubitsForTFactories"]
        )
        assert report["tFactory"]["copies"] <= 10
        lq = report["logicalQubit"]
        assert bd["physicalQubitsForAlgorithm"] == (
            bd["algorithmicLogicalQubits"] * lq["physicalQubits"]
        )
        runtime = report["physicalCounts"]["runtime_ns"]
        assert runtime == pytest.approx(bd["logicalDepth"] * lq["logicalCycleTime_ns"])

    def test_frontier_and_constraints_agree(self):
        counts = WindowedMultiplier(32).logical_counts()
        qubit = qubit_params("qubit_maj_ns_e4")
        frontier = estimate_frontier(counts, qubit, budget=1e-4)
        for point in frontier:
            redo = estimate(
                counts,
                qubit,
                budget=1e-4,
                constraints=Constraints(
                    logical_depth_factor=point.logical_depth_factor
                ),
            )
            assert redo.physical_qubits == point.physical_qubits
            assert redo.runtime_seconds == point.runtime_seconds
