"""Declarative scenario specs: serializable, hashable estimation requests.

An :class:`EstimateSpec` is the *declarative* form of one estimation
point: instead of live Python objects it holds either inline
:class:`~repro.counts.LogicalCounts` or a :class:`ProgramRef` naming a
known construction (the paper's multipliers, or modular exponentiation),
plus the qubit profile, QEC scheme, budget, constraints, and synthesis
model — each either a registry *name* or an inline definition. That makes
a spec:

* **JSON-round-trippable** (:meth:`EstimateSpec.to_dict` /
  :meth:`EstimateSpec.from_dict`) — specs travel over HTTP to the
  estimation service and live in batch grid files;
* **content-addressable** (:meth:`EstimateSpec.content_hash`) — the
  canonical serialization is stable across processes and Python
  versions, so the hash keys the persistent
  :class:`~repro.estimator.store.ResultStore`;
* **resolvable** (:meth:`EstimateSpec.to_request`) — a
  :class:`~repro.registry.Registry` turns names back into model objects,
  producing the :class:`~repro.estimator.batch.EstimateRequest` the
  shared batch engine runs.

:func:`run_specs` is the one evaluation path layered over both caches:
specs are hashed, answered from the persistent store when possible, and
the misses run through :func:`~repro.estimator.batch.estimate_batch`
(with its in-memory cross-point memos) before being written back.

The canonical form deliberately excludes two fields from the hash:
``label`` (display metadata) and ``backend`` (all counting backends
produce bit-for-bit identical counts — asserted by the test suite — so a
result computed via one backend answers a spec submitted via another).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache, partial
from typing import TYPE_CHECKING, Any, Hashable, Sequence

from ..budget import ErrorBudget
from ..counts import LogicalCounts
from ..qec import QECScheme
from ..qubits import PhysicalQubitParams
from ..synthesis import RotationSynthesis
from .batch import EstimateCache, EstimateRequest, estimate_batch
from .constraints import Constraints
from .result import PhysicalResourceEstimates

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry import Registry
    from .store import ResultStore

__all__ = [
    "SPEC_SCHEMA",
    "EstimateSpec",
    "ProgramRef",
    "SpecOutcome",
    "run_specs",
]

#: Version tag of the spec canonical form; part of every content hash, so
#: changing the spec schema can never alias old store entries.
SPEC_SCHEMA = "repro-spec-v1"

#: Program constructions addressable by reference.
PROGRAM_KINDS = ("multiplier", "modexp")


def _multiplier_counts(algorithm: str, bits: int, backend: str) -> LogicalCounts:
    """Resolve one multiplier's counts (runs inside batch workers)."""
    from ..arithmetic import multiplier_by_name

    return multiplier_by_name(algorithm, bits).backend_counts(backend)


def _modexp_counts(
    bits: int, exponent_bits: int, window: int | None, backend: str
) -> LogicalCounts:
    """Resolve an n-bit modular exponentiation's counts (in workers)."""
    from ..arithmetic import (
        modexp_circuit,
        modexp_counting_counts,
        modexp_logical_counts,
    )

    if backend == "formula":
        return modexp_logical_counts(bits, exponent_bits, window=window)
    modulus = (1 << bits) - 1  # counts depend only on the bit length
    if backend == "counting":
        return modexp_counting_counts(2, modulus, exponent_bits, window=window)
    return modexp_circuit(2, modulus, exponent_bits, window=window).logical_counts()


@lru_cache(maxsize=None)
def _program_factory(
    kind: str, params: tuple[tuple[str, Any], ...], backend: str
) -> partial:
    """A picklable, lazily-resolved counts factory for a program ref.

    The lru_cache returns the *same* factory object for repeated
    (ref, backend) resolutions, so identity-based deduplication in the
    batch engine works even before the explicit ``program_key`` (which is
    also set, covering cross-process chunks).
    """
    kwargs = dict(params)
    if kind == "multiplier":
        return partial(_multiplier_counts, kwargs["algorithm"], kwargs["bits"], backend)
    return partial(
        _modexp_counts,
        kwargs["bits"],
        kwargs["exponent_bits"],
        kwargs["window"],
        backend,
    )


@dataclass(frozen=True)
class ProgramRef:
    """A program named by construction rather than carried as an object.

    ``kind="multiplier"`` needs ``algorithm`` (schoolbook / karatsuba /
    windowed) and ``bits``; ``kind="modexp"`` needs ``bits`` and takes
    optional ``exponent_bits`` (default ``2 * bits``, standard order
    finding) and ``window`` (default: cost-balancing).
    """

    kind: str
    bits: int
    algorithm: str | None = None
    exponent_bits: int | None = None
    window: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in PROGRAM_KINDS:
            raise ValueError(
                f"unknown program kind {self.kind!r}; known: {list(PROGRAM_KINDS)}"
            )
        if not isinstance(self.bits, int) or isinstance(self.bits, bool) or self.bits < 1:
            raise ValueError(f"bits must be a positive int, got {self.bits!r}")
        if self.kind == "multiplier":
            if not self.algorithm:
                raise ValueError("a multiplier program ref needs an 'algorithm'")
            from ..arithmetic import MULTIPLIER_ALGORITHMS

            if self.algorithm not in MULTIPLIER_ALGORITHMS:
                # Validate eagerly: counts resolve lazily inside batch
                # workers, where an unknown name would crash the whole
                # sweep instead of failing this one spec.
                raise ValueError(
                    f"unknown multiplier {self.algorithm!r}; available: "
                    f"{sorted(MULTIPLIER_ALGORITHMS)}"
                )
            if self.exponent_bits is not None or self.window is not None:
                raise ValueError(
                    "exponent_bits/window only apply to modexp program refs"
                )
        else:
            if self.algorithm is not None:
                raise ValueError("'algorithm' only applies to multiplier refs")
            if self.bits < 2:
                raise ValueError("modexp needs a modulus of >= 2 bits")

    def to_dict(self) -> dict[str, Any]:
        if self.kind == "multiplier":
            return {
                "multiplier": {"algorithm": self.algorithm, "bits": self.bits}
            }
        body: dict[str, Any] = {"bits": self.bits}
        if self.exponent_bits is not None:
            body["exponentBits"] = self.exponent_bits
        if self.window is not None:
            body["window"] = self.window
        return {"modexp": body}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProgramRef":
        if not isinstance(data, dict) or len(data) != 1:
            raise ValueError(
                "a program ref is an object with exactly one of "
                f"{list(PROGRAM_KINDS)} as key, got {data!r}"
            )
        (kind, body), = data.items()
        if kind not in PROGRAM_KINDS or not isinstance(body, dict):
            raise ValueError(f"unknown program ref {data!r}")
        if kind == "multiplier":
            unknown = set(body) - {"algorithm", "bits"}
            if unknown:
                raise ValueError(f"unknown multiplier ref fields: {sorted(unknown)}")
            return cls(
                kind="multiplier",
                algorithm=body.get("algorithm"),
                bits=body.get("bits", 0),
            )
        unknown = set(body) - {"bits", "exponentBits", "window"}
        if unknown:
            raise ValueError(f"unknown modexp ref fields: {sorted(unknown)}")
        return cls(
            kind="modexp",
            bits=body.get("bits", 0),
            exponent_bits=body.get("exponentBits"),
            window=body.get("window"),
        )

    def resolve(self, backend: str) -> tuple[object, Hashable]:
        """The (lazy program, memo key) pair for the batch engine.

        The program is a picklable zero-argument counts factory, so batch
        workers construct and count the circuit themselves instead of
        shipping a traced artifact through the parent process.
        """
        if self.kind == "multiplier":
            params: tuple[tuple[str, Any], ...] = (
                ("algorithm", self.algorithm),
                ("bits", self.bits),
            )
            key: Hashable = ("multiplier", self.algorithm, self.bits, backend)
        else:
            exponent_bits = (
                self.exponent_bits if self.exponent_bits is not None else 2 * self.bits
            )
            params = (
                ("bits", self.bits),
                ("exponent_bits", exponent_bits),
                ("window", self.window),
            )
            key = ("modexp", self.bits, exponent_bits, self.window, backend)
        return _program_factory(self.kind, params, backend), key


@dataclass(frozen=True)
class EstimateSpec:
    """One declarative estimation point (frozen, hashable, serializable).

    Fields hold either registry names or inline definitions:

    * ``program`` — inline :class:`LogicalCounts` or a :class:`ProgramRef`;
    * ``qubit`` — profile name or inline :class:`PhysicalQubitParams`;
    * ``scheme`` — scheme name, inline :class:`QECScheme`, or ``None``
      for the technology default;
    * ``budget`` — total error budget (number) or :class:`ErrorBudget`;
    * ``constraints`` / ``synthesis`` — ``None`` means the defaults;
    * ``backend`` — how referenced programs resolve counts (``formula`` /
      ``materialize`` / ``counting``; identical results);
    * ``label`` — free-form display metadata, echoed on outcomes.
    """

    program: ProgramRef | LogicalCounts
    qubit: str | PhysicalQubitParams
    scheme: str | QECScheme | None = None
    budget: ErrorBudget | float = 1e-3
    constraints: Constraints | None = None
    synthesis: RotationSynthesis | None = None
    backend: str = "formula"
    label: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.program, (ProgramRef, LogicalCounts)):
            raise TypeError(
                "spec program must be a ProgramRef or inline LogicalCounts, "
                f"got {type(self.program).__name__}"
            )
        # Normalize bare-number budgets so equal specs compare equal.
        if isinstance(self.budget, (int, float)) and not isinstance(self.budget, bool):
            object.__setattr__(self, "budget", ErrorBudget(total=float(self.budget)))
        elif not isinstance(self.budget, ErrorBudget):
            raise TypeError(
                f"spec budget must be a number or ErrorBudget, got "
                f"{type(self.budget).__name__}"
            )
        from ..arithmetic import COUNT_BACKENDS

        if self.backend not in COUNT_BACKENDS:
            raise ValueError(
                f"unknown count backend {self.backend!r}; available: "
                f"{COUNT_BACKENDS}"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON form; :meth:`from_dict` is the exact inverse."""
        if isinstance(self.program, LogicalCounts):
            program: dict[str, Any] = {"counts": self.program.to_dict()}
        else:
            program = self.program.to_dict()
        qubit = (
            {"profile": self.qubit}
            if isinstance(self.qubit, str)
            else {"params": self.qubit.to_dict()}
        )
        if self.scheme is None:
            scheme = None
        elif isinstance(self.scheme, str):
            scheme = {"name": self.scheme}
        else:
            scheme = {"params": self.scheme.to_dict()}
        return {
            "program": program,
            "qubit": qubit,
            "scheme": scheme,
            "budget": self.budget.to_dict(),
            "constraints": self.constraints.to_dict() if self.constraints else None,
            "synthesis": self.synthesis.to_dict() if self.synthesis else None,
            "backend": self.backend,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EstimateSpec":
        """Parse a spec document (tolerates omitted optional fields)."""
        if not isinstance(data, dict):
            raise ValueError(f"a spec must be a JSON object, got {type(data).__name__}")
        known = {
            "program",
            "qubit",
            "scheme",
            "budget",
            "constraints",
            "synthesis",
            "backend",
            "label",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec fields {sorted(unknown)}; known: {sorted(known)}"
            )

        raw_program = data.get("program")
        if not isinstance(raw_program, dict) or not raw_program:
            raise ValueError(
                "spec needs a 'program': {'counts': {...}}, "
                "{'multiplier': {...}}, or {'modexp': {...}}"
            )
        if "counts" in raw_program:
            if len(raw_program) != 1:
                raise ValueError(f"ambiguous program {raw_program!r}")
            program: ProgramRef | LogicalCounts = LogicalCounts.from_dict(
                raw_program["counts"]
            )
        else:
            program = ProgramRef.from_dict(raw_program)

        raw_qubit = data.get("qubit")
        if isinstance(raw_qubit, dict) and set(raw_qubit) == {"profile"}:
            qubit: str | PhysicalQubitParams = raw_qubit["profile"]
        elif isinstance(raw_qubit, dict) and set(raw_qubit) == {"params"}:
            qubit = PhysicalQubitParams.from_dict(raw_qubit["params"])
        else:
            raise ValueError(
                "spec needs a 'qubit': {'profile': name} or {'params': {...}}"
            )

        raw_scheme = data.get("scheme")
        if raw_scheme is None:
            scheme: str | QECScheme | None = None
        elif isinstance(raw_scheme, dict) and set(raw_scheme) == {"name"}:
            scheme = raw_scheme["name"]
        elif isinstance(raw_scheme, dict) and set(raw_scheme) == {"params"}:
            scheme = QECScheme.from_dict(raw_scheme["params"])
        else:
            raise ValueError(
                "spec 'scheme' must be null, {'name': name}, or {'params': {...}}"
            )

        raw_budget = data.get("budget", 1e-3)
        budget = ErrorBudget.from_dict(raw_budget)

        raw_constraints = data.get("constraints")
        constraints = (
            Constraints.from_dict(raw_constraints) if raw_constraints else None
        )
        raw_synthesis = data.get("synthesis")
        synthesis = (
            RotationSynthesis.from_dict(raw_synthesis) if raw_synthesis else None
        )
        return cls(
            program=program,
            qubit=qubit,
            scheme=scheme,
            budget=budget,
            constraints=constraints,
            synthesis=synthesis,
            backend=data.get("backend", "formula"),
            label=data.get("label"),
        )

    # -- content addressing ------------------------------------------------

    def canonical_dict(self, registry: "Registry | None" = None) -> dict[str, Any]:
        """The normalized form whose JSON keys the content hash.

        Equivalent specs canonicalize identically: a bare-number budget
        equals ``ErrorBudget(total=...)``, omitted constraints/synthesis
        equal their defaults, and ``label``/``backend`` are excluded (see
        the module docstring).

        With a ``registry``, profile/scheme *names* are inlined as their
        resolved definitions, so the canonical form covers the actual
        model parameters. The persistent store is keyed on this resolved
        form — a scenario file redefining a name changes the hash and can
        never be served a stale result computed for the old definition.
        Unknown names raise :class:`KeyError`, exactly as resolution
        would.
        """
        data = self.to_dict()
        del data["label"], data["backend"]
        data["constraints"] = (self.constraints or Constraints()).to_dict()
        data["synthesis"] = (self.synthesis or RotationSynthesis()).to_dict()
        if registry is not None:
            if isinstance(self.qubit, str):
                data["qubit"] = {"params": registry.qubit(self.qubit).to_dict()}
            if isinstance(self.scheme, str):
                qubit = (
                    registry.qubit(self.qubit)
                    if isinstance(self.qubit, str)
                    else self.qubit
                )
                data["scheme"] = {
                    "params": registry.scheme(self.scheme, qubit).to_dict()
                }
        return data

    def canonical_json(self, registry: "Registry | None" = None) -> str:
        """Stable, compact serialization of :meth:`canonical_dict`."""
        return json.dumps(
            self.canonical_dict(registry), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self, registry: "Registry | None" = None) -> str:
        """SHA-256 over the schema tag plus the canonical serialization.

        Without a registry this is the *syntactic* hash (names kept as
        names — stable for clients that cannot resolve them). With one,
        the *resolved* hash (names inlined) that keys the result store.
        """
        payload = f"{SPEC_SCHEMA}\n{self.canonical_json(registry)}".encode()
        return hashlib.sha256(payload).hexdigest()

    # -- resolution --------------------------------------------------------

    def to_request(self, registry: "Registry | None" = None) -> EstimateRequest:
        """Resolve names through a registry into a batch-engine request.

        Raises :class:`KeyError` for unknown profile/scheme names and
        :class:`ValueError`/:class:`TypeError` for invalid inline
        definitions — the same behavior as constructing the model objects
        directly.
        """
        from ..registry import default_registry

        registry = registry if registry is not None else default_registry()
        qubit = (
            registry.qubit(self.qubit) if isinstance(self.qubit, str) else self.qubit
        )
        scheme = (
            registry.scheme(self.scheme, qubit)
            if isinstance(self.scheme, str)
            else self.scheme
        )
        if isinstance(self.program, LogicalCounts):
            program: object = self.program
            program_key: Hashable | None = None
        else:
            program, program_key = self.program.resolve(self.backend)
        return EstimateRequest(
            program=program,
            qubit=qubit,
            scheme=scheme,
            budget=self.budget,
            constraints=self.constraints,
            synthesis=self.synthesis,
            program_key=program_key,
            label=self.label,
        )


@dataclass(frozen=True, eq=False)
class SpecOutcome:
    """Result of one spec: an estimate (possibly store-served) or an error."""

    spec: EstimateSpec
    spec_hash: str
    result: PhysicalResourceEstimates | None
    error: str | None
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


def run_specs(
    specs: Sequence[EstimateSpec],
    *,
    registry: "Registry | None" = None,
    store: "ResultStore | None" = None,
    cache: EstimateCache | None = None,
    max_workers: int | None = 1,
) -> list[SpecOutcome]:
    """Evaluate declarative specs through the store and the batch engine.

    For each spec (order preserved): resolve names through the registry
    and compute the *resolved* content hash, answer from ``store`` when
    it holds a valid document, otherwise run through
    :func:`estimate_batch` (sharing its in-memory cross-point memos and
    process fan-out) and write successful results back. Keying the store
    on the resolved hash means a scenario file redefining a profile or
    scheme name changes the address — a stale result computed for the
    old definition can never be served. Duplicate hashes within one call
    are computed once. Invalid specs (unknown profile or scheme names,
    malformed inline definitions) become failed outcomes rather than
    aborting the batch — a service must answer per spec.

    Store lookups are counted on the cache's :meth:`EstimateCache.stats`
    under ``store``; passing no cache uses the module-shared one.
    """
    from ..registry import default_registry
    from .batch import _SHARED_CACHE  # shared instance also used by defaults

    stats_cache = cache if cache is not None else _SHARED_CACHE
    resolved_registry = registry if registry is not None else default_registry()

    hashes: list[str] = []
    results: dict[str, Any] = {}
    errors: dict[int, str] = {}
    from_store: set[str] = set()
    to_run: list[tuple[int, str, EstimateRequest]] = []
    seen_misses: set[str] = set()

    for index, spec in enumerate(specs):
        try:
            request = spec.to_request(resolved_registry)
            spec_hash = spec.content_hash(resolved_registry)
        except (KeyError, ValueError, TypeError) as exc:
            message = str(exc)
            if isinstance(exc, KeyError) and exc.args:
                message = str(exc.args[0])  # KeyError str() adds quotes
            errors[index] = message
            hashes.append(spec.content_hash())  # syntactic; no store I/O
            continue
        hashes.append(spec_hash)
        if spec_hash in results or spec_hash in seen_misses:
            continue  # duplicate of an earlier hit/miss; computed once
        if store is not None:
            hit = store.get(spec_hash)
            stats_cache.record_store_lookup(hit is not None)
            if hit is not None:
                results[spec_hash] = hit
                from_store.add(spec_hash)
                continue
        seen_misses.add(spec_hash)
        to_run.append((index, spec_hash, request))

    if to_run:
        outcomes = estimate_batch(
            [request for _, _, request in to_run],
            max_workers=max_workers,
            cache=cache,
        )
        for (index, spec_hash, _), outcome in zip(to_run, outcomes):
            if outcome.ok:
                results[spec_hash] = outcome.result
                if store is not None:
                    store.put(
                        spec_hash, outcome.result, spec=specs[index].to_dict()
                    )
            else:
                errors[index] = outcome.error or "estimation failed"

    final: list[SpecOutcome] = []
    for index, (spec, spec_hash) in enumerate(zip(specs, hashes)):
        result = results.get(spec_hash)
        if result is not None:
            final.append(
                SpecOutcome(
                    spec=spec,
                    spec_hash=spec_hash,
                    result=result,
                    error=None,
                    from_store=spec_hash in from_store,
                )
            )
        else:
            # A failed hash-duplicate of an earlier spec shares its error.
            error = errors.get(index)
            if error is None:
                error = next(
                    (
                        errors[i]
                        for i in sorted(errors)
                        if hashes[i] == spec_hash
                    ),
                    "estimation failed",
                )
            final.append(
                SpecOutcome(
                    spec=spec,
                    spec_hash=spec_hash,
                    result=None,
                    error=error,
                    from_store=False,
                )
            )
    return final
