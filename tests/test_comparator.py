"""Tests for comparators, constant addition, and the incrementer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.comparator import (
    add_constant,
    add_constant_counts,
    compare_greater_equal_constant,
    compare_less_than,
    compare_less_than_constant,
    compare_less_than_constant_counts,
    compare_less_than_counts,
    increment,
    subtract_constant,
)
from repro.ir import CircuitBuilder, validate
from repro.sim import run_reversible


def _init(reg, value):
    return {q: (value >> i) & 1 for i, q in enumerate(reg)}


class TestAddConstant:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_exhaustive(self, n):
        for k in range(1 << n):
            for bv in range(1 << n):
                b = CircuitBuilder()
                br = b.allocate_register(n)
                scratch = b.allocate_register(n)
                add_constant(b, k, br, scratch)
                b.release_register(scratch)  # sim checks it's clean
                c = b.finish()
                validate(c)
                sim = run_reversible(c, _init(br, bv))
                assert sim.read_register(br) == (bv + k) % (1 << n)

    def test_counts_match_trace(self):
        for n, k in [(4, 5), (8, 255), (8, 1), (10, 512)]:
            b = CircuitBuilder()
            br = b.allocate_register(n)
            scratch = b.allocate_register(max(k.bit_length(), 1))
            add_constant(b, k, br, scratch)
            traced = b.finish().logical_counts()
            counted = add_constant_counts(k, n)
            assert traced.ccix_count == counted.ccix
            assert traced.measurement_count == counted.measurements

    @given(
        n=st.integers(1, 16),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_subtract_inverts_add(self, n, data):
        k = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        b = CircuitBuilder()
        br = b.allocate_register(n)
        scratch = b.allocate_register(n)
        add_constant(b, k, br, scratch)
        subtract_constant(b, k, br, scratch)
        sim = run_reversible(b.finish(), _init(br, bv))
        assert sim.read_register(br) == bv

    def test_increment_wraps(self):
        b = CircuitBuilder()
        r = b.allocate_register(3)
        scratch = b.allocate_register(1)
        increment(b, r, scratch)
        sim = run_reversible(b.finish(), _init(r, 7))
        assert sim.read_register(r) == 0


class TestCompareQuantum:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exhaustive(self, n):
        for xv in range(1 << n):
            for yv in range(1 << n):
                b = CircuitBuilder()
                xr, yr = b.allocate_register(n), b.allocate_register(n)
                out = b.allocate()
                compare_less_than(b, xr, yr, out)
                c = b.finish()
                validate(c)
                sim = run_reversible(c, {**_init(xr, xv), **_init(yr, yv)})
                assert sim.bit(out) == int(xv < yv), (n, xv, yv)
                assert sim.read_register(xr) == xv
                assert sim.read_register(yr) == yv

    def test_xor_semantics(self):
        b = CircuitBuilder()
        xr, yr = b.allocate_register(3), b.allocate_register(3)
        out = b.allocate()
        b.x(out)  # pre-set
        compare_less_than(b, xr, yr, out)  # 0 < 0 is false: out unchanged
        sim = run_reversible(b.finish())
        assert sim.bit(out) == 1

    def test_length_mismatch_rejected(self):
        b = CircuitBuilder()
        xr, yr = b.allocate_register(3), b.allocate_register(4)
        out = b.allocate()
        with pytest.raises(ValueError, match="equal lengths"):
            compare_less_than(b, xr, yr, out)

    def test_counts_match_trace(self):
        for n in (2, 5, 9):
            b = CircuitBuilder()
            xr, yr = b.allocate_register(n), b.allocate_register(n)
            out = b.allocate()
            compare_less_than(b, xr, yr, out)
            traced = b.finish().logical_counts()
            counted = compare_less_than_counts(n)
            assert traced.ccix_count == counted.ccix
            assert traced.measurement_count == counted.measurements


class TestCompareConstant:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exhaustive_less_than(self, n):
        for k in range(1 << (n + 1)):  # include out-of-range constants
            for xv in range(1 << n):
                b = CircuitBuilder()
                xr = b.allocate_register(n)
                out = b.allocate()
                compare_less_than_constant(b, xr, k, out)
                c = b.finish()
                validate(c)
                sim = run_reversible(c, _init(xr, xv))
                assert sim.bit(out) == int(xv < k), (n, k, xv)
                assert sim.read_register(xr) == xv

    @given(n=st.integers(1, 12), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_geq_is_negation(self, n, data):
        k = data.draw(st.integers(0, (1 << n) - 1))
        xv = data.draw(st.integers(0, (1 << n) - 1))
        b = CircuitBuilder()
        xr = b.allocate_register(n)
        out = b.allocate()
        compare_greater_equal_constant(b, xr, k, out)
        sim = run_reversible(b.finish(), _init(xr, xv))
        assert sim.bit(out) == int(xv >= k)

    def test_counts_match_trace(self):
        for n, k in [(4, 7), (6, 1), (8, 200)]:
            b = CircuitBuilder()
            xr = b.allocate_register(n)
            out = b.allocate()
            compare_less_than_constant(b, xr, k, out)
            traced = b.finish().logical_counts()
            counted = compare_less_than_constant_counts(n, k)
            assert traced.ccix_count == counted.ccix
            assert traced.measurement_count == counted.measurements

    def test_degenerate_constants_cost_nothing(self):
        assert compare_less_than_constant_counts(4, 0).ccix == 0
        assert compare_less_than_constant_counts(4, 16).ccix == 0
