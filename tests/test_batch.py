"""Tests for the batch/sweep engine and the surfaces wired on top of it.

Covers the determinism guarantee (serial == parallel == legacy per-point
``estimate()``), cache behavior, per-point failure reporting, and the
frontier's single-pass Pareto filter with skipped-factor diagnostics.
"""

from __future__ import annotations

import pytest

from repro import (
    Constraints,
    LogicalCounts,
    estimate,
    estimate_frontier,
    qubit_params,
)
from repro.arithmetic import multiplier_by_name
from repro.estimator.batch import (
    EstimateCache,
    EstimateRequest,
    estimate_batch,
    request_grid,
)
from repro.estimator.frontier import Frontier, FrontierPoint, pareto_frontier
from repro.experiments.runner import multiplier_request
from repro.qec import FLOQUET_CODE, default_scheme_for

MAJ = qubit_params("qubit_maj_ns_e4")
GATE = qubit_params("qubit_gate_ns_e3")

WORKLOAD = LogicalCounts(
    num_qubits=100, t_count=10**5, ccz_count=10**5, measurement_count=10**4
)

#: A small Fig. 3 grid: 3 algorithms x 2 sizes on the paper's profile.
FIG3_GRID = [
    (algorithm, bits, "qubit_maj_ns_e4")
    for algorithm in ("schoolbook", "karatsuba", "windowed")
    for bits in (32, 64)
]


class TestDeterminism:
    """estimate_batch serial vs parallel vs legacy estimate() agree."""

    @pytest.fixture(scope="class")
    def requests(self):
        return [
            multiplier_request(algorithm, bits, profile, budget=1e-4)
            for algorithm, bits, profile in FIG3_GRID
        ]

    def test_serial_parallel_and_legacy_identical(self, requests):
        serial = estimate_batch(requests, max_workers=1, cache=EstimateCache())
        parallel = estimate_batch(requests, max_workers=2)
        legacy = []
        for algorithm, bits, profile in FIG3_GRID:
            qubit = qubit_params(profile)
            legacy.append(
                estimate(
                    multiplier_by_name(algorithm, bits).logical_counts(),
                    qubit,
                    scheme=default_scheme_for(qubit),
                    budget=1e-4,
                )
            )
        for s, p, l in zip(serial, parallel, legacy):
            assert s.ok and p.ok
            assert s.result.to_dict() == p.result.to_dict() == l.to_dict()

    def test_order_preserved(self, requests):
        outcomes = estimate_batch(requests, max_workers=2)
        assert [o.request.label for o in outcomes] == [
            f"{a}/{b}/{p}" for a, b, p in FIG3_GRID
        ]

    def test_custom_designer_survives_parallel_fanout(self):
        # Regression: a custom designer used to be dropped by the worker
        # processes (they fell back to the shared default), making
        # parallel results diverge from serial ones.
        from repro import TFactoryDesigner

        requests = [
            EstimateRequest(program=WORKLOAD, qubit=MAJ, budget=b)
            for b in (1e-3, 1e-4)
        ]
        restricted = lambda: EstimateCache(designer=TFactoryDesigner(max_rounds=1))
        serial = estimate_batch(requests, max_workers=1, cache=restricted())
        parallel = estimate_batch(requests, max_workers=2, cache=restricted())
        assert [(o.ok, o.error) for o in serial] == [
            (o.ok, o.error) for o in parallel
        ]
        # This workload is infeasible with a single-round designer, so the
        # regression (workers using the default designer) would show up as
        # parallel succeeding where serial fails.
        assert not serial[0].ok


class TestBatchEngine:
    def test_empty_batch(self):
        assert estimate_batch([]) == []

    def test_single_point_matches_estimate(self):
        outcome = estimate_batch(
            [EstimateRequest(program=WORKLOAD, qubit=MAJ, budget=1e-3)]
        )[0]
        assert outcome.ok
        assert outcome.error is None
        assert (
            outcome.result.to_dict() == estimate(WORKLOAD, MAJ, budget=1e-3).to_dict()
        )

    def test_infeasible_point_reported_not_raised(self):
        requests = [
            EstimateRequest(program=WORKLOAD, qubit=MAJ, budget=1e-3),
            EstimateRequest(
                program=WORKLOAD,
                qubit=MAJ,
                budget=1e-3,
                constraints=Constraints(max_physical_qubits=100),
            ),
        ]
        ok, bad = estimate_batch(requests)
        assert ok.ok
        assert not bad.ok
        assert "physical qubits" in bad.error
        with pytest.raises(Exception, match="physical qubits"):
            bad.unwrap()

    def test_bad_program_type_raises_immediately(self):
        with pytest.raises(TypeError, match="logical_counts"):
            estimate_batch(
                [EstimateRequest(program="not a program", qubit=MAJ)]
            )

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            estimate_batch(
                [EstimateRequest(program=WORKLOAD, qubit=MAJ)], max_workers=0
            )

    def test_program_factory_is_evaluated_lazily(self):
        calls = []

        def factory():
            calls.append(1)
            return WORKLOAD

        requests = [
            EstimateRequest(program=factory, qubit=MAJ, program_key="shared"),
            EstimateRequest(program=factory, qubit=GATE, program_key="shared"),
        ]
        outcomes = estimate_batch(requests, max_workers=1, cache=EstimateCache())
        assert all(o.ok for o in outcomes)
        assert len(calls) == 1  # traced once despite two points


class TestEstimateCache:
    def test_counts_memoized_by_program_key(self):
        cache = EstimateCache()
        circuit_counts = multiplier_by_name("windowed", 32)
        cache.resolve_counts(circuit_counts, key=("w", 32))
        cache.resolve_counts(circuit_counts, key=("w", 32))
        assert cache.stats()["counts"] == {"hits": 1, "misses": 1}

    def test_logical_counts_bypass_cache(self):
        cache = EstimateCache()
        assert cache.resolve_counts(WORKLOAD) is WORKLOAD
        assert cache.stats()["counts"]["misses"] == 0

    def test_factory_and_distance_memos_hit_on_identical_points(self):
        cache = EstimateCache()
        requests = [
            EstimateRequest(program=WORKLOAD, qubit=MAJ, budget=1e-3)
            for _ in range(3)
        ]
        estimate_batch(requests, max_workers=1, cache=cache)
        stats = cache.stats()
        assert stats["factories"] == {"hits": 2, "misses": 1}
        assert stats["distances"]["misses"] >= 1
        assert stats["distances"]["hits"] >= 2

    def test_clear_resets_memos(self):
        cache = EstimateCache()
        estimate_batch(
            [EstimateRequest(program=WORKLOAD, qubit=MAJ)], cache=cache
        )
        cache.clear()
        estimate_batch(
            [EstimateRequest(program=WORKLOAD, qubit=MAJ)], cache=cache
        )
        assert cache.stats()["factories"]["misses"] == 2

    def test_caching_never_changes_results(self):
        cache = EstimateCache()
        requests = [
            EstimateRequest(program=WORKLOAD, qubit=MAJ, budget=1e-3)
            for _ in range(2)
        ]
        first, second = estimate_batch(requests, max_workers=1, cache=cache)
        assert first.result.to_dict() == second.result.to_dict()


class TestRequestGrid:
    def test_cartesian_order_and_size(self):
        grid = request_grid(
            [(WORKLOAD, "w", "workload")],
            [MAJ, GATE],
            budgets=(1e-3, 1e-4),
        )
        assert len(grid) == 4
        assert grid[0].qubit is MAJ and grid[0].budget == 1e-3
        assert grid[1].qubit is MAJ and grid[1].budget == 1e-4
        assert grid[2].qubit is GATE
        assert all(r.label == "workload" for r in grid)

    def test_scheme_for_hook(self):
        grid = request_grid(
            [(WORKLOAD, None, None)], [MAJ], scheme_for=default_scheme_for
        )
        assert grid[0].scheme.name == "floquet_code"


class TestFrontierThroughBatch:
    def test_all_points_failing_reports_skipped_factors(self):
        # Floquet code cannot run on gate-based qubits: every ladder point
        # fails, and the frontier reports them instead of dropping them.
        frontier = estimate_frontier(
            WORKLOAD, GATE, scheme=FLOQUET_CODE, depth_factors=[1.0, 2.0, 4.0]
        )
        assert isinstance(frontier, Frontier)
        assert list(frontier) == []
        assert frontier.num_skipped == 3
        assert frontier.skipped_factors == (1.0, 2.0, 4.0)
        assert all("majorana" in message for _, message in frontier.skipped)

    def test_feasible_frontier_has_no_skips(self):
        frontier = estimate_frontier(WORKLOAD, MAJ, budget=1e-3)
        assert frontier
        assert frontier.num_skipped == 0

    def test_frontier_matches_per_point_estimates(self):
        frontier = estimate_frontier(
            WORKLOAD, MAJ, budget=1e-3, depth_factors=[1.0, 8.0]
        )
        for point in frontier:
            direct = estimate(
                WORKLOAD,
                MAJ,
                budget=1e-3,
                constraints=Constraints(
                    logical_depth_factor=point.logical_depth_factor
                ),
            )
            assert point.estimates.to_dict() == direct.to_dict()


class TestParetoSinglePass:
    def _points(self, pairs):
        """Fake frontier points from (runtime, qubits) pairs."""

        class FakeEstimates:
            def __init__(self, runtime, qubits):
                self.runtime_seconds = runtime
                self.physical_qubits = qubits

        return [
            FrontierPoint(logical_depth_factor=float(i), estimates=FakeEstimates(r, q))
            for i, (r, q) in enumerate(pairs)
        ]

    def _brute_force(self, points):
        ordered = sorted(
            points, key=lambda pt: (pt.runtime_seconds, pt.physical_qubits)
        )
        frontier = []
        for pt in ordered:
            if all(pt.physical_qubits < kept.physical_qubits for kept in frontier):
                frontier.append(pt)
        return frontier

    @pytest.mark.parametrize(
        "pairs",
        [
            [],
            [(1.0, 100)],
            [(1.0, 100), (2.0, 50), (3.0, 25)],
            [(1.0, 100), (2.0, 100), (3.0, 100)],  # ties dominated
            [(3.0, 25), (1.0, 100), (2.0, 50), (2.5, 60)],  # unsorted + dominated
            [(1.0, 50), (1.0, 40), (2.0, 45)],  # equal runtimes
        ],
    )
    def test_matches_quadratic_filter(self, pairs):
        points = self._points(pairs)
        fast = pareto_frontier(points)
        slow = self._brute_force(points)
        assert [(p.runtime_seconds, p.physical_qubits) for p in fast] == [
            (p.runtime_seconds, p.physical_qubits) for p in slow
        ]

    def test_kept_qubits_strictly_decreasing(self):
        points = self._points([(1.0, 100), (2.0, 80), (2.5, 90), (3.0, 60)])
        frontier = pareto_frontier(points)
        qubits = [p.physical_qubits for p in frontier]
        assert qubits == sorted(qubits, reverse=True)
        assert len(set(qubits)) == len(qubits)


class TestExecutorFallbackObservability:
    """Serial degradations are recorded, never silent (PR 10 bugfix)."""

    def test_unpicklable_batch_records_reason_and_logs(self):
        import io
        import json as jsonlib

        from repro.estimator.batch import set_executor_log
        from repro.jsonlog import StructuredLogger

        stream = io.StringIO()
        set_executor_log(StructuredLogger(stream))
        try:
            cache = EstimateCache()
            requests = [
                EstimateRequest(
                    program=(lambda: WORKLOAD),  # lambdas cannot pickle
                    qubit=GATE,
                    budget=budget,
                )
                for budget in (1e-3, 1e-4)
            ]
            outcomes = estimate_batch(requests, cache=cache, max_workers=2)
        finally:
            set_executor_log(None)
        assert all(outcome.result is not None for outcome in outcomes)
        executor = cache.stats()["executor"]
        assert executor == {
            "serialFallbacks": 1,
            "lastFallbackReason": "unpicklable",
        }
        events = [
            jsonlib.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert len(events) == 1
        assert events[0]["event"] == "executor.fallback"
        assert events[0]["reason"] == "unpicklable"

    def test_fresh_cache_reports_zero_fallbacks(self):
        executor = EstimateCache().stats()["executor"]
        assert executor == {"serialFallbacks": 0, "lastFallbackReason": None}
