"""Tests for the ASCII figure rendering."""

from __future__ import annotations

import pytest

from repro.experiments.plots import (
    GLYPHS,
    render_fig3_charts,
    render_fig4_chart,
    render_scaling_chart,
)
from repro.experiments.runner import EstimateRow


def _row(algorithm, bits, profile="qubit_maj_ns_e4", qubits=10**6, runtime=1.0):
    return EstimateRow(
        algorithm=algorithm,
        bits=bits,
        profile=profile,
        physical_qubits=qubits,
        runtime_seconds=runtime,
        code_distance=9,
        logical_qubits=100,
        logical_depth=1000,
        num_t_states=500,
        t_factory_copies=3,
        rqops=1e8,
    )


@pytest.fixture
def sweep_rows():
    rows = []
    for i, bits in enumerate((32, 64, 128, 256)):
        rows.append(_row("schoolbook", bits, qubits=10**6 * 4**i, runtime=0.01 * 4**i))
        rows.append(_row("karatsuba", bits, qubits=2 * 10**6 * 3**i, runtime=0.02 * 3**i))
        rows.append(_row("windowed", bits, qubits=10**6 * 4**i, runtime=0.005 * 4**i))
    return rows


class TestScalingChart:
    def test_contains_axes_and_glyphs(self, sweep_rows):
        chart = render_scaling_chart(
            sweep_rows, lambda r: float(r.physical_qubits), title="qubits"
        )
        assert chart.startswith("qubits")
        for glyph in GLYPHS.values():
            assert glyph in chart
        assert "bits" in chart
        assert "32" in chart and "256" in chart

    def test_extremes_labelled(self, sweep_rows):
        chart = render_scaling_chart(
            sweep_rows, lambda r: r.runtime_seconds, title="t"
        )
        assert "6.40e-01" in chart  # max runtime label
        assert "5.00e-03" in chart  # min runtime label

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError, match="no rows"):
            render_scaling_chart([], lambda r: 1.0, title="x")

    def test_nonpositive_metric_rejected(self, sweep_rows):
        with pytest.raises(ValueError, match="positive"):
            render_scaling_chart(sweep_rows, lambda r: 0.0, title="x")

    def test_overlap_marker(self):
        rows = [
            _row("schoolbook", 32, qubits=100, runtime=1.0),
            _row("karatsuba", 32, qubits=100, runtime=1.0),
            _row("schoolbook", 64, qubits=10_000, runtime=2.0),
        ]
        chart = render_scaling_chart(
            rows, lambda r: float(r.physical_qubits), title="overlap"
        )
        assert "*" in chart

    def test_fig3_composite(self, sweep_rows):
        combined = render_fig3_charts(sweep_rows)
        assert "Figure 3a" in combined
        assert "Figure 3b" in combined


class TestFig4Chart:
    def test_bars_grouped_by_profile(self):
        rows = [
            _row("schoolbook", 2048, profile="qubit_gate_ns_e3", runtime=195),
            _row("windowed", 2048, profile="qubit_gate_ns_e3", runtime=34),
            _row("schoolbook", 2048, profile="qubit_maj_ns_e4", runtime=75),
            _row("windowed", 2048, profile="qubit_maj_ns_e4", runtime=12),
        ]
        chart = render_fig4_chart(rows)
        assert "qubit_gate_ns_e3:" in chart
        assert "qubit_maj_ns_e4:" in chart
        assert chart.index("qubit_gate_ns_e3:") < chart.index("qubit_maj_ns_e4:")
        assert "#" in chart

    def test_longer_runtime_longer_bar(self):
        rows = [
            _row("schoolbook", 2048, runtime=1000.0),
            _row("windowed", 2048, runtime=1.0),
        ]
        chart = render_fig4_chart(rows)
        slow_bar = next(l for l in chart.splitlines() if "schoolbook" in l)
        fast_bar = next(l for l in chart.splitlines() if "windowed" in l)
        assert slow_bar.count("#") > fast_bar.count("#")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no rows"):
            render_fig4_chart([])
