"""The QIR interchange workflow (paper Sec. IV-B.2).

The tool is "built on top of QIR": programs written in any front end that
emits QIR can be estimated without the front end being present. This
example plays both sides: it authors a circuit with the builder, emits
textual QIR to disk (what PyQIR or a Q# compiler would produce), then
re-enters through the QIR parser — including via the command-line
interface — and confirms the estimates are identical.

Run:  python examples/qir_workflow.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro import emit_qir, estimate, parse_qir, qubit_params
from repro.arithmetic import WindowedMultiplier

# --- author a program and serialize it to QIR --------------------------------
multiplier = WindowedMultiplier(24)
circuit = multiplier.circuit()
qir_text = emit_qir(circuit, entry_point="multiply_24bit")

workdir = Path(tempfile.mkdtemp(prefix="repro-qir-"))
qir_path = workdir / "multiply.ll"
qir_path.write_text(qir_text)
print(f"emitted {len(qir_text.splitlines()):,} lines of QIR to {qir_path}")
print("first instructions:")
for line in qir_text.splitlines()[2:7]:
    print(f"  {line}")

# --- re-enter through the parser ---------------------------------------------
reparsed = parse_qir(qir_path.read_text())
assert reparsed.logical_counts() == circuit.logical_counts()
print("\nround-trip counts identical:", reparsed.logical_counts().to_dict())

qubit = qubit_params("qubit_maj_ns_e4")
direct = estimate(circuit, qubit, budget=1e-4)
via_qir = estimate(reparsed, qubit, budget=1e-4)
assert direct.to_dict() == via_qir.to_dict()
print(
    f"estimates agree: {direct.physical_qubits:,} physical qubits, "
    f"{direct.runtime_seconds:.3g} s"
)

# --- and through the command line --------------------------------------------
completed = subprocess.run(
    [
        sys.executable, "-m", "repro",
        "--qir", str(qir_path),
        "--profile", "qubit_maj_ns_e4",
        "--budget", "1e-4",
    ],
    capture_output=True,
    text=True,
    check=True,
)
print("\nCLI output for the same file:")
print("\n".join(completed.stdout.splitlines()[:6]))
