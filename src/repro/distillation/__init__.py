"""T-state distillation units and T-factory design (paper Sec. III-D, IV-C.5).

A *distillation unit* consumes ``n_in`` noisy T states and, on success,
produces ``n_out`` better ones; its failure probability and output error
rate are formula parameters over the input error rate and the Clifford
error rate of the substrate it runs on (bare physical qubits, or logical
qubits of the chosen QEC code at some distance).

A *T factory* is a pipeline of distillation rounds. The design search
enumerates unit choices, round counts, and per-round code distances to
find the cheapest factory whose output T states are good enough for the
algorithm's distillation error budget.
"""

from .units import (
    DistillationUnit,
    DistillationUnitError,
    LogicalUnitSpec,
    PhysicalUnitSpec,
    PREDEFINED_UNITS,
    T15_RM_PREP,
    T15_SPACE_EFFICIENT,
)
from .factory import DistillationRound, TFactory, TFactoryError, evaluate_pipeline
from .search import TFactoryDesigner, design_t_factory

__all__ = [
    "DistillationRound",
    "DistillationUnit",
    "DistillationUnitError",
    "LogicalUnitSpec",
    "PhysicalUnitSpec",
    "PREDEFINED_UNITS",
    "T15_RM_PREP",
    "T15_SPACE_EFFICIENT",
    "TFactory",
    "TFactoryDesigner",
    "TFactoryError",
    "design_t_factory",
    "evaluate_pipeline",
]
