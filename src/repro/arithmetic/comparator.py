"""Comparators, uncontrolled constant addition, and the incrementer.

Comparison is implemented by the borrow trick: copy the operand into a
scratch register one bit wider, subtract, and read the top (borrow) bit —
``(x - y) mod 2^(n+1)`` has bit ``n`` set exactly when ``x < y`` for
n-bit operands. The scratch is then uncomputed by adding back and
un-copying, so comparisons are clean and cost four additions' worth of
ANDs.
"""

from __future__ import annotations

from typing import Sequence

from ..ir import Builder
from .adders import add_into, add_into_counts, subtract_into
from .registers import copy_register
from .tally import GateTally


def add_constant(
    builder: Builder,
    constant: int,
    b: Sequence[int],
    scratch: Sequence[int],
) -> None:
    """In-place ``b += constant (mod 2^len(b))`` (uncontrolled).

    ``scratch`` is a zeroed register of at least ``constant.bit_length()``
    qubits, returned to zero (imprint with X gates, add, unimprint).
    """
    if constant < 0:
        raise ValueError(f"constant must be non-negative, got {constant}")
    constant &= (1 << len(b)) - 1
    if constant == 0:
        return
    width = constant.bit_length()
    if width > len(scratch):
        raise ValueError(
            f"scratch register ({len(scratch)} qubits) too small for constant "
            f"of {width} bits"
        )
    used = scratch[:width]
    for position, qubit in enumerate(used):
        if (constant >> position) & 1:
            builder.x(qubit)
    add_into(builder, used, b)
    for position, qubit in enumerate(used):
        if (constant >> position) & 1:
            builder.x(qubit)


def add_constant_counts(constant: int, b_len: int) -> GateTally:
    """Gate tally of :func:`add_constant`."""
    constant &= (1 << b_len) - 1
    if constant == 0:
        return GateTally()
    return add_into_counts(constant.bit_length(), b_len)


def subtract_constant(
    builder: Builder,
    constant: int,
    b: Sequence[int],
    scratch: Sequence[int],
) -> None:
    """In-place ``b -= constant (mod 2^len(b))``."""
    m = len(b)
    constant &= (1 << m) - 1
    if constant == 0:
        return
    # b - k = b + (2^m - k) mod 2^m.
    add_constant(builder, (1 << m) - constant, b, scratch)


def increment(
    builder: Builder, register: Sequence[int], scratch: Sequence[int]
) -> None:
    """In-place ``register += 1 (mod 2^len)``."""
    add_constant(builder, 1, register, scratch)


def compare_less_than(
    builder: Builder,
    x: Sequence[int],
    y: Sequence[int],
    out: int,
) -> None:
    """``out ^= (x < y)`` for equal-length quantum registers; x, y preserved."""
    if len(x) != len(y):
        raise ValueError(
            f"comparison needs equal lengths, got {len(x)} and {len(y)}"
        )
    n = len(x)
    scratch = builder.allocate_register(n + 1)
    copy_register(builder, x, scratch)
    subtract_into(builder, y, scratch)
    builder.cx(scratch[n], out)  # borrow bit == (x < y)
    add_into(builder, y, scratch)
    copy_register(builder, x, scratch)  # CX is self-inverse: un-copy
    builder.release_register(scratch)


def compare_less_than_counts(n: int) -> GateTally:
    """Gate tally of :func:`compare_less_than`."""
    return add_into_counts(n, n + 1) * 2


def compare_less_than_constant(
    builder: Builder,
    x: Sequence[int],
    constant: int,
    out: int,
) -> None:
    """``out ^= (x < constant)``; x preserved.

    ``constant`` may be any non-negative value; comparisons against values
    above ``2^len(x) - 1`` are always true and cost a single X gate.
    """
    if constant < 0:
        raise ValueError(f"constant must be non-negative, got {constant}")
    n = len(x)
    if constant >> n:
        builder.x(out)  # every n-bit x is smaller
        return
    if constant == 0:
        return  # x < 0 is never true
    scratch = builder.allocate_register(n + 1)
    # The subtraction imprints the complement 2^(n+1) - constant, which can
    # occupy all n+1 bits regardless of the constant's own width.
    const_scratch = builder.allocate_register(n + 1)
    copy_register(builder, x, scratch)
    subtract_constant(builder, constant, scratch, const_scratch)
    builder.cx(scratch[n], out)
    add_constant(builder, constant, scratch, const_scratch)
    copy_register(builder, x, scratch)
    builder.release_register(const_scratch)
    builder.release_register(scratch)


def compare_less_than_constant_counts(n: int, constant: int) -> GateTally:
    """Gate tally of :func:`compare_less_than_constant`."""
    if constant >> n or constant == 0:
        return GateTally()
    m = n + 1
    down = (1 << m) - (constant & ((1 << m) - 1))
    return add_constant_counts(down, m) + add_constant_counts(constant, m)


def compare_greater_equal_constant(
    builder: Builder,
    x: Sequence[int],
    constant: int,
    out: int,
) -> None:
    """``out ^= (x >= constant)``; x preserved."""
    builder.x(out)
    compare_less_than_constant(builder, x, constant, out)
