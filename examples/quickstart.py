"""Quickstart: estimate physical resources from known logical counts.

This is the "known logical estimates" input path of the tool (paper
Sec. IV-B.3): no circuit needed, just the gate counts of your algorithm —
here a workload sized like a small quantum chemistry simulation.

Run:  python examples/quickstart.py
"""

from repro import Constraints, LogicalCounts, estimate, qubit_params

# A workload with every kind of logical resource: qubits, T gates,
# Toffolis (CCZ), arbitrary rotations, and measurements.
counts = LogicalCounts(
    num_qubits=230,
    t_count=700_000,
    ccz_count=1_200_000,
    rotation_count=25_000,
    rotation_depth=8_000,
    measurement_count=300_000,
)

# Estimate for a superconducting-style profile with the surface code
# (the default scheme for gate-based hardware) and a 0.1% error budget.
result = estimate(counts, qubit_params("qubit_gate_ns_e3"), budget=1e-3)

print(result.summary())
print()
print(f"The computation runs at {result.rqops:.3g} rQOPS and needs")
print(
    f"{result.physical_qubits:,} physical qubits for "
    f"{result.runtime_seconds:.1f} seconds."
)

# The same workload under a T-factory cap: fewer factories, longer runtime.
capped = estimate(
    counts,
    qubit_params("qubit_gate_ns_e3"),
    budget=1e-3,
    constraints=Constraints(max_t_factories=5),
)
print()
print(
    f"Capped at 5 T factories: {capped.physical_qubits:,} physical qubits "
    f"(was {result.physical_qubits:,}), "
    f"{capped.runtime_seconds:.1f} s (was {result.runtime_seconds:.1f} s)."
)

# Full machine-readable output (the tool's eight output groups).
report = capped.to_dict()
print()
print("Output groups:", ", ".join(sorted(report)))
