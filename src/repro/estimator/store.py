"""Content-addressed persistent result store.

Every estimation result can be addressed by the content hash of the
:class:`~repro.estimator.spec.EstimateSpec` that produced it — estimation
is deterministic, so the spec hash *is* the result identity. The store
keeps one JSON document per hash on disk, which buys three things the
in-memory :class:`~repro.estimator.batch.EstimateCache` cannot:

* **cross-process reuse** — a second process (or a restarted service)
  re-running the same sweep grid answers from disk in milliseconds
  instead of re-solving every fixed point;
* **warm starts** — the fig3/fig4 reproductions and CLI batch grids skip
  all previously-computed points (``benchmarks/test_store.py`` asserts a
  >= 10x warm-run speedup floor);
* **serving** — the estimation service's ``GET /v1/results/<hash>``
  endpoint reads stored documents directly.

Layout and durability
---------------------
Entries live under ``<root>/<schema-tag>/<hh>/<hash>.json`` where ``hh``
is the first two hash hex digits (fan-out keeps directories small). The
schema tag versions the result serialization: bumping
:data:`RESULT_SCHEMA` (on any change to ``to_dict`` output) makes a new
namespace, so stale entries are never deserialized against new code —
that is the cache-invalidation story, no migration needed.

Writes go through a temporary file in the destination directory followed
by :func:`os.replace`, so concurrent writers and crashes can never leave
a torn document; rewriting the same hash is idempotent. Corrupt or
foreign files read back as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from .result import PhysicalResourceEstimates

__all__ = ["RESULT_SCHEMA", "ResultStore", "default_store_root"]

#: Version tag of the stored result document format. Bump when the
#: ``PhysicalResourceEstimates.to_dict`` schema changes incompatibly;
#: old entries then simply stop being found (no migration required).
RESULT_SCHEMA = "repro-result-v1"

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_STORE_DIR"


def default_store_root() -> Path:
    """``$REPRO_STORE_DIR`` or ``~/.cache/repro/store``."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "store"


class ResultStore:
    """Spec-hash -> result-JSON mapping persisted on disk.

    Parameters
    ----------
    root:
        Store directory; created lazily on first write. Defaults to
        :func:`default_store_root`. Multiple processes may share a root —
        writes are atomic and entries immutable (same hash, same bytes).
    schema:
        Result-document schema tag; entries written under a different tag
        are invisible. Override only in tests.
    """

    def __init__(
        self, root: str | Path | None = None, *, schema: str = RESULT_SCHEMA
    ) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.schema = schema

    # -- paths -------------------------------------------------------------

    @property
    def _base(self) -> Path:
        return self.root / self.schema

    def path_for(self, spec_hash: str) -> Path:
        """Where the document for ``spec_hash`` lives (existing or not)."""
        if not spec_hash or any(c not in "0123456789abcdef" for c in spec_hash):
            raise ValueError(f"malformed spec hash {spec_hash!r}")
        return self._base / spec_hash[:2] / f"{spec_hash}.json"

    # -- reads -------------------------------------------------------------

    def get_raw(self, spec_hash: str) -> dict[str, Any] | None:
        """The stored document for a hash, or ``None`` (missing/corrupt).

        Documents are ``{"schema": ..., "specHash": ..., "spec": ...,
        "result": ...}``; a readable file whose schema or hash does not
        match is treated as a miss, never an error — a shared store
        directory must not be able to crash an estimation run.
        """
        path = self.path_for(spec_hash)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("schema") != self.schema
            or document.get("specHash") != spec_hash
            or not isinstance(document.get("result"), dict)
        ):
            return None
        return document

    def get(self, spec_hash: str) -> PhysicalResourceEstimates | None:
        """The stored result for a hash, deserialized, or ``None``."""
        document = self.get_raw(spec_hash)
        if document is None:
            return None
        try:
            return PhysicalResourceEstimates.from_dict(document["result"])
        except (KeyError, TypeError, ValueError):
            return None  # written by an incompatible (future) build

    def __contains__(self, spec_hash: str) -> bool:
        return self.get_raw(spec_hash) is not None

    def keys(self) -> Iterator[str]:
        """Hashes currently stored under this schema tag."""
        if not self._base.is_dir():
            return
        for path in sorted(self._base.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- writes ------------------------------------------------------------

    def put(
        self,
        spec_hash: str,
        result: PhysicalResourceEstimates,
        *,
        spec: dict[str, Any] | None = None,
    ) -> bool:
        """Persist a result document atomically; returns success.

        ``spec`` (the producing spec's ``to_dict``) is embedded for
        debuggability and re-queueing; it is not required to read the
        result back. An unwritable store degrades to a no-op (``False``)
        instead of failing the estimation that produced the result.
        """
        path = self.path_for(spec_hash)
        document = {
            "schema": self.schema,
            "specHash": spec_hash,
            "spec": spec,
            "result": result.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{spec_hash[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def clear(self) -> int:
        """Remove every entry under this schema tag; returns the count."""
        removed = 0
        for spec_hash in list(self.keys()):
            try:
                self.path_for(spec_hash).unlink()
                removed += 1
            except OSError:
                pass
        return removed
