"""The resource estimation pipeline (paper Sec. III and IV-D).

:func:`estimate` is the single-point entry point: it takes a program (as
pre-layout :class:`~repro.counts.LogicalCounts`, or anything with a
``logical_counts()`` method such as a traced circuit), a hardware profile,
and optional QEC scheme / error budget / constraints, and returns
:class:`PhysicalResourceEstimates` with all eight output groups of the
tool. It composes the explicit stages of :mod:`repro.estimator.stages`.

Sweeps go through :func:`estimate_batch` (:mod:`repro.estimator.batch`):
one engine with cross-point memoization (traced counts, T-factory
designs, code-distance lookups) and optional process fan-out that serves
:func:`estimate_frontier`, the figure runners, and the CLI alike.
Declarative, resumable sweeps — axes over registry names, numeric
ranges, or inline spec fragments, executed in store-backed chunks with
per-group Pareto frontiers — live in :mod:`repro.estimator.sweep`
(:class:`SweepSpec` / :func:`run_sweep`).
"""

from .constraints import Constraints
from .result import (
    PhysicalCounts,
    PhysicalResourceEstimates,
    ResourceBreakdown,
    TFactoryUsage,
)
from .stages import (
    EstimationContext,
    EstimationError,
    FixedPointSolution,
    solve_code_distance_fixed_point,
)
from .pipeline import estimate
from .batch import (
    AUTO_BATCH_THRESHOLD,
    BACKEND_CHOICES,
    BatchOutcome,
    EstimateCache,
    EstimateRequest,
    estimate_batch,
)
from .frontier import Frontier, FrontierPoint, estimate_frontier
from .optimize import (
    OptimizeConstraints,
    OptimizeProbe,
    OptimizeProgress,
    OptimizeResult,
    OptimizeSpec,
    reduce_answer,
    run_optimize,
)
from .queue import Lease, QueueJob, SweepQueue, WorkerReport, run_worker
from .spec import EstimateSpec, ProgramRef, SpecOutcome, run_specs
from .store import ResultStore
from .sweep import (
    FrontierGroup,
    FrontierSpec,
    SweepAxis,
    SweepPointOutcome,
    SweepProgress,
    SweepResult,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "AUTO_BATCH_THRESHOLD",
    "BACKEND_CHOICES",
    "BatchOutcome",
    "Constraints",
    "EstimateCache",
    "EstimateRequest",
    "EstimateSpec",
    "EstimationContext",
    "EstimationError",
    "FixedPointSolution",
    "Frontier",
    "FrontierGroup",
    "FrontierPoint",
    "FrontierSpec",
    "Lease",
    "OptimizeConstraints",
    "OptimizeProbe",
    "OptimizeProgress",
    "OptimizeResult",
    "OptimizeSpec",
    "PhysicalCounts",
    "PhysicalResourceEstimates",
    "ProgramRef",
    "QueueJob",
    "ResourceBreakdown",
    "ResultStore",
    "SpecOutcome",
    "SweepAxis",
    "SweepPointOutcome",
    "SweepProgress",
    "SweepQueue",
    "SweepResult",
    "SweepSpec",
    "TFactoryUsage",
    "WorkerReport",
    "estimate",
    "estimate_batch",
    "estimate_frontier",
    "reduce_answer",
    "run_optimize",
    "run_specs",
    "run_sweep",
    "run_worker",
    "solve_code_distance_fixed_point",
]
