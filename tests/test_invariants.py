"""Property-based invariants of the estimation pipeline.

Seeded (``derandomize=True``) hypothesis sweeps over every registry
profile x compatible QEC scheme, pinning the physics-shaped properties a
refactor must never bend:

* **Budget monotonicity** — loosening the total error budget can never
  cost more: runtime and code distance are monotone non-increasing, and
  so are physical qubits once T-factory parallelism is pinned
  (``max_t_factories=1``). Unconstrained total qubit counts are *not*
  monotone by design — a looser budget shortens the runtime, and the
  shorter algorithm needs more simultaneous factory copies to keep up —
  so the suite asserts the invariant in its true form.
* **Frontier non-domination** — every pair of reported frontier points
  is mutually non-dominated in (runtime, physical qubits), and points
  are sorted by increasing runtime.
* **Backend agreement** — the counting and materialize backends produce
  bit-for-bit identical logical counts on sampled multipliers (the
  property that justifies excluding ``backend`` from spec hashes).
* **Kernel agreement** — the scalar walk and the vectorized
  struct-of-arrays kernel produce bit-for-bit identical sweep documents
  (result fields, error strings, and content hashes) over random
  workloads, budgets (including infeasibly tight ones that exercise the
  kernel's scalar fallback), and constraints — the property that lets
  ``kernel=`` stay an execution hint outside the spec hash.

All sweeps run through the declarative layer (:class:`SweepSpec` /
:func:`run_sweep`), the same path as the CLI and the service.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LogicalCounts, Registry, estimate_frontier
from repro.estimator.sweep import SweepAxis, SweepSpec, run_sweep

#: One small workload shared by every property (fast per-point solves).
COUNTS = LogicalCounts(
    num_qubits=40,
    t_count=20_000,
    ccz_count=5_000,
    rotation_count=100,
    rotation_depth=50,
    measurement_count=500,
)

#: Budgets from paper-tight to very loose (the sampled sweep ladder).
BUDGET_LADDER = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


def _profile_scheme_pairs() -> list[tuple[str, str]]:
    """Every (profile, scheme) combination the registry can resolve."""
    registry = Registry()
    pairs = []
    for profile in registry.qubit_names():
        qubit = registry.qubit(profile)
        for scheme in registry.scheme_catalog():
            try:
                registry.scheme(scheme, qubit)
            except KeyError:
                continue  # scheme has no variant for this technology
            pairs.append((profile, scheme))
    return pairs


PAIRS = _profile_scheme_pairs()
PAIR_IDS = [f"{profile}-{scheme}" for profile, scheme in PAIRS]

#: Strategy: a sorted ladder of distinct budgets (loosening order).
budget_ladders = st.lists(
    st.sampled_from(BUDGET_LADDER), min_size=2, max_size=4, unique=True
).map(sorted)


def _budget_sweep(
    profile: str, scheme: str, budgets: list[float], *, max_t_factories=None
) -> list:
    base: dict = {"program": {"counts": COUNTS.to_dict()}, "scheme": {"name": scheme}}
    if max_t_factories is not None:
        base["constraints"] = {"maxTFactories": max_t_factories}
    sweep = SweepSpec(
        base=base,
        axes=(
            SweepAxis("budget", tuple(budgets)),
            SweepAxis("qubit", (profile,)),
        ),
    )
    result = run_sweep(sweep)
    assert result.num_failed == 0, [p.error for p in result.points if not p.ok]
    return [point.result for point in result.points]


def _non_increasing(values) -> bool:
    return all(a >= b for a, b in zip(values, values[1:]))


class TestBudgetMonotonicity:
    @pytest.mark.parametrize("profile,scheme", PAIRS, ids=PAIR_IDS)
    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(budgets=budget_ladders)
    def test_runtime_and_distance_non_increasing(self, profile, scheme, budgets):
        results = _budget_sweep(profile, scheme, budgets)
        assert _non_increasing([r.runtime_seconds for r in results]), (
            profile,
            scheme,
            budgets,
            [r.runtime_seconds for r in results],
        )
        assert _non_increasing([r.code_distance for r in results])

    @pytest.mark.parametrize("profile,scheme", PAIRS, ids=PAIR_IDS)
    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(budgets=budget_ladders)
    def test_physical_qubits_non_increasing_with_pinned_factories(
        self, profile, scheme, budgets
    ):
        # With parallelism pinned, a looser budget can only shrink the
        # code distance (algorithm area) and the factory itself.
        results = _budget_sweep(profile, scheme, budgets, max_t_factories=1)
        assert _non_increasing([r.physical_qubits for r in results]), (
            profile,
            scheme,
            budgets,
            [r.physical_qubits for r in results],
        )
        factories = [
            r.t_factory.physical_qubits if r.t_factory else 0 for r in results
        ]
        assert _non_increasing(factories)


class TestFrontierNonDomination:
    @pytest.mark.parametrize("profile,scheme", PAIRS, ids=PAIR_IDS)
    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(budget=st.sampled_from((1e-4, 1e-3, 1e-2)))
    def test_frontier_points_mutually_non_dominated(self, profile, scheme, budget):
        registry = Registry()
        qubit = registry.qubit(profile)
        frontier = estimate_frontier(
            COUNTS,
            qubit,
            scheme=registry.scheme(scheme, qubit),
            budget=budget,
            depth_factors=[1.0, 2.0, 4.0, 16.0, 64.0],
        )
        runtimes = [point.runtime_seconds for point in frontier]
        assert runtimes == sorted(runtimes), "frontier must be runtime-sorted"
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    a.runtime_seconds <= b.runtime_seconds
                    and a.physical_qubits <= b.physical_qubits
                )
                assert not dominates, (
                    profile,
                    scheme,
                    (a.runtime_seconds, a.physical_qubits),
                    (b.runtime_seconds, b.physical_qubits),
                )


class TestBackendAgreement:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        algorithm=st.sampled_from(("schoolbook", "karatsuba", "windowed")),
        bits=st.sampled_from((4, 6, 8, 12, 16)),
    )
    def test_counting_matches_materialize(self, algorithm, bits):
        from repro.arithmetic import multiplier_by_name

        multiplier = multiplier_by_name(algorithm, bits)
        counting = multiplier.backend_counts("counting")
        materialized = multiplier.backend_counts("materialize")
        assert counting == materialized, (algorithm, bits)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        algorithm=st.sampled_from(("schoolbook", "windowed")),
        bits=st.sampled_from((4, 8)),
    )
    def test_backend_choice_shares_one_spec_hash(self, algorithm, bits):
        # The property that lets the store answer a spec submitted via a
        # different backend: backend is excluded from the content hash.
        from repro.estimator.spec import EstimateSpec, ProgramRef

        hashes = {
            EstimateSpec(
                program=ProgramRef(kind="multiplier", algorithm=algorithm, bits=bits),
                qubit="qubit_maj_ns_e4",
                budget=1e-4,
                backend=backend,
            ).content_hash(Registry())
            for backend in ("formula", "materialize", "counting")
        }
        assert len(hashes) == 1


#: Workloads for the kernel-agreement sweep, from degenerate to large:
#: a zero-operation program (depth clamps to 1, no T factory), a
#: T-free measurement-only program, the shared small workload with
#: rotations, and a large deep one (big intermediate products).
KERNEL_WORKLOADS = (
    LogicalCounts(num_qubits=1),
    LogicalCounts(num_qubits=7, measurement_count=900),
    COUNTS,
    LogicalCounts(
        num_qubits=1_200,
        t_count=10**8,
        ccz_count=10**7,
        rotation_count=10_000,
        rotation_depth=4_000,
        measurement_count=10**6,
    ),
)

#: Budgets for the kernel-agreement sweep. 1e-25 is infeasibly tight for
#: every predefined factory search space — those points fail with an
#: EstimationError raised inside the kernel's scalar fallback, so the
#: error strings are part of what must match.
KERNEL_BUDGETS = (1e-25, 1e-10, 1e-6, 1e-4, 1e-3, 1e-1)


class TestKernelAgreement:
    """Scalar and vectorized kernels: bit-for-bit identical sweeps."""

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        pair=st.sampled_from(PAIRS),
        workload=st.sampled_from(KERNEL_WORKLOADS),
        budgets=st.lists(
            st.sampled_from(KERNEL_BUDGETS), min_size=2, max_size=4, unique=True
        ).map(sorted),
        max_t_factories=st.sampled_from((None, 1, 7)),
        depth_factor=st.sampled_from((1.0, 64.0)),
    )
    def test_sweep_documents_identical(
        self, pair, workload, budgets, max_t_factories, depth_factor
    ):
        profile, scheme = pair
        base: dict = {
            "program": {"counts": workload.to_dict()},
            "scheme": {"name": scheme},
            "constraints": {"logicalDepthFactor": depth_factor},
        }
        if max_t_factories is not None:
            base["constraints"]["maxTFactories"] = max_t_factories
        sweep = SweepSpec(
            base=base,
            axes=(
                SweepAxis("budget", tuple(budgets)),
                SweepAxis("qubit", (profile,)),
            ),
        )
        scalar = run_sweep(sweep, kernel="scalar")
        vectorized = run_sweep(sweep, kernel="vectorized")
        # Full documents: results, per-point error strings, and the
        # content hashes every point is stored under.
        assert scalar.to_dict() == vectorized.to_dict(), (profile, scheme)
