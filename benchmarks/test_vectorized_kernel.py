"""Benchmark: the vectorized struct-of-arrays kernel on a dense sweep.

The acceptance check for the kernel: evaluating a dense 10k-point grid
(budget ladder x profiles x workloads) through
``estimate_batch(backend="vectorized")`` must process points at least
**10x** faster than the scalar per-point walk — the CI floor; a local
run on an idle machine clears ~50x. The scalar baseline is measured on
an interleaved stride-subset of the same grid and expressed as
points/sec (timing the scalar path over all 10k points would dominate
the suite's runtime for no extra information), and results on that
subset are asserted bit-for-bit identical between both kernels.
"""

from __future__ import annotations

import time

from repro import Constraints, LogicalCounts, estimate, qubit_params
from repro.estimator.batch import EstimateCache, EstimateRequest, estimate_batch

#: Geometric budget ladder, 1e-2 down to 1e-7 (dense but feasible
#: everywhere, so the benchmark times the solver, not error replays).
N_BUDGETS = 1250
BUDGETS = tuple(
    10.0 ** (-2.0 - 5.0 * i / (N_BUDGETS - 1)) for i in range(N_BUDGETS)
)
PROFILES = ("qubit_maj_ns_e4", "qubit_gate_ns_e3")
DEPTH_FACTORS = (1.0, 4.0)
WORKLOADS = (
    LogicalCounts(
        num_qubits=40,
        t_count=20_000,
        ccz_count=5_000,
        rotation_count=100,
        rotation_depth=50,
        measurement_count=500,
    ),
    LogicalCounts(
        num_qubits=1_000, t_count=10**7, ccz_count=10**6, measurement_count=10**5
    ),
)

#: Every Nth grid point forms the scalar baseline subset (interleaved so
#: the subset sees the same budget/profile/workload mix as the full grid).
SCALAR_STRIDE = 20


def _grid_requests() -> list[EstimateRequest]:
    return [
        EstimateRequest(
            program=workload,
            qubit=qubit_params(profile),
            budget=budget,
            constraints=Constraints(logical_depth_factor=factor),
        )
        for workload in WORKLOADS
        for profile in PROFILES
        for factor in DEPTH_FACTORS
        for budget in BUDGETS
    ]


def test_vectorized_kernel_10x_points_per_sec_floor():
    requests = _grid_requests()
    assert len(requests) == 10_000

    # Warm the shared T-factory designer catalogs so neither timing pays
    # the one-off search-space construction (same idiom as the batch
    # engine benchmark), and the numpy import so the vectorized timing
    # measures the kernel, not the interpreter's module loader.
    for profile in PROFILES:
        estimate(WORKLOADS[0], qubit_params(profile), budget=1e-4)
    estimate_batch(requests[:2], cache=EstimateCache(), backend="vectorized")

    subset = requests[::SCALAR_STRIDE]
    start = time.perf_counter()
    scalar_outcomes = estimate_batch(
        subset, cache=EstimateCache(), backend="scalar"
    )
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    vector_outcomes = estimate_batch(
        requests, cache=EstimateCache(), backend="vectorized"
    )
    vector_s = time.perf_counter() - start

    # Bit-for-bit equality on the shared subset.
    for s, v in zip(scalar_outcomes, vector_outcomes[::SCALAR_STRIDE]):
        assert s.ok and v.ok, (s.error, v.error)
        assert s.result.to_dict() == v.result.to_dict()

    scalar_rate = len(subset) / scalar_s
    vector_rate = len(requests) / vector_s
    speedup = vector_rate / scalar_rate
    print(
        f"\nscalar: {scalar_rate:,.0f} points/sec "
        f"({len(subset)} points in {scalar_s:.2f}s); "
        f"vectorized: {vector_rate:,.0f} points/sec "
        f"({len(requests)} points in {vector_s:.2f}s); "
        f"speedup: {speedup:.1f}x"
    )
    # CI floor. Locally (idle machine, warm numpy) this clears ~50x.
    assert speedup >= 10.0, (
        f"vectorized kernel at {vector_rate:,.0f} points/sec is only "
        f"{speedup:.1f}x the scalar {scalar_rate:,.0f} points/sec "
        "(floor: 10x)"
    )
