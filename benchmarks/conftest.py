"""Shared fixtures for the figure-reproduction benchmarks."""

from __future__ import annotations

import pytest

from repro.experiments import run_fig3, run_fig4


@pytest.fixture(scope="session")
def fig3_rows():
    """The full Fig. 3 sweep: 3 algorithms x 10 sizes on qubit_maj_ns_e4."""
    return run_fig3()


@pytest.fixture(scope="session")
def fig4_rows():
    """The full Fig. 4 sweep: 3 algorithms x 6 profiles at 2048 bits."""
    return run_fig4()


def series(rows, algorithm):
    """Rows of one algorithm, sorted by bits."""
    return sorted((r for r in rows if r.algorithm == algorithm), key=lambda r: r.bits)
