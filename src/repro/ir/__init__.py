"""Quantum program IR, builders, and pre-layout resource tracing.

This package plays the role of QIR in the tool (paper Sec. III-A, IV-B):
a flat instruction stream recording qubit allocation/release, gate
applications, and measurements. Programs are authored against the
:class:`Builder` protocol, which has two interchangeable backends:

* :class:`CircuitBuilder` materializes every gate into a
  :class:`Circuit`, traced into :class:`~repro.counts.LogicalCounts` by
  :func:`trace` and validated for well-formedness by :func:`validate` —
  the full-fidelity path (simulation, QIR round-trips, ISA lowering).
* :class:`CountingBuilder` streams: emissions fold directly into running
  counts in O(live qubits) memory, with subcircuit memoization for
  structurally-repeated blocks — the scaling path for RSA-sized
  workloads (see :mod:`repro.ir.counting`).

The gate set matches what the tool counts: Clifford gates (free at the
logical level), T gates, arbitrary rotations, CCZ/CCiX, logical-AND
compute/uncompute (Gidney's temporary AND), and single-qubit measurements.
``account_for_estimates`` injects known logical estimates for a subroutine
without emitting its gates, mirroring Q#'s ``AccountForEstimates``.
"""

from .ops import Op, OPCODE_NAMES
from .builder import Builder, BuilderBase, CircuitError, Instruction, QubitHandle
from .circuit import Circuit, CircuitBuilder
from .counting import CountedCircuit, CountingBuilder
from .tracer import trace
from .validate import validate

__all__ = [
    "Builder",
    "BuilderBase",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "CountedCircuit",
    "CountingBuilder",
    "Instruction",
    "OPCODE_NAMES",
    "Op",
    "QubitHandle",
    "trace",
    "validate",
]
