"""Entry point: ``python -m repro.experiments [fig3|fig4|claims|all|save DIR]``.

``save DIR`` runs every experiment and archives fig3/fig4 CSV+JSON and the
claims JSON under ``DIR`` (default ``results/``).
"""

from __future__ import annotations

import sys

from .claims import evaluate_claims, format_claims
from .fig3 import run_fig3
from .fig4 import run_fig4
from .io import regenerate_all
from .runner import format_table


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    which = args[0] if args else "all"
    if which == "save":
        directory = args[1] if len(args) > 1 else "results"
        written = regenerate_all(directory)
        for name, path in sorted(written.items()):
            print(f"wrote {path}")
        return 0
    if which not in ("fig3", "fig4", "claims", "all"):
        print(__doc__)
        return 2
    plot = "--plot" in args
    if which in ("fig3", "all"):
        print("=== Figure 3: qubit_maj_ns_e4 + floquet code, budget 1e-4 ===")
        rows = run_fig3()
        print(format_table(rows))
        if plot:
            from .plots import render_fig3_charts

            print()
            print(render_fig3_charts(rows))
        print()
    if which in ("fig4", "all"):
        print("=== Figure 4: 2048-bit inputs across six profiles, budget 1e-4 ===")
        rows = run_fig4()
        print(format_table(rows))
        if plot:
            from .plots import render_fig4_chart

            print()
            print(render_fig4_chart(rows))
        print()
    if which in ("claims", "all"):
        print("=== Section V in-text claims ===")
        print(format_claims(evaluate_claims()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
