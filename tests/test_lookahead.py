"""Tests for the out-of-place carry-lookahead-style adder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic.lookahead import (
    add_lookahead,
    add_lookahead_ancillas,
    add_lookahead_counts,
)
from repro.arithmetic import add_into_counts
from repro.ir import CircuitBuilder, validate
from repro.sim import run_reversible


def _init(reg, value):
    return {q: (value >> i) & 1 for i, q in enumerate(reg)}


def _run(n, av, bv):
    b = CircuitBuilder()
    ar, br = b.allocate_register(n), b.allocate_register(n)
    tr = b.allocate_register(n + 1)
    add_lookahead(b, ar, br, tr)
    c = b.finish()
    validate(c)
    sim = run_reversible(c, {**_init(ar, av), **_init(br, bv)})
    return sim, ar, br, tr, c


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exhaustive(self, n):
        for av in range(1 << n):
            for bv in range(1 << n):
                sim, ar, br, tr, _ = _run(n, av, bv)
                assert sim.read_register(tr) == av + bv

    @given(n=st.integers(1, 32), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_random(self, n, data):
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        sim, ar, br, tr, _ = _run(n, av, bv)
        assert sim.read_register(tr) == av + bv
        assert sim.read_register(ar) == av, "inputs must be preserved"
        assert sim.read_register(br) == bv

    def test_xor_semantics_into_nonzero_target(self):
        b = CircuitBuilder()
        ar, br = b.allocate_register(3), b.allocate_register(3)
        tr = b.allocate_register(4)
        from repro.arithmetic import write_constant

        write_constant(b, tr, 0b1111)
        add_lookahead(b, ar, br, tr)
        sim = run_reversible(b.finish(), {**_init(ar, 5), **_init(br, 6)})
        assert sim.read_register(tr) == 0b1111 ^ 11

    def test_all_ancillas_returned(self):
        b = CircuitBuilder()
        ar, br = b.allocate_register(8), b.allocate_register(8)
        tr = b.allocate_register(9)
        before = b.num_active_qubits
        add_lookahead(b, ar, br, tr)
        assert b.num_active_qubits == before

    def test_shape_validation(self):
        b = CircuitBuilder()
        ar, br = b.allocate_register(3), b.allocate_register(4)
        tr = b.allocate_register(4)
        with pytest.raises(ValueError, match="lengths differ"):
            add_lookahead(b, ar, br, tr)
        with pytest.raises(ValueError, match="carry-out"):
            add_lookahead(b, ar, ar[:3], tr[:3])


class TestCosts:
    @pytest.mark.parametrize("n", [1, 2, 5, 9, 16])
    def test_counts_match_trace(self, n):
        _, _, _, _, c = _run(n, 0, 0)
        traced = c.logical_counts()
        counted = add_lookahead_counts(n)
        assert traced.ccix_count == counted.ccix
        assert traced.measurement_count == counted.measurements
        assert traced.ccz_count == 0 and traced.t_count == 0

    def test_costs_roughly_triple_the_ripple_adder(self):
        n = 64
        ripple = add_into_counts(n, n).ccix
        lookahead = add_lookahead_counts(n).ccix
        assert 2.5 < lookahead / ripple < 3.3

    def test_ancilla_formula(self):
        assert add_lookahead_ancillas(0) == 0
        assert add_lookahead_ancillas(1) == 2
        assert add_lookahead_ancillas(8) == 16 + 14
