"""Tests for the physical qubit parameter models and profiles."""

from __future__ import annotations

import pytest

from repro.qubits import (
    InstructionSet,
    PREDEFINED_PROFILES,
    PhysicalQubitParams,
    QUBIT_GATE_NS_E3,
    QUBIT_MAJ_NS_E4,
    qubit_params,
)


class TestPredefinedProfiles:
    def test_all_six_present(self):
        assert set(PREDEFINED_PROFILES) == {
            "qubit_gate_ns_e3",
            "qubit_gate_ns_e4",
            "qubit_gate_us_e3",
            "qubit_gate_us_e4",
            "qubit_maj_ns_e4",
            "qubit_maj_ns_e6",
        }

    def test_paper_quoted_maj_e4_parameters(self):
        """Sec. V quotes the qubit_maj_ns_e4 parameters explicitly."""
        p = QUBIT_MAJ_NS_E4
        assert p.one_qubit_measurement_time_ns == 100.0  # "gate operation time 100ns"
        assert p.two_qubit_joint_measurement_time_ns == 100.0
        assert p.clifford_error_rate == 1e-4  # "Clifford error rate 1e-4"
        assert p.t_gate_error_rate == 5e-2  # "non-Clifford error rate 0.05"
        assert p.instruction_set is InstructionSet.MAJORANA

    def test_gate_based_profiles_have_gate_fields(self):
        for name in ("qubit_gate_ns_e3", "qubit_gate_ns_e4"):
            p = PREDEFINED_PROFILES[name]
            assert p.instruction_set is InstructionSet.GATE_BASED
            assert p.two_qubit_gate_time_ns == 50.0
            assert p.one_qubit_measurement_time_ns == 100.0

    def test_us_profiles_are_slow_with_good_t(self):
        p = PREDEFINED_PROFILES["qubit_gate_us_e3"]
        assert p.two_qubit_gate_time_ns == 100_000.0
        assert p.t_gate_error_rate == 1e-6

    def test_realistic_vs_optimistic_regimes(self):
        assert (
            PREDEFINED_PROFILES["qubit_gate_ns_e4"].clifford_error_rate
            < PREDEFINED_PROFILES["qubit_gate_ns_e3"].clifford_error_rate
        )
        assert (
            PREDEFINED_PROFILES["qubit_maj_ns_e6"].clifford_error_rate
            < PREDEFINED_PROFILES["qubit_maj_ns_e4"].clifford_error_rate
        )


class TestLookupAndCustomization:
    def test_lookup_by_name(self):
        assert qubit_params("qubit_gate_ns_e3") is QUBIT_GATE_NS_E3

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="qubit_gate_ns_e3"):
            qubit_params("qubit_gate_xx")

    def test_customized_override(self):
        fast = qubit_params("qubit_gate_ns_e3", two_qubit_gate_time_ns=20.0)
        assert fast.two_qubit_gate_time_ns == 20.0
        assert fast.one_qubit_gate_time_ns == 50.0  # untouched
        assert "customized" in fast.name
        # the original is untouched (frozen dataclass copy)
        assert QUBIT_GATE_NS_E3.two_qubit_gate_time_ns == 50.0

    def test_customized_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown"):
            QUBIT_GATE_NS_E3.customized(bogus_rate=1.0)


class TestValidation:
    def test_gate_based_requires_gate_parameters(self):
        with pytest.raises(ValueError, match="missing required"):
            PhysicalQubitParams(
                name="incomplete",
                instruction_set=InstructionSet.GATE_BASED,
                one_qubit_measurement_time_ns=100.0,
                one_qubit_measurement_error_rate=1e-3,
                t_gate_error_rate=1e-3,
            )

    def test_majorana_requires_joint_measurement(self):
        with pytest.raises(ValueError, match="missing required"):
            PhysicalQubitParams(
                name="incomplete",
                instruction_set=InstructionSet.MAJORANA,
                one_qubit_measurement_time_ns=100.0,
                one_qubit_measurement_error_rate=1e-4,
                t_gate_error_rate=5e-2,
            )

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError, match="positive"):
            QUBIT_GATE_NS_E3.customized(t_gate_time_ns=0.0)

    def test_rejects_error_rates_outside_unit_interval(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            QUBIT_GATE_NS_E3.customized(two_qubit_gate_error_rate=1.0)


class TestFormulaEnvironment:
    def test_gate_based_environment(self):
        env = QUBIT_GATE_NS_E3.formula_environment(9)
        assert env["codeDistance"] == 9.0
        assert env["twoQubitGateTime"] == 50.0
        assert env["oneQubitMeasurementTime"] == 100.0
        assert env["cliffordErrorRate"] == 1e-3
        assert "twoQubitJointMeasurementTime" not in env

    def test_majorana_environment(self):
        env = QUBIT_MAJ_NS_E4.formula_environment(11)
        assert env["twoQubitJointMeasurementTime"] == 100.0
        assert "twoQubitGateTime" not in env

    def test_clifford_error_rate_is_worst_case(self):
        p = QUBIT_GATE_NS_E3.customized(one_qubit_measurement_error_rate=5e-3)
        assert p.clifford_error_rate == 5e-3

    def test_to_dict_drops_inapplicable_fields(self):
        d = QUBIT_MAJ_NS_E4.to_dict()
        assert d["instruction_set"] == "majorana"
        assert "two_qubit_gate_time_ns" not in d
