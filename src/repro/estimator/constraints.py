"""Estimation constraints (paper Sec. IV-C.4).

Constraints steer the qubit-versus-runtime trade-off:

* ``max_t_factories`` caps the number of T-factory copies running in
  parallel. When the cap binds, the algorithm is slowed down (its logical
  depth stretched) so fewer factories can still deliver all T states in
  time.
* ``logical_depth_factor`` stretches the algorithmic depth outright
  (values > 1 slow the program, giving factories more time and usually
  reducing factory qubits).
* ``max_duration_ns`` / ``max_physical_qubits`` reject estimates whose
  runtime/footprint exceed a budget, so sweeps can detect infeasible
  configurations instead of silently reporting them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Constraints:
    """T-factory and resource constraints for an estimation run."""

    max_t_factories: int | None = None
    logical_depth_factor: float = 1.0
    max_duration_ns: float | None = None
    max_physical_qubits: int | None = None

    def __post_init__(self) -> None:
        if self.max_t_factories is not None and self.max_t_factories < 1:
            raise ValueError(
                f"max_t_factories must be >= 1, got {self.max_t_factories}"
            )
        if self.logical_depth_factor < 1.0:
            raise ValueError(
                "logical_depth_factor must be >= 1 (values < 1 would claim the "
                f"program runs faster than its depth), got {self.logical_depth_factor}"
            )
        if self.max_duration_ns is not None and self.max_duration_ns <= 0:
            raise ValueError(f"max_duration_ns must be positive, got {self.max_duration_ns}")
        if self.max_physical_qubits is not None and self.max_physical_qubits < 1:
            raise ValueError(
                f"max_physical_qubits must be >= 1, got {self.max_physical_qubits}"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "maxTFactories": self.max_t_factories,
            "logicalDepthFactor": self.logical_depth_factor,
            "maxDuration_ns": self.max_duration_ns,
            "maxPhysicalQubits": self.max_physical_qubits,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Constraints":
        known = {
            "maxTFactories",
            "logicalDepthFactor",
            "maxDuration_ns",
            "maxPhysicalQubits",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown constraint fields: {sorted(unknown)}")
        return cls(
            max_t_factories=data.get("maxTFactories"),  # type: ignore[arg-type]
            logical_depth_factor=data.get("logicalDepthFactor", 1.0),  # type: ignore[arg-type]
            max_duration_ns=data.get("maxDuration_ns"),  # type: ignore[arg-type]
            max_physical_qubits=data.get("maxPhysicalQubits"),  # type: ignore[arg-type]
        )
