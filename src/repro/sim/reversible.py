"""Bit-exact simulation of reversible IR circuits on basis states.

State is one Python integer whose bit ``q`` is the value of qubit ``q``
(arbitrary-precision ints make multi-thousand-qubit circuits cheap). The
simulator enforces the cleanliness contracts the circuits rely on:

* allocated qubits start in 0 and must be 0 again at RELEASE;
* AND targets must hold exactly ``a AND b`` when uncomputed (this is what
  makes the measurement-based uncompute free of T states).

Violations raise :class:`SimulationError` — they indicate a genuine bug in
the circuit construction, which is exactly what the tests are hunting.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.circuit import Circuit
from ..ir.ops import Op


class SimulationError(RuntimeError):
    """Raised when a circuit violates reversible-simulation contracts."""


class ReversibleSimulator:
    """Executes an IR circuit on a computational basis state."""

    def __init__(self) -> None:
        self._state = 0
        self._measurements: list[tuple[int, int]] = []  # (qubit, outcome)

    @property
    def measurements(self) -> list[tuple[int, int]]:
        """Measurement record: (qubit, outcome) in program order."""
        return list(self._measurements)

    def bit(self, qubit: int) -> int:
        """Current value of a qubit."""
        return (self._state >> qubit) & 1

    def read_register(self, qubits: Sequence[int]) -> int:
        """Read a little-endian register (qubits[0] is the 1s bit)."""
        value = 0
        for position, q in enumerate(qubits):
            value |= ((self._state >> q) & 1) << position
        return value

    def write_register(self, qubits: Sequence[int], value: int) -> None:
        """Force a little-endian register to a value (test setup helper)."""
        if value < 0 or value >> len(qubits):
            raise SimulationError(
                f"value {value} does not fit in a {len(qubits)}-qubit register"
            )
        for position, q in enumerate(qubits):
            desired = (value >> position) & 1
            if ((self._state >> q) & 1) != desired:
                self._state ^= 1 << q

    def run(self, circuit: Circuit, initial: Mapping[int, int] | None = None) -> None:
        """Execute the circuit; ``initial`` pre-sets qubit values at ALLOC."""
        initial = dict(initial or {})
        state = self._state
        for op, q0, q1, q2, param in circuit.instructions:
            if op == Op.ALLOC:
                if (state >> q0) & 1:
                    raise SimulationError(f"allocator produced dirty qubit {q0}")
                # pop: an id re-used after release must come back clean, not
                # re-primed with the caller's initial value.
                if initial.pop(q0, 0):
                    state |= 1 << q0
            elif op == Op.RELEASE:
                if (state >> q0) & 1:
                    raise SimulationError(
                        f"qubit {q0} released in |1>; circuits must clean up"
                    )
            elif op == Op.X:
                state ^= 1 << q0
            elif op == Op.CX:
                if (state >> q0) & 1:
                    state ^= 1 << q1
            elif op == Op.SWAP:
                b0 = (state >> q0) & 1
                b1 = (state >> q1) & 1
                if b0 != b1:
                    state ^= (1 << q0) | (1 << q1)
            elif op == Op.CCX:
                if (state >> q0) & 1 and (state >> q1) & 1:
                    state ^= 1 << q2
            elif op == Op.AND:
                if (state >> q2) & 1:
                    raise SimulationError(f"AND target {q2} not clean")
                if (state >> q0) & 1 and (state >> q1) & 1:
                    state ^= 1 << q2
            elif op == Op.AND_UNCOMPUTE:
                expected = (state >> q0) & 1 and (state >> q1) & 1
                actual = (state >> q2) & 1
                if bool(expected) != bool(actual):
                    raise SimulationError(
                        f"AND_UNCOMPUTE on qubit {q2}: target holds {actual} "
                        f"but controls give {int(bool(expected))}; the circuit "
                        "modified an AND ancilla or its controls inconsistently"
                    )
                if actual:
                    state ^= 1 << q2
            elif op == Op.MEASURE:
                self._measurements.append((q0, (state >> q0) & 1))
            elif op == Op.RESET:
                self._measurements.append((q0, (state >> q0) & 1))
                state &= ~(1 << q0)
            elif op in (Op.Z, Op.S, Op.S_ADJ, Op.CZ, Op.CCZ, Op.T, Op.T_ADJ):
                # Diagonal gates: basis states pick up only a global-per-branch
                # phase, which cannot affect the classical value we verify.
                pass
            elif op == Op.CCIX:
                # iX on basis states flips the bit (the i is a phase).
                if (state >> q0) & 1 and (state >> q1) & 1:
                    state ^= 1 << q2
            elif op == Op.ACCOUNT:
                raise SimulationError(
                    "cannot simulate a circuit containing injected estimates "
                    "(ACCOUNT); estimates have no gate-level semantics"
                )
            else:
                name = Op(op).name
                raise SimulationError(
                    f"gate {name} creates superposition; the reversible "
                    "simulator only verifies classical arithmetic circuits"
                )
        self._state = state


def run_reversible(
    circuit: Circuit, initial: Mapping[int, int] | None = None
) -> ReversibleSimulator:
    """Run a circuit from |0...0> (plus ``initial`` overrides); return the sim."""
    sim = ReversibleSimulator()
    sim.run(circuit, initial)
    return sim
