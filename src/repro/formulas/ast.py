"""AST node types for the formula language.

The language is deliberately tiny: numbers, named variables, unary +/-,
binary ``+ - * / ^``, and calls to a whitelisted set of math functions.
Nodes are immutable dataclasses; evaluation lives on the nodes so a parsed
tree can be evaluated repeatedly against different variable bindings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping


class FormulaError(ValueError):
    """Base class for formula parse/eval errors."""


#: Functions callable from formula strings. All accept and return numbers.
FUNCTIONS: Mapping[str, Callable[..., float]] = {
    "log2": math.log2,
    "log10": math.log10,
    "ln": math.log,
    "sqrt": math.sqrt,
    "ceil": math.ceil,
    "floor": math.floor,
    "abs": abs,
    "max": max,
    "min": min,
    "pow": math.pow,
    "exp": math.exp,
}


class FormulaNode:
    """Base class for formula AST nodes."""

    def evaluate(self, env: Mapping[str, float]) -> float:
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """Free variables referenced anywhere below this node."""
        raise NotImplementedError


@dataclass(frozen=True)
class Number(FormulaNode):
    value: float

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class Variable(FormulaNode):
    name: str

    def evaluate(self, env: Mapping[str, float]) -> float:
        try:
            return env[self.name]
        except KeyError:
            raise FormulaError(
                f"formula references unbound variable {self.name!r}; "
                f"bound: {sorted(env)}"
            ) from None

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class UnaryOp(FormulaNode):
    op: str  # '+' or '-'
    operand: FormulaNode

    def evaluate(self, env: Mapping[str, float]) -> float:
        val = self.operand.evaluate(env)
        return -val if self.op == "-" else +val

    def variables(self) -> frozenset[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class BinaryOp(FormulaNode):
    op: str  # one of + - * / ^
    left: FormulaNode
    right: FormulaNode

    def evaluate(self, env: Mapping[str, float]) -> float:
        lhs = self.left.evaluate(env)
        rhs = self.right.evaluate(env)
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        if self.op == "/":
            if rhs == 0:
                raise FormulaError("division by zero in formula")
            return lhs / rhs
        if self.op == "^":
            return lhs**rhs
        raise FormulaError(f"unknown operator {self.op!r}")

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Call(FormulaNode):
    func: str
    args: tuple[FormulaNode, ...]

    def evaluate(self, env: Mapping[str, float]) -> float:
        try:
            fn = FUNCTIONS[self.func]
        except KeyError:
            raise FormulaError(
                f"unknown function {self.func!r}; available: {sorted(FUNCTIONS)}"
            ) from None
        return fn(*(a.evaluate(env) for a in self.args))

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.variables()
        return out
