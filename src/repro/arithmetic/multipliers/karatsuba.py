"""Karatsuba multiplication (paper Sec. V, citing arXiv:1904.07356).

``x * k`` via three half-size products, using the identity (``h = ceil(n/2)``)::

    x*k = t1 + 2^(2h) t2 + 2^h (t3 - t1 - t2)
    t1 = x_lo*k_lo,  t2 = x_hi*k_hi,  t3 = (x_lo+x_hi)*(k_lo+k_hi)

The recursion computes the three sub-products into fresh workspace
registers and combines them with additions/subtractions on the
accumulator. Workspace is *not* uncomputed inside the recursion (the
pebbling that keeps the AND count at Theta(n^lg3) instead of the
Theta(n^2.58) a recursive clean-up would cost); instead the whole dirty
computation is cleaned up Bennett-style at the top: compute into an
internal accumulator, CNOT-copy the product out, replay the adjoint. In
this cost model the adjoint turns every AND into a measurement and vice
versa, so cleanup roughly doubles the AND count while workspace stays
Theta(n^lg3) — exactly the "more qubits than the other two algorithms"
behaviour the paper reports for Karatsuba.

The schoolbook cutoff (default 512 bits) reflects the large constant
overhead real reversible Karatsuba carries; it puts the runtime crossover
with schoolbook in the multi-thousand-bit range the paper observes.
"""

from __future__ import annotations

from typing import Sequence

from ...ir import Builder
from ..adders import add_into, add_into_counts, subtract_into
from ..registers import copy_register
from ..tally import GateTally
from .base import Multiplier
from .schoolbook import emit_schoolbook, schoolbook_peak_workspace, schoolbook_tally

DEFAULT_CUTOFF = 512


class KaratsubaMultiplier(Multiplier):
    """Theta(n^lg3) ANDs, Theta(n^lg3) workspace.

    Parameters
    ----------
    cutoff:
        Input size at and below which the recursion falls back to
        schoolbook multiplication.
    clean:
        When True (default) the dirty workspace is uncomputed
        Bennett-style; when False the workspace is left allocated (the
        cheapest possible standalone multiplication, at the price of a
        subroutine that cannot be composed).
    """

    name = "karatsuba"

    def __init__(
        self,
        bits: int,
        constant: int | None = None,
        *,
        cutoff: int = DEFAULT_CUTOFF,
        clean: bool = True,
    ) -> None:
        super().__init__(bits, constant)
        if cutoff < 8:
            raise ValueError(
                f"cutoff must be >= 8 (the recursion's window bounds need it), "
                f"got {cutoff}"
            )
        self.cutoff = cutoff
        self.clean = clean

    def emit(
        self, builder: Builder, x: Sequence[int], acc: Sequence[int]
    ) -> None:
        if not self.clean:
            _emit_dirty(builder, x, acc, self.constant, self.cutoff)
            return
        # Bennett cleanup: compute dirty into an internal accumulator,
        # copy the product out, run the adjoint.
        builder.start_recording()
        internal = builder.allocate_register(len(acc))
        _emit_dirty(builder, x, internal, self.constant, self.cutoff)
        tape = builder.stop_recording()
        copy_register(builder, internal, acc)
        builder.emit_adjoint(tape)

    def tally(self) -> GateTally:
        n = self.bits
        dirty, _, _ = _dirty_stats(n, 2 * n, self.constant, self.cutoff)
        readout = GateTally(measurements=2 * n)
        if not self.clean:
            return dirty + readout
        adjoint = GateTally(ccix=dirty.measurements, measurements=dirty.ccix)
        return dirty + adjoint + readout

    def num_qubits(self) -> int:
        n = self.bits
        _, persistent, peak = _dirty_stats(n, 2 * n, self.constant, self.cutoff)
        if not self.clean:
            return 3 * n + max(peak, persistent)
        # Clean mode adds the internal 2n-qubit accumulator on top of the
        # caller's registers; the dirty peak happens inside the recording.
        return 3 * n + 2 * n + max(peak, persistent)


def _split(n: int) -> int:
    """Split point: high half starts at ``h = ceil(n/2)``."""
    return (n + 1) // 2


def _emit_dirty(
    builder: Builder,
    x: Sequence[int],
    acc: Sequence[int],
    k: int,
    cutoff: int,
) -> None:
    """``acc += x * k`` leaving workspace registers dirty."""
    n = len(x)
    if n <= cutoff:
        emit_schoolbook(builder, x, acc, k)
        return
    h = _split(n)
    x_lo, x_hi = x[:h], x[h:]
    k_lo = k & ((1 << h) - 1)
    k_hi = k >> h

    # sx = x_lo + x_hi (h+1 bits; stays allocated).
    sx = builder.allocate_register(h + 1)
    copy_register(builder, x_lo, sx)
    add_into(builder, x_hi, sx)
    sk = k_lo + k_hi

    # Three sub-products into fresh workspace.
    t3 = builder.allocate_register(2 * (h + 1))
    _emit_dirty(builder, sx, t3, sk, cutoff)
    t1 = builder.allocate_register(2 * h)
    _emit_dirty(builder, x_lo, t1, k_lo, cutoff)
    t2 = builder.allocate_register(2 * (n - h))
    _emit_dirty(builder, x_hi, t2, k_hi, cutoff)

    # Combine: acc += t1 + t2<<2h + (t3 - t1 - t2)<<h  (mod 2^len(acc)).
    add_into(builder, t1, acc)
    add_into(builder, t2, acc[2 * h :])
    add_into(builder, t3, acc[h:])
    subtract_into(builder, t1, acc[h:])
    subtract_into(builder, t2, acc[h:])


def _dirty_stats(
    n: int, acc_len: int, k: int, cutoff: int
) -> tuple[GateTally, int, int]:
    """Mirror of :func:`_emit_dirty`.

    Returns ``(tally, persistent_workspace, peak_workspace)`` where both
    workspace figures are counted beyond the caller's x/acc registers and
    ``peak`` includes transient adder carries.
    """
    if n <= cutoff:
        tally = schoolbook_tally(n, acc_len, k)
        return tally, 0, schoolbook_peak_workspace(n, acc_len, k)
    h = _split(n)
    k_lo = k & ((1 << h) - 1)
    k_hi = k >> h
    sk = k_lo + k_hi

    tally = GateTally()
    live = 0
    peak = 0

    def phase(extra_live: int, transient: int) -> None:
        nonlocal live, peak
        live += extra_live
        peak = max(peak, live + transient)

    # sx alloc + the add x_hi into sx (carries: len(sx)-1 = h).
    phase(h + 1, 0)
    tally = tally + add_into_counts(n - h, h + 1)
    phase(0, add_into_counts(n - h, h + 1).ccix)  # carries == ands here

    # t3 then recursion.
    sub_tally, sub_persistent, sub_peak = _dirty_stats(h + 1, 2 * (h + 1), sk, cutoff)
    phase(2 * (h + 1), sub_peak)
    tally = tally + sub_tally
    live += sub_persistent
    peak = max(peak, live)

    sub_tally, sub_persistent, sub_peak = _dirty_stats(h, 2 * h, k_lo, cutoff)
    phase(2 * h, sub_peak)
    tally = tally + sub_tally
    live += sub_persistent
    peak = max(peak, live)

    sub_tally, sub_persistent, sub_peak = _dirty_stats(n - h, 2 * (n - h), k_hi, cutoff)
    phase(2 * (n - h), sub_peak)
    tally = tally + sub_tally
    live += sub_persistent
    peak = max(peak, live)

    # Combination adds/subs; transient carries = window length - 1.
    for a_len, window in (
        (2 * h, acc_len),
        (2 * (n - h), acc_len - 2 * h),
        (2 * (h + 1), acc_len - h),
        (2 * h, acc_len - h),
        (2 * (n - h), acc_len - h),
    ):
        step = add_into_counts(a_len, window)
        tally = tally + step
        peak = max(peak, live + step.ccix)

    return tally, live, peak
