"""Lowering gate-level IR to planar-ISA logical operations."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..counts import LogicalCounts
from ..ir.circuit import Circuit
from ..ir.ops import Op
from ..ir.tracer import _classify_angle
from ..layout import AlgorithmicLogicalResources, layout_resources
from ..synthesis import RotationSynthesis


class OperationKind(Enum):
    """ISA-level operation categories (paper Sec. III-B unit costs)."""

    #: Single-qubit (or joint Pauli) measurement: 1 cycle, 0 T states.
    MEASUREMENT = "measurement"
    #: T gate via magic-state injection: 1 cycle, 1 T state.
    T_STATE_INJECTION = "t"
    #: CCZ / CCiX via a 4-T-state gadget: 3 cycles, 4 T states.
    CCZ_GADGET = "ccz_gadget"
    #: Synthesized arbitrary rotation: t_rot cycles, t_rot T states.
    ROTATION_SYNTHESIS = "rotation"


@dataclass(frozen=True)
class LogicalOperation:
    """One step of the lowered program.

    ``layer`` tags rotation operations with their dependency layer (the
    quantity whose count is the tracer's ``rotation_depth``); rotations
    sharing a tag run in the same synthesis layer and cost its cycles
    once.
    """

    kind: OperationKind
    qubits: tuple[int, ...]
    cycles: int
    t_states: int
    layer: int | None = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(
                f"an ISA operation takes at least 1 cycle, got {self.cycles}"
            )
        if self.t_states < 0:
            raise ValueError(f"t_states must be >= 0, got {self.t_states}")
        if (self.layer is not None) != (self.kind is OperationKind.ROTATION_SYNTHESIS):
            raise ValueError("layer tags exactly the rotation operations")


@dataclass(frozen=True)
class ISAProgram:
    """A lowered program: the operation sequence plus its summary costs."""

    operations: tuple[LogicalOperation, ...]
    logical_qubits: int
    t_states_per_rotation: int

    def __iter__(self) -> Iterator[LogicalOperation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def total_t_states(self) -> int:
        return sum(op.t_states for op in self.operations)

    @property
    def depth(self) -> int:
        return schedule_depth(self)


def lower(
    circuit: Circuit,
    synthesis_budget: float,
    synthesis: RotationSynthesis | None = None,
) -> ISAProgram:
    """Lower a gate-level circuit to its planar-ISA operation sequence.

    Clifford gates vanish (absorbed into the Pauli frame and measurement
    bases of lattice surgery) but still propagate rotation-layer
    dependencies, exactly as in the tracer; every non-Clifford
    instruction becomes a :class:`LogicalOperation`.
    """
    counts = circuit.logical_counts()
    synthesis = synthesis or RotationSynthesis()
    t_rot = synthesis.t_states_per_rotation(counts.rotation_count, synthesis_budget)

    operations: list[LogicalOperation] = []
    append = operations.append
    layer: dict[int, int] = {}
    injected_layer_base = 0  # grows as ACCOUNT blocks contribute layers

    def sync(*qubits: int) -> None:
        m = max(layer[q] for q in qubits)
        for q in qubits:
            layer[q] = m

    for op, q0, q1, q2, param in circuit.instructions:
        if op == Op.ALLOC:
            layer.setdefault(q0, 0)
        elif op == Op.T or op == Op.T_ADJ:
            append(LogicalOperation(OperationKind.T_STATE_INJECTION, (q0,), 1, 1))
        elif op in (Op.RX, Op.RY, Op.RZ):
            kind = _classify_angle(param)
            if kind == "t":
                append(
                    LogicalOperation(OperationKind.T_STATE_INJECTION, (q0,), 1, 1)
                )
            elif kind == "rotation":
                layer[q0] += 1
                append(
                    LogicalOperation(
                        OperationKind.ROTATION_SYNTHESIS,
                        (q0,),
                        t_rot,
                        t_rot,
                        layer=layer[q0],
                    )
                )
        elif op in (Op.CCZ, Op.CCX, Op.CCIX, Op.AND):
            sync(q0, q1, q2)
            append(LogicalOperation(OperationKind.CCZ_GADGET, (q0, q1, q2), 3, 4))
        elif op == Op.AND_UNCOMPUTE:
            sync(q0, q1, q2)
            append(LogicalOperation(OperationKind.MEASUREMENT, (q2,), 1, 0))
        elif op in (Op.MEASURE, Op.RESET):
            append(LogicalOperation(OperationKind.MEASUREMENT, (q0,), 1, 0))
        elif op in (Op.CX, Op.CZ, Op.SWAP):
            sync(q0, q1)
        elif op == Op.ACCOUNT:
            extra = circuit.estimates[int(param)]
            # Injected layers live in their own namespace below 0 so they
            # never collide with traced layers.
            operations.extend(
                _lower_estimates(extra, t_rot, injected_layer_base)
            )
            injected_layer_base -= extra.rotation_depth
        # RELEASE and single-qubit Cliffords: nothing to do.

    return ISAProgram(
        operations=tuple(operations),
        logical_qubits=counts.num_qubits,
        t_states_per_rotation=t_rot,
    )


def _lower_estimates(
    counts: LogicalCounts, t_rot: int, layer_base: int
) -> Iterator[LogicalOperation]:
    """Expand injected estimates into anonymous ISA operations."""
    no_qubits: tuple[int, ...] = ()
    for _ in range(counts.t_count):
        yield LogicalOperation(OperationKind.T_STATE_INJECTION, no_qubits, 1, 1)
    for _ in range(counts.ccz_count + counts.ccix_count):
        yield LogicalOperation(OperationKind.CCZ_GADGET, no_qubits, 3, 4)
    if counts.rotation_depth:
        # Spread the rotations across their declared number of layers.
        per_layer, remainder = divmod(counts.rotation_count, counts.rotation_depth)
        for index in range(counts.rotation_depth):
            width = per_layer + (1 if index < remainder else 0)
            tag = layer_base - 1 - index
            for _ in range(width):
                yield LogicalOperation(
                    OperationKind.ROTATION_SYNTHESIS, no_qubits, t_rot, t_rot, layer=tag
                )
    for _ in range(counts.measurement_count):
        yield LogicalOperation(OperationKind.MEASUREMENT, no_qubits, 1, 0)


def schedule_depth(program: ISAProgram) -> int:
    """Logical depth of the lowered sequence (paper Sec. III-B.3).

    Non-rotation operations serialize (each contributes its cycles);
    rotations contribute their synthesis cycles once per distinct layer
    tag. This reproduces ``M + R + T + 3(CCZ+CCiX) + t_rot * D_R`` with
    one subtlety: the formula's ``R`` term counts every rotation's own
    injection cycle and the ``t_rot * D_R`` term the per-layer synthesis
    cost — here the rotation operation carries ``t_rot`` cycles and the
    extra per-rotation cycle is added explicitly.
    """
    depth = 0
    layers: set[int] = set()
    for op in program.operations:
        if op.kind is OperationKind.ROTATION_SYNTHESIS:
            depth += 1  # the formula's per-rotation ("R") cycle
            layers.add(op.layer)  # type: ignore[arg-type]
        else:
            depth += op.cycles
    if layers:
        # All rotations in a layer share one synthesis episode.
        some_op = next(
            op for op in program.operations
            if op.kind is OperationKind.ROTATION_SYNTHESIS
        )
        depth += some_op.cycles * len(layers)
    return max(depth, 1)


def lowered_matches_layout(
    circuit: Circuit,
    synthesis_budget: float,
) -> tuple[ISAProgram, AlgorithmicLogicalResources]:
    """Lower a circuit and compute the closed-form layout side by side.

    Convenience for tests and notebooks demonstrating that the Fig. 1
    pipeline's two views of the program agree exactly on depth and
    T-state demand.
    """
    program = lower(circuit, synthesis_budget)
    layout = layout_resources(circuit.logical_counts(), synthesis_budget)
    return program, layout
