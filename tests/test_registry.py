"""Tests for the unified registry and scenario-file loading."""

from __future__ import annotations

import json

import pytest

from repro import qec_scheme, qubit_params
from repro.distillation.units import T15_RM_PREP
from repro.qec import (
    FLOQUET_CODE,
    QECScheme,
    SURFACE_CODE_GATE_BASED,
    SURFACE_CODE_MAJORANA,
)
from repro.qubits import (
    InstructionSet,
    PREDEFINED_PROFILES,
    QUBIT_GATE_NS_E3,
    QUBIT_MAJ_NS_E4,
)
from repro.registry import Registry, RegistryError, default_registry

CUSTOM_QUBIT = {
    "name": "test_registry_qubit",
    "instruction_set": "gate_based",
    "one_qubit_measurement_time_ns": 80.0,
    "one_qubit_measurement_error_rate": 5e-4,
    "one_qubit_gate_time_ns": 40.0,
    "one_qubit_gate_error_rate": 5e-4,
    "two_qubit_gate_time_ns": 40.0,
    "two_qubit_gate_error_rate": 5e-4,
    "t_gate_time_ns": 40.0,
    "t_gate_error_rate": 5e-4,
}

CUSTOM_SCHEME = {
    "name": "test_registry_code",
    "crossingPrefactor": 0.05,
    "errorCorrectionThreshold": 0.008,
    "logicalCycleTime": "(2 * twoQubitGateTime + 2 * oneQubitMeasurementTime) * codeDistance",
    "physicalQubitsPerLogicalQubit": "1.5 * codeDistance^2 + 2 * codeDistance",
    "instructionSet": "gate_based",
}


class TestPredefinedLookups:
    def test_qubits_seeded_and_identical(self):
        registry = Registry()
        assert registry.qubit_names() == sorted(PREDEFINED_PROFILES)
        assert registry.qubit("qubit_gate_ns_e3") is QUBIT_GATE_NS_E3

    def test_scheme_variants_by_instruction_set(self):
        registry = Registry()
        assert (
            registry.scheme("surface_code", QUBIT_GATE_NS_E3)
            is SURFACE_CODE_GATE_BASED
        )
        assert (
            registry.scheme("surface_code", QUBIT_MAJ_NS_E4)
            is SURFACE_CODE_MAJORANA
        )
        assert registry.scheme("floquet_code", QUBIT_MAJ_NS_E4) is FLOQUET_CODE
        # Single-variant schemes resolve without a qubit.
        assert registry.scheme("floquet_code") is FLOQUET_CODE

    def test_overrides_customize(self):
        registry = Registry()
        tweaked = registry.qubit("qubit_maj_ns_e4", t_gate_error_rate=0.02)
        assert tweaked.t_gate_error_rate == 0.02
        scheme = registry.scheme(
            "floquet_code", QUBIT_MAJ_NS_E4, max_code_distance=31
        )
        assert scheme.max_code_distance == 31

    def test_default_designer_registered(self):
        from repro.estimator.stages import DEFAULT_DESIGNER

        assert Registry().designer() is DEFAULT_DESIGNER

    def test_units_seeded(self):
        assert Registry().unit("15-to-1 RM prep") is T15_RM_PREP

    def test_empty_registry(self):
        registry = Registry(include_predefined=False)
        assert registry.qubit_names() == []
        with pytest.raises(KeyError):
            registry.qubit("qubit_gate_ns_e3")


class TestErrorMessages:
    def test_unknown_qubit_lists_available(self):
        with pytest.raises(KeyError, match="qubit_gate_ns_e3"):
            Registry().qubit("nope")

    def test_unknown_scheme_lists_names_with_instruction_sets(self):
        with pytest.raises(KeyError) as excinfo:
            Registry().scheme("nope", QUBIT_GATE_NS_E3)
        message = str(excinfo.value)
        assert "surface_code (gate_based, majorana)" in message
        assert "floquet_code (majorana)" in message

    def test_incompatible_scheme_lists_instruction_sets(self):
        # The satellite fix: the error names every scheme *and* the
        # instruction sets it applies to, not just the failing name.
        with pytest.raises(KeyError) as excinfo:
            Registry().scheme("floquet_code", QUBIT_GATE_NS_E3)
        message = str(excinfo.value)
        assert "gate_based qubits" in message
        assert "floquet_code (majorana)" in message
        assert "surface_code (gate_based, majorana)" in message

    def test_module_level_qec_scheme_uses_same_message(self):
        with pytest.raises(KeyError, match=r"floquet_code \(majorana\)"):
            qec_scheme("floquet_code", QUBIT_GATE_NS_E3)

    def test_registry_error_is_keyerror(self):
        assert issubclass(RegistryError, KeyError)


class TestRegistration:
    def test_register_and_lookup(self):
        registry = Registry()
        params = QUBIT_GATE_NS_E3.customized(name="fresh")
        registry.register_qubit(params)
        assert registry.qubit("fresh") is params

    def test_collision_requires_replace(self):
        registry = Registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register_qubit(QUBIT_GATE_NS_E3.customized(name="qubit_gate_ns_e3"))
        registry.register_qubit(
            QUBIT_GATE_NS_E3.customized(name="qubit_gate_ns_e3"), replace=True
        )

    def test_any_instruction_set_scheme_matches_all(self):
        registry = Registry()
        scheme = QECScheme.from_dict(dict(CUSTOM_SCHEME, instructionSet=None))
        registry.register_scheme(scheme)
        assert registry.scheme(scheme.name, QUBIT_GATE_NS_E3) is scheme
        assert registry.scheme(scheme.name, QUBIT_MAJ_NS_E4) is scheme


class TestScenarioLoading:
    def scenario(self) -> dict:
        return {
            "schema": "repro-scenario-v1",
            "qubitParams": [CUSTOM_QUBIT],
            "qecSchemes": [CUSTOM_SCHEME],
            "distillationUnits": [
                dict(T15_RM_PREP.to_dict(), name="test_registry_unit")
            ],
            "factoryDesigners": [
                {
                    "name": "test_registry_designer",
                    "units": ["test_registry_unit"],
                    "maxRounds": 2,
                    "maxCodeDistance": 21,
                }
            ],
        }

    def test_load_from_dict(self):
        registry = Registry()
        loaded = registry.load_scenario(self.scenario())
        assert loaded == {
            "qubitParams": ["test_registry_qubit"],
            "qecSchemes": ["test_registry_code"],
            "distillationUnits": ["test_registry_unit"],
            "factoryDesigners": ["test_registry_designer"],
        }
        qubit = registry.qubit("test_registry_qubit")
        assert qubit.instruction_set is InstructionSet.GATE_BASED
        assert registry.scheme("test_registry_code", qubit).crossing_prefactor == 0.05
        designer = registry.designer("test_registry_designer")
        assert designer.max_rounds == 2
        assert [u.name for u in designer.units] == ["test_registry_unit"]

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(self.scenario()))
        registry = Registry()
        registry.load_scenario(path)
        assert "test_registry_qubit" in registry.qubit_names()

    def test_loaded_entries_estimate(self):
        from repro import LogicalCounts, estimate

        registry = Registry()
        registry.load_scenario(self.scenario())
        counts = LogicalCounts(num_qubits=20, t_count=10_000)
        result = estimate(
            counts,
            registry.qubit("test_registry_qubit"),
            scheme=registry.scheme("test_registry_code"),
        )
        assert result.physical_qubits > 0

    def test_bad_section_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario sections"):
            Registry().load_scenario({"bogus": []})

    def test_bad_schema_tag_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            Registry().load_scenario({"schema": "other-v9"})

    def test_invalid_entry_rejected(self):
        with pytest.raises(ValueError):
            Registry().load_scenario({"qubitParams": [{"name": "x"}]})

    def test_designer_with_unknown_unit_is_valueerror(self):
        # Regression: RegistryError (a KeyError) escaped the documented
        # ValueError contract and crashed the CLI with a traceback.
        with pytest.raises(ValueError, match="unknown distillation unit"):
            Registry().load_scenario(
                {"factoryDesigners": [{"name": "d", "units": ["nope"]}]}
            )

    def test_unit_with_incomplete_nested_spec_is_valueerror(self):
        unit = dict(T15_RM_PREP.to_dict(), name="incomplete")
        unit["physicalSpec"] = {"numQubits": 31}  # missing "duration"
        with pytest.raises(ValueError, match="missing"):
            Registry().load_scenario({"distillationUnits": [unit]})

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            Registry().load_scenario(tmp_path / "nope.json")

    def test_describe_includes_loaded_entries(self):
        registry = Registry()
        registry.load_scenario(self.scenario())
        description = registry.describe()
        assert "test_registry_qubit" in description["qubitParams"]
        assert description["qecSchemes"]["test_registry_code"] == ["gate_based"]
        assert "test_registry_designer" in description["factoryDesigners"]


class TestDefaultRegistryDelegation:
    def test_qubit_params_sees_registered_entries(self):
        name = "test_default_delegation_qubit"
        default_registry().register_qubit(
            QUBIT_GATE_NS_E3.customized(name=name), replace=True
        )
        assert qubit_params(name).name == name

    def test_qubit_params_identity_for_predefined(self):
        assert qubit_params("qubit_gate_ns_e3") is QUBIT_GATE_NS_E3
