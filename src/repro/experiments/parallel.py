"""Parallel execution of estimation sweeps.

Figure sweeps are embarrassingly parallel: every (algorithm, bits,
profile) point is independent. Following the HPC guidance of measuring
first — a single 16384-bit Karatsuba point costs ~1 s of pure-Python count
generation — the win comes from distributing *points* across processes,
not micro-optimizing inside one.

This module is now a thin veneer over the shared batch engine
(:mod:`repro.estimator.batch`), which owns the pool-with-serial-fallback
behavior this module introduced: contiguous point chunks fan out over a
``ProcessPoolExecutor``, each worker keeps a process-global cache (factory
catalogs, traced counts, distance lookups), and pool start-up failures
(``max_workers=1`` or sandboxes without process spawning) fall back to
serial execution with identical results — determinism is asserted by the
tests.
"""

from __future__ import annotations

from typing import Sequence

from .runner import PAPER_ERROR_BUDGET, EstimateRow, run_estimate_rows

#: A sweep point: (algorithm, bits, profile).
SweepPoint = tuple[str, int, str]


def run_rows_parallel(
    points: Sequence[SweepPoint],
    *,
    budget: float = PAPER_ERROR_BUDGET,
    max_workers: int | None = None,
) -> list[EstimateRow]:
    """Estimate all sweep points, preserving input order.

    Parameters
    ----------
    points:
        ``(algorithm, bits, profile)`` triples.
    budget:
        Total error budget shared by all points.
    max_workers:
        Process count; ``1`` (or an unavailable pool) runs serially.
        ``None`` uses the executor's default worker count.
    """
    return run_estimate_rows(points, budget=budget, max_workers=max_workers)


def fig3_points(
    bit_sizes: Sequence[int],
    algorithms: Sequence[str] = ("schoolbook", "karatsuba", "windowed"),
    profile: str = "qubit_maj_ns_e4",
) -> list[SweepPoint]:
    """The Fig. 3 grid as sweep points (algorithm-major order)."""
    return [(alg, bits, profile) for alg in algorithms for bits in bit_sizes]


def fig4_points(
    profiles: Sequence[str],
    algorithms: Sequence[str] = ("schoolbook", "karatsuba", "windowed"),
    bits: int = 2048,
) -> list[SweepPoint]:
    """The Fig. 4 grid as sweep points (profile-major order)."""
    return [(alg, bits, profile) for profile in profiles for alg in algorithms]
