"""Common multiplier interface and helpers."""

from __future__ import annotations

import abc
import random
from typing import Sequence

from ...counts import LogicalCounts
from ...ir import Builder, Circuit, CircuitBuilder
from ...ir.counting import CountingBuilder
from ..tally import GateTally

#: Count-resolution backends of :meth:`Multiplier.backend_counts` (and the
#: experiment runners / CLI that expose the choice).
COUNT_BACKENDS = ("formula", "materialize", "counting")


def default_constant(bits: int) -> int:
    """Deterministic n-bit odd constant with the top bit set.

    Experiments need reproducible counts; an arbitrary-looking but fixed
    constant avoids the degenerate structure of values like ``2^n - 1``
    while keeping ``bit_length == bits`` so register sizing is exercised
    fully.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if bits == 1:
        return 1
    rng = random.Random(0xC0FFEE ^ bits)
    value = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
    return value


class Multiplier(abc.ABC):
    """A circuit family computing ``acc += x * constant``.

    Subclasses provide the emitter (:meth:`emit`) plus mirrored
    closed-form tallies (:meth:`tally`) and width (:meth:`num_qubits`);
    tests assert the mirrors agree with traced circuits.
    """

    #: Short identifier used by experiments ("schoolbook", ...).
    name: str = ""

    def __init__(self, bits: int, constant: int | None = None) -> None:
        if bits < 1:
            raise ValueError(f"bit size must be >= 1, got {bits}")
        self.bits = bits
        self.constant = default_constant(bits) if constant is None else constant
        if not 0 <= self.constant < (1 << bits):
            raise ValueError(
                f"constant {self.constant} does not fit in {bits} bits"
            )
        self._circuit_cache: Circuit | None = None

    # -- abstract surface ---------------------------------------------------

    @abc.abstractmethod
    def emit(
        self, builder: Builder, x: Sequence[int], acc: Sequence[int]
    ) -> None:
        """Emit ``acc += x * self.constant`` onto caller-provided registers.

        ``x`` must have ``self.bits`` qubits and ``acc`` at least
        ``2 * self.bits``; ancillas are the emitter's business.
        """

    @abc.abstractmethod
    def tally(self) -> GateTally:
        """Closed-form gate tally of :meth:`circuit` (incl. final measures)."""

    @abc.abstractmethod
    def num_qubits(self) -> int:
        """Closed-form qubit high-water mark of :meth:`circuit`."""

    # -- shared machinery -----------------------------------------------------

    def circuit(self) -> Circuit:
        """The complete benchmark program: prepare, multiply, measure.

        The input register is put in uniform superposition (Hadamards are
        free Cliffords) and the product register is measured, mirroring
        how the multiplication subroutine sits inside a larger algorithm.
        Cached after first build.
        """
        if self._circuit_cache is None:
            builder = CircuitBuilder(f"{self.name}-{self.bits}b")
            x = builder.allocate_register(self.bits)
            acc = builder.allocate_register(2 * self.bits)
            for q in x:
                builder.h(q)
            self.emit(builder, x, acc)
            for q in acc:
                builder.measure(q)
            self._circuit_cache = builder.finish()
        return self._circuit_cache

    def logical_counts(self) -> LogicalCounts:
        """Closed-form pre-layout counts (validated against traces in tests)."""
        return self.tally().to_logical_counts(self.num_qubits())

    def traced_counts(self) -> LogicalCounts:
        """Counts obtained by actually tracing the emitted circuit."""
        return self.circuit().logical_counts()

    def counted_counts(self) -> LogicalCounts:
        """Counts via the streaming backend: emit, fold, never store.

        Identical to :meth:`traced_counts` (asserted by the tests) without
        materializing the instruction stream — O(live qubits) memory.
        """
        builder = CountingBuilder(f"{self.name}-{self.bits}b")
        x = builder.allocate_register(self.bits)
        acc = builder.allocate_register(2 * self.bits)
        for q in x:
            builder.h(q)
        self.emit(builder, x, acc)
        for q in acc:
            builder.measure(q)
        return builder.logical_counts()

    def backend_counts(self, backend: str = "formula") -> LogicalCounts:
        """Pre-layout counts through the chosen backend.

        ``formula`` evaluates the closed-form tally, ``materialize``
        builds and traces the full instruction stream, ``counting``
        streams it through :class:`~repro.ir.counting.CountingBuilder`.
        All three agree bit-for-bit; they differ in time and memory.
        """
        if backend == "formula":
            return self.logical_counts()
        if backend == "materialize":
            return self.traced_counts()
        if backend == "counting":
            return self.counted_counts()
        raise ValueError(
            f"unknown count backend {backend!r}; available: {COUNT_BACKENDS}"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bits={self.bits})"


#: The multiplier algorithms addressable by name (grid specs, program
#: refs). Declarative layers validate against this eagerly, so a typo
#: fails at spec-parse time instead of inside a batch worker.
MULTIPLIER_ALGORITHMS = ("schoolbook", "karatsuba", "windowed")


def multiplier_by_name(name: str, bits: int, **kwargs: object) -> Multiplier:
    """Construct a multiplier from its experiment identifier."""
    from .karatsuba import KaratsubaMultiplier
    from .schoolbook import SchoolbookMultiplier
    from .windowed import WindowedMultiplier

    registry: dict[str, type[Multiplier]] = {
        "schoolbook": SchoolbookMultiplier,
        "karatsuba": KaratsubaMultiplier,
        "windowed": WindowedMultiplier,
    }
    assert set(registry) == set(MULTIPLIER_ALGORITHMS)
    try:
        cls = registry[name]
    except KeyError:
        raise KeyError(
            f"unknown multiplier {name!r}; available: {sorted(registry)}"
        ) from None
    return cls(bits, **kwargs)  # type: ignore[arg-type]
