"""Seeded random-circuit generation for fuzzing the IR toolchain.

Produces well-formed circuits over configurable gate mixes. Used by the
test suite to cross-validate the tracer, validator, simulator, adjoint
replay, and QIR round-trip on inputs nobody hand-picked — the highest-
leverage way to catch bookkeeping bugs in the instruction-stream layer.

:meth:`RandomCircuitGenerator.emit_onto` drives *any*
:class:`~repro.ir.builder.Builder` with the same seeded operation
sequence, so the same random program can be emitted into both the
materializing :class:`CircuitBuilder` and the streaming
:class:`~repro.ir.counting.CountingBuilder` and their counts compared
instruction-for-instruction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .builder import Builder
from .circuit import Circuit, CircuitBuilder

#: Gate mix keys and their relative weights in the default profile.
DEFAULT_WEIGHTS: dict[str, float] = {
    "x": 2.0,
    "h": 1.0,
    "s": 1.0,
    "cx": 3.0,
    "swap": 0.5,
    "cz": 0.5,
    "t": 1.5,
    "ccz": 1.0,
    "ccx": 1.0,
    "and_pair": 1.5,
    "rotation": 0.7,
    "measure": 0.5,
    "alloc": 0.7,
    "release": 0.7,
}

#: Gate mix restricted to what the reversible simulator executes.
REVERSIBLE_WEIGHTS: dict[str, float] = {
    key: weight
    for key, weight in DEFAULT_WEIGHTS.items()
    if key in ("x", "cx", "swap", "ccx", "and_pair", "alloc", "release")
}


@dataclass
class RandomCircuitGenerator:
    """Seeded generator of structurally valid circuits.

    Parameters
    ----------
    seed:
        RNG seed; equal seeds give identical circuits.
    weights:
        Relative gate-mix weights (see :data:`DEFAULT_WEIGHTS`).
    min_qubits:
        Number of qubits allocated up front (never released, so multi-qubit
        gates always have operands).
    """

    seed: int = 0
    weights: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))
    min_qubits: int = 3

    def generate(self, num_operations: int, name: str = "fuzz") -> Circuit:
        """Emit ``num_operations`` randomly chosen operations."""
        builder = CircuitBuilder(name)
        self.emit_onto(builder, num_operations)
        return builder.finish()

    def emit_onto(self, builder: Builder, num_operations: int) -> None:
        """Drive ``builder`` with the seeded operation sequence.

        Deterministic in the seed and independent of the backend: both
        builder implementations run the same free-list allocator, so the
        emitted instruction sequence (ids included) is identical whether
        it is being materialized or folded into counts.
        """
        rng = random.Random(self.seed)
        core = builder.allocate_register(max(self.min_qubits, 3))
        extra: list[int] = []
        choices = list(self.weights)
        weights = [self.weights[c] for c in choices]

        def pick(k: int) -> list[int]:
            return rng.sample(core + extra, k)

        for _ in range(num_operations):
            op = rng.choices(choices, weights)[0]
            if op == "x":
                builder.x(pick(1)[0])
            elif op == "h":
                builder.h(pick(1)[0])
            elif op == "s":
                builder.s(pick(1)[0])
            elif op == "cx":
                a, b = pick(2)
                builder.cx(a, b)
            elif op == "swap":
                a, b = pick(2)
                builder.swap(a, b)
            elif op == "cz":
                a, b = pick(2)
                builder.cz(a, b)
            elif op == "t":
                builder.t(pick(1)[0])
            elif op == "ccz":
                builder.ccz(*pick(3))
            elif op == "ccx":
                builder.ccx(*pick(3))
            elif op == "and_pair":
                # Compute and immediately uncompute: inserting gates on the
                # controls in between would (correctly) trip the simulator's
                # AND contract, and the fuzzer must emit valid circuits.
                a, b = pick(2)
                target = builder.and_compute(a, b)
                builder.and_uncompute(a, b, target)
            elif op == "rotation":
                builder.rz(rng.uniform(0.01, 3.0), pick(1)[0])
            elif op == "measure":
                builder.measure(pick(1)[0])
            elif op == "alloc":
                extra.append(builder.allocate())
            elif op == "release":
                if extra:
                    qubit = extra.pop(rng.randrange(len(extra)))
                    builder.reset(qubit)  # ensure it is clean to release
                    builder.release(qubit)


def random_circuit(
    num_operations: int,
    seed: int = 0,
    *,
    reversible_only: bool = False,
    min_qubits: int = 3,
) -> Circuit:
    """One-shot convenience wrapper around :class:`RandomCircuitGenerator`."""
    weights = REVERSIBLE_WEIGHTS if reversible_only else DEFAULT_WEIGHTS
    generator = RandomCircuitGenerator(
        seed=seed, weights=dict(weights), min_qubits=min_qubits
    )
    return generator.generate(num_operations)
