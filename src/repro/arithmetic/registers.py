"""Register-level helpers (little-endian throughout the library)."""

from __future__ import annotations

from typing import Sequence

from ..ir import Builder


def xor_constant(builder: Builder, register: Sequence[int], value: int) -> None:
    """``register ^= value`` via X gates on the set bits."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> len(register):
        raise ValueError(
            f"value {value} does not fit in a {len(register)}-qubit register"
        )
    for position, qubit in enumerate(register):
        if (value >> position) & 1:
            builder.x(qubit)


# Writing assumes the register is in |0...0>, making XOR a write.
write_constant = xor_constant


def copy_register(
    builder: Builder, source: Sequence[int], target: Sequence[int]
) -> None:
    """``target ^= source`` bitwise via CNOTs (a copy when target is zero)."""
    if len(target) < len(source):
        raise ValueError(
            f"target register ({len(target)} qubits) shorter than source "
            f"({len(source)} qubits)"
        )
    for src, dst in zip(source, target):
        builder.cx(src, dst)
