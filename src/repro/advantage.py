"""Quantum computing implementation levels and practical-advantage checks.

The paper's framing (Sec. I–II):

* **Level 1 — Foundational (NISQ)**: noisy physical qubits; circuits
  capped at roughly a few thousand gates by physical error rates.
* **Level 2 — Resilient**: logical qubits whose error rate beats the
  physical error rate of their components.
* **Level 3 — Scale**: enough reliable qubits and logical clock speed for
  commercially relevant advantage.

and its quantitative bar for practical advantage: the ability to reliably
execute on the order of ``10^12`` quantum gates (Sec. II, citing [1]),
completing within a practical time of about ``10^6`` seconds, with
practical solutions typically sitting between ``10^2`` and ``10^9`` rQOPS.

:func:`assess` turns a :class:`~repro.estimator.PhysicalResourceEstimates`
into this classification, giving resource estimation its "physical side"
purpose from the paper: necessary-and-sufficient conditions a machine
must meet to be considered practical for the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from .estimator import PhysicalResourceEstimates

#: Gate count needed "to outperform classical computation for practical
#: applications" (paper Sec. II).
PRACTICAL_LOGICAL_OPERATIONS: float = 1e12

#: "Within a practical amount of time, say within 10^6 seconds" (Sec. II).
PRACTICAL_RUNTIME_SECONDS: float = 1e6

#: "Rates for practical quantum solutions will typically sit between
#: 10^2 rQOPS and 10^9 rQOPS" (Sec. III-E).
PRACTICAL_RQOPS_RANGE: tuple[float, float] = (1e2, 1e9)


class ImplementationLevel(IntEnum):
    """The three quantum computing implementation levels of Sec. II."""

    FOUNDATIONAL = 1
    RESILIENT = 2
    SCALE = 3


@dataclass(frozen=True)
class AdvantageAssessment:
    """Where a (workload, machine) estimate sits on the road to advantage."""

    level: ImplementationLevel
    logical_operations: int
    runtime_seconds: float
    rqops: float
    logical_error_rate: float
    physical_error_rate: float
    runs_within_practical_time: bool
    reaches_practical_scale: bool
    notes: tuple[str, ...]

    @property
    def practical_advantage(self) -> bool:
        """Meets all of the paper's quantitative advantage criteria."""
        return self.level is ImplementationLevel.SCALE

    def to_dict(self) -> dict[str, Any]:
        return {
            "level": int(self.level),
            "levelName": self.level.name.lower(),
            "logicalOperations": self.logical_operations,
            "runtime_s": self.runtime_seconds,
            "rqops": self.rqops,
            "logicalErrorRate": self.logical_error_rate,
            "physicalErrorRate": self.physical_error_rate,
            "runsWithinPracticalTime": self.runs_within_practical_time,
            "reachesPracticalScale": self.reaches_practical_scale,
            "practicalAdvantage": self.practical_advantage,
            "notes": list(self.notes),
        }


def assess(
    estimates: PhysicalResourceEstimates,
    *,
    required_logical_operations: float = PRACTICAL_LOGICAL_OPERATIONS,
    practical_runtime_seconds: float = PRACTICAL_RUNTIME_SECONDS,
) -> AdvantageAssessment:
    """Classify an estimate against the paper's implementation levels.

    Parameters
    ----------
    estimates:
        Output of :func:`repro.estimator.estimate`.
    required_logical_operations:
        Reliable-operation count defining "practical scale"; defaults to
        the paper's ``10^12``.
    practical_runtime_seconds:
        Runtime bound for a practical solution; defaults to ``10^6`` s.
    """
    logical_error = estimates.logical_qubit.logical_error_rate
    physical_error = estimates.qubit_params.clifford_error_rate
    ops = estimates.breakdown.logical_operations
    runtime = estimates.runtime_seconds
    rqops = estimates.rqops
    notes: list[str] = []

    resilient = logical_error < physical_error
    if not resilient:
        notes.append(
            f"logical error rate {logical_error:.2e} does not beat the physical "
            f"error rate {physical_error:.2e}: still at the foundational level"
        )

    in_time = runtime <= practical_runtime_seconds
    if not in_time:
        notes.append(
            f"runtime {runtime:.3g} s exceeds the practical bound "
            f"{practical_runtime_seconds:.0e} s"
        )

    at_scale = ops >= required_logical_operations
    if not at_scale:
        notes.append(
            f"workload exercises {ops:.3g} reliable operations, below the "
            f"practical-advantage scale of {required_logical_operations:.0e}"
        )

    low, high = PRACTICAL_RQOPS_RANGE
    if rqops < low:
        notes.append(f"rQOPS {rqops:.3g} below the practical range [{low:.0e}, {high:.0e}]")
    elif rqops > high:
        notes.append(
            f"rQOPS {rqops:.3g} above the typical practical range "
            f"[{low:.0e}, {high:.0e}] (beyond projected near-term machines)"
        )

    if not resilient:
        level = ImplementationLevel.FOUNDATIONAL
    elif at_scale and in_time:
        level = ImplementationLevel.SCALE
    else:
        level = ImplementationLevel.RESILIENT

    return AdvantageAssessment(
        level=level,
        logical_operations=ops,
        runtime_seconds=runtime,
        rqops=rqops,
        logical_error_rate=logical_error,
        physical_error_rate=physical_error,
        runs_within_practical_time=in_time,
        reaches_practical_scale=at_scale,
        notes=tuple(notes),
    )
