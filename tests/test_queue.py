"""Tests for the store-backed sweep work queue (leases, journal, chaos).

The load-bearing assertions extend the sweep subsystem's resume
invariant across *processes*: a sweep drained by workers that are
killed at arbitrary points between claim, evaluate, and persist — real
subprocesses dying via ``os._exit``, driven by the fault harness in
``tests/faults.py`` — finishes bit-for-bit equal to an uninterrupted
serial run, and a restarted service resumes a mid-flight journaled
sweep to the identical result.
"""

from __future__ import annotations

import json
import random
import time

import pytest

import faults
from repro import LogicalCounts, Registry, ResultStore
from repro.estimator.queue import (
    FAULT_STAGES,
    SweepQueue,
    run_worker,
)
from repro.estimator.store import read_document
from repro.estimator.sweep import SweepSpec, run_sweep
from repro.service import EstimationService

COUNTS = LogicalCounts(
    num_qubits=40, t_count=20_000, ccz_count=5_000, measurement_count=500
)

#: Six points in three 2-point chunks: enough structure for partial
#: completion, small enough that every chaos round stays fast.
SWEEP_DOC = {
    "base": {"program": {"counts": COUNTS.to_dict()}},
    "axes": [
        {"field": "budget", "values": [1e-4, 1e-3, 1e-2]},
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]},
    ],
    "frontier": {"objective": "qubits-runtime", "groupBy": ["qubit"]},
    "chunkSize": 2,
}


def small_sweep() -> SweepSpec:
    return SweepSpec.from_dict(json.loads(json.dumps(SWEEP_DOC)))


def serial_result_bytes(tmp_path) -> tuple[str, bytes]:
    """(job id, stored sweep document bytes) from an uninterrupted run.

    The local executor does not persist the sweep document itself, so the
    baseline stores it through the same ``put_sweep`` path the queue
    finalizer uses — making the comparison byte-for-byte on disk.
    """
    store = ResultStore(tmp_path / "serial")
    result = run_sweep(small_sweep(), registry=Registry(), store=store)
    assert store.put_sweep(result.sweep_hash, result.to_dict())
    return result.sweep_hash, store.sweep_path_for(result.sweep_hash).read_bytes()


def assert_no_torn_documents(store: ResultStore) -> None:
    """Every ``.json`` under the store root parses and digest-verifies."""
    for path in store.root.rglob("*.json"):
        assert read_document(path) is not None, f"torn/corrupt document: {path}"


class FakeClock:
    """A controllable monotonic clock shared by cooperating queues."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture()
def job(store):
    return SweepQueue(store).enqueue(small_sweep(), registry=Registry())


class TestLeaseSemantics:
    """The lease protocol on a scripted clock: claim, renew, expire, steal."""

    TTL = 10.0

    @pytest.fixture()
    def clock(self):
        return FakeClock()

    @pytest.fixture()
    def alice(self, store, clock):
        return SweepQueue(store, owner="alice", ttl=self.TTL, clock=clock)

    @pytest.fixture()
    def bob(self, store, clock):
        return SweepQueue(store, owner="bob", ttl=self.TTL, clock=clock)

    def test_double_claim_is_refused(self, job, alice, bob):
        lease = alice.claim(job.job_id, 0)
        assert lease is not None and lease.owner == "alice"
        assert bob.claim(job.job_id, 0) is None
        assert alice.claim(job.job_id, 0) is None  # even by the same owner

    def test_release_allows_reclaim(self, job, alice, bob):
        lease = alice.claim(job.job_id, 0)
        alice.release(lease)
        assert bob.claim(job.job_id, 0) is not None

    def test_expired_lease_is_reclaimed(self, job, alice, bob, clock):
        lease = alice.claim(job.job_id, 0)
        clock.advance(self.TTL + 1)
        stolen = bob.claim(job.job_id, 0)
        assert stolen is not None and stolen.owner == "bob"
        # The dead worker's handle is no longer renewable or releasable.
        assert alice.renew(lease) is False
        alice.release(lease)
        assert bob.lease_holder(job.job_id, 0)["owner"] == "bob"

    def test_heartbeat_renewal_keeps_lease_alive(self, job, alice, bob, clock):
        lease = alice.claim(job.job_id, 0)
        clock.advance(self.TTL * 0.6)
        assert alice.renew(lease) is True
        # Past the original deadline but within the renewed one.
        clock.advance(self.TTL * 0.6)
        assert bob.claim(job.job_id, 0) is None
        # Past the renewed deadline: reclaimable.
        clock.advance(self.TTL)
        assert bob.claim(job.job_id, 0) is not None

    def test_renewal_refused_once_deadline_passed(self, job, alice, clock):
        lease = alice.claim(job.job_id, 0)
        clock.advance(self.TTL + 0.1)
        # Refused even though nobody stole it — renewing past the deadline
        # could clobber a concurrent reclaimer's fresh lease.
        assert alice.renew(lease) is False

    def test_corrupt_lease_is_reclaimable(self, job, alice, bob):
        lease = alice.claim(job.job_id, 0)
        lease.path.write_text("{torn")
        assert bob.claim(job.job_id, 0) is not None

    def test_leases_are_per_chunk(self, job, alice, bob):
        assert alice.claim(job.job_id, 0) is not None
        assert bob.claim(job.job_id, 1) is not None


class TestEnqueue:
    def test_enqueue_is_idempotent_and_first_chunking_wins(self, store):
        queue = SweepQueue(store)
        first = queue.enqueue(small_sweep(), registry=Registry())
        again = queue.enqueue(small_sweep(), registry=Registry(), chunk_size=1)
        assert again.job_id == first.job_id
        assert again.chunk_size == first.chunk_size == 2
        assert again.num_chunks == first.num_chunks == 3
        assert first.total_points == 6

    def test_journal_round_trips_the_spec(self, store, job):
        loaded = SweepQueue(store).load_job(job.job_id)
        assert loaded is not None
        assert loaded.spec.to_dict() == small_sweep().to_dict()
        assert loaded.status == "submitted"
        assert [loaded.chunk_range(i) for i in range(3)] == [(0, 2), (2, 4), (4, 6)]

    def test_pending_jobs_and_mark_finished(self, store, job):
        queue = SweepQueue(store)
        assert [pending.job_id for pending in queue.pending_jobs()] == [job.job_id]
        assert queue.mark_finished(job) is True
        assert queue.pending_jobs() == []
        assert queue.load_job(job.job_id).status == "finished"


class TestWorkerExecution:
    def test_queue_executor_matches_local_bit_for_bit(self, tmp_path):
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store = ResultStore(tmp_path / "queued")
        result = run_sweep(
            small_sweep(), registry=Registry(), store=store, executor="queue"
        )
        assert result.sweep_hash == job_id
        assert store.sweep_path_for(job_id).read_bytes() == serial_bytes
        assert SweepQueue(store).load_job(job_id).status == "finished"
        assert_no_torn_documents(store)

    def test_progress_events_are_cumulative(self, store, job):
        events = []
        run_worker(store, job_id=job.job_id, progress=events.append)
        assert [event.chunk for event in events] == [1, 2, 3]
        assert events[-1].completed == events[-1].total == 6
        assert events[-1].failed == 0

    def test_aborted_worker_resumes_to_identical_result(self, tmp_path):
        """In-process abort (progress raise) — the service shutdown path."""
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store = ResultStore(tmp_path / "queued")
        queue = SweepQueue(store)
        job = queue.enqueue(small_sweep(), registry=Registry())

        class Abort(Exception):
            pass

        def abort_after_first_chunk(event) -> None:
            if event.chunk >= 1:
                raise Abort()

        with pytest.raises(Abort):
            run_worker(store, job_id=job.job_id, progress=abort_after_first_chunk)
        # Mid-flight: some chunks done, journal open, no leases left behind.
        assert queue.load_job(job.job_id).status == "submitted"
        assert queue.chunk_done(job, 0)
        assert not any(
            queue.lease_path(job.job_id, index).exists() for index in range(3)
        )
        report = run_worker(store, job_id=job.job_id)
        assert report.jobs_finalized == 1
        assert store.sweep_path_for(job_id).read_bytes() == serial_bytes

    def test_unknown_job_raises(self, store):
        with pytest.raises(ValueError, match="unknown sweep job"):
            run_worker(store, job_id="0" * 64)

    def test_jobless_worker_drains_all_pending_jobs(self, store, job):
        report = run_worker(store)
        assert report.jobs_seen == 1
        assert report.jobs_finalized == 1
        assert report.incomplete_jobs == []
        assert store.get_sweep(job.job_id) is not None


class TestFaultInjection:
    """Real worker subprocesses killed via os._exit at armed kill-points."""

    TTL = 0.3

    def _enqueue(self, tmp_path):
        store = ResultStore(tmp_path / "queued")
        job = SweepQueue(store).enqueue(small_sweep(), registry=Registry())
        return store, job

    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_kill_at_stage_then_survivor_finishes(self, tmp_path, stage):
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store, job = self._enqueue(tmp_path)
        killed = faults.run_worker_process(
            store.root, job_id=job.job_id, fault=f"{stage}:1", ttl=self.TTL
        )
        assert faults.was_fault_kill(killed), killed.stderr
        # The sweep is mid-flight, never torn.
        assert store.get_sweep(job.job_id) is None
        assert_no_torn_documents(store)
        survivor = faults.run_worker_process(
            store.root, job_id=job.job_id, ttl=self.TTL
        )
        assert survivor.returncode == 0, survivor.stderr
        assert store.sweep_path_for(job_id).read_bytes() == serial_bytes
        assert SweepQueue(store).load_job(job.job_id).status == "finished"
        assert_no_torn_documents(store)

    def test_chaos_random_kills_converge_to_serial_result(self, tmp_path):
        """The chaos property: any kill schedule yields the serial bytes."""
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store, job = self._enqueue(tmp_path)
        rng = random.Random(0xC4A05)
        kills = 0
        for _ in range(12):  # bounded: every round makes or observes progress
            if store.get_sweep(job.job_id) is not None:
                break
            process = faults.run_worker_process(
                store.root,
                job_id=job.job_id,
                fault=faults.random_fault(rng, job.num_chunks),
                ttl=self.TTL,
            )
            kills += 1 if faults.was_fault_kill(process) else 0
            assert_no_torn_documents(store)
        if store.get_sweep(job.job_id) is None:
            survivor = faults.run_worker_process(
                store.root, job_id=job.job_id, ttl=self.TTL
            )
            assert survivor.returncode == 0, survivor.stderr
        assert kills > 0, "chaos schedule never killed a worker"
        assert store.sweep_path_for(job_id).read_bytes() == serial_bytes
        assert SweepQueue(store).load_job(job.job_id).status == "finished"
        assert_no_torn_documents(store)

    def test_two_live_workers_split_chunks_without_duplicates(self, tmp_path):
        """No chunk is evaluated by two *live* leaseholders: with nobody
        killed, the per-worker evaluated counts sum exactly to the chunk
        count."""
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store = ResultStore(tmp_path / "queued")
        job = SweepQueue(store).enqueue(
            small_sweep(), registry=Registry(), chunk_size=1
        )
        workers = [
            faults.spawn_worker_process(
                store.root, job_id=job.job_id, ttl=5.0, json_report=True
            )
            for _ in range(2)
        ]
        reports = []
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, stderr
            reports.append(json.loads(stdout))
        assert sum(report["chunksEvaluated"] for report in reports) == job.num_chunks
        assert store.sweep_path_for(job_id).read_bytes() == serial_bytes


class TestServiceRecovery:
    def _submit_doc(self):
        return json.loads(json.dumps(SWEEP_DOC))

    def _wait_done(self, service, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = service.job_record(job_id)
            if record is not None and record["status"] in ("done", "failed"):
                return record
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not settle within {timeout}s")

    def test_restarted_service_resumes_mid_flight_journaled_job(self, tmp_path):
        """A journaled, partially-evaluated sweep (its worker process died)
        is picked up by a *new* service over the same store and finished
        to the serial result."""
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store = ResultStore(tmp_path / "queued")
        job = SweepQueue(store).enqueue(small_sweep(), registry=Registry())
        killed = faults.run_worker_process(
            store.root, job_id=job.job_id, fault="persisted:0", ttl=0.3
        )
        assert faults.was_fault_kill(killed), killed.stderr
        assert store.get_sweep(job.job_id) is None

        service = EstimationService(
            registry=Registry(), store=store, lease_ttl=0.3
        )
        try:
            assert service.sweep_executor == "queue"
            record = self._wait_done(service, job.job_id)
            assert record["status"] == "done", record
            assert store.sweep_path_for(job_id).read_bytes() == serial_bytes
        finally:
            service.close(wait=True)

    def test_service_close_then_new_service_resumes(self, tmp_path):
        """A real restart: service 1 aborts the job at a chunk boundary on
        close(); service 2 over the same store resumes it from the journal
        and finishes to the identical stored bytes."""
        job_id, serial_bytes = serial_result_bytes(tmp_path)
        store = ResultStore(tmp_path / "queued")
        queue = SweepQueue(store)
        first = EstimationService(registry=Registry(), store=store, lease_ttl=0.5)
        try:
            # Hold the engine lock so the job blocks before its first chunk,
            # then stop the service — the job aborts at the chunk boundary.
            with first._lock:
                record = first.submit_sweep(self._submit_doc())
                assert record["jobId"] == job_id
                deadline = time.monotonic() + 30
                while queue.load_job(job_id) is None:
                    assert time.monotonic() < deadline, "job never journaled"
                    time.sleep(0.01)
                first.close(wait=False)
            first._sweep_pool.shutdown(wait=True)
        finally:
            first.close(wait=True)
        assert store.get_sweep(job_id) is None  # genuinely mid-flight
        assert queue.load_job(job_id).status == "submitted"

        second = EstimationService(registry=Registry(), store=store, lease_ttl=0.5)
        try:
            record = self._wait_done(second, job_id)
            assert record["status"] == "done", record
            assert store.sweep_path_for(job_id).read_bytes() == serial_bytes
        finally:
            second.close(wait=True)

    def test_recovery_closes_journal_when_result_already_stored(self, tmp_path):
        """Crash between put_sweep and mark_finished: recovery just closes
        the journal instead of requeueing anything."""
        store = ResultStore(tmp_path / "queued")
        run_sweep(small_sweep(), registry=Registry(), store=store, executor="queue")
        queue = SweepQueue(store)
        job = queue.load_job(next(iter(queue.job_ids())))
        # Reopen the journal as if the finalizer died mid-way.
        document = read_document(queue.journal_path(job.job_id))
        document.pop("digest")
        document["status"] = "submitted"
        from repro.estimator.store import write_document

        assert write_document(queue.journal_path(job.job_id), document)

        service = EstimationService(registry=Registry(), store=store, recover=False)
        try:
            assert service.recover_jobs() == 0
            assert queue.load_job(job.job_id).status == "finished"
        finally:
            service.close(wait=True)

    def test_local_executor_still_available(self, tmp_path):
        store = ResultStore(tmp_path / "queued")
        service = EstimationService(
            registry=Registry(), store=store, executor="local"
        )
        try:
            assert service.sweep_executor == "local"
            record = service.submit_sweep(self._submit_doc())
            done = self._wait_done(service, record["jobId"])
            assert done["status"] == "done"
            # The local executor does not journal.
            assert SweepQueue(store).pending_jobs() == []
        finally:
            service.close(wait=True)

    def test_queue_executor_requires_store(self):
        with pytest.raises(ValueError, match="requires a result store"):
            EstimationService(registry=Registry(), store=None, executor="queue")
