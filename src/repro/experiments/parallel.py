"""Parallel execution of estimation sweeps.

Figure sweeps are embarrassingly parallel: every (algorithm, bits,
profile) point is independent. Following the HPC guidance of measuring
first — a single 16384-bit Karatsuba point costs ~1 s of pure-Python count
generation — the win comes from distributing *points* across processes,
not micro-optimizing inside one. This module fans the grid out over a
``ProcessPoolExecutor`` (workers re-derive the T-factory catalog once
each, which the shared-designer cache then reuses for all their points).

Serial fallback (``max_workers=1`` or pool start-up failure) keeps the
results identical: determinism is asserted by the tests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from .runner import PAPER_ERROR_BUDGET, EstimateRow, run_estimate_row

#: A sweep point: (algorithm, bits, profile).
SweepPoint = tuple[str, int, str]


def _run_point(args: tuple[str, int, str, float]) -> EstimateRow:
    algorithm, bits, profile, budget = args
    return run_estimate_row(algorithm, bits, profile, budget=budget)


def run_rows_parallel(
    points: Sequence[SweepPoint],
    *,
    budget: float = PAPER_ERROR_BUDGET,
    max_workers: int | None = None,
) -> list[EstimateRow]:
    """Estimate all sweep points, preserving input order.

    Parameters
    ----------
    points:
        ``(algorithm, bits, profile)`` triples.
    budget:
        Total error budget shared by all points.
    max_workers:
        Process count; ``1`` (or an unavailable pool) runs serially.
    """
    jobs = [(alg, bits, profile, budget) for alg, bits, profile in points]
    if max_workers == 1 or len(jobs) <= 1:
        return [_run_point(job) for job in jobs]
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_run_point, jobs))
    except (OSError, PermissionError):
        # Sandboxes without process spawning fall back to serial execution.
        return [_run_point(job) for job in jobs]


def fig3_points(
    bit_sizes: Sequence[int],
    algorithms: Sequence[str] = ("schoolbook", "karatsuba", "windowed"),
    profile: str = "qubit_maj_ns_e4",
) -> list[SweepPoint]:
    """The Fig. 3 grid as sweep points (algorithm-major order)."""
    return [(alg, bits, profile) for alg in algorithms for bits in bit_sizes]


def fig4_points(
    profiles: Sequence[str],
    algorithms: Sequence[str] = ("schoolbook", "karatsuba", "windowed"),
    bits: int = 2048,
) -> list[SweepPoint]:
    """The Fig. 4 grid as sweep points (profile-major order)."""
    return [(alg, bits, profile) for profile in profiles for alg in algorithms]
