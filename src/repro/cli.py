"""Command-line interface: estimate resources without writing Python.

Mirrors the submit-a-job experience of the cloud tool (paper Sec. IV-A):
feed it an algorithm (logical counts as JSON, or a QIR file), pick a
hardware profile and budget, get the report.

Usage::

    python -m repro --counts counts.json --profile qubit_gate_ns_e3
    python -m repro --qir program.ll --profile qubit_maj_ns_e4 \\
        --budget 1e-4 --qec-scheme floquet_code --max-t-factories 10 --json

``counts.json`` uses the LogicalCounts field names::

    {"num_qubits": 100, "t_count": 1000000, "ccz_count": 500000,
     "rotation_count": 0, "rotation_depth": 0, "measurement_count": 10000}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .advantage import assess
from .budget import ErrorBudget
from .counts import LogicalCounts
from .estimator import Constraints, EstimationError, estimate
from .qec import default_scheme_for, qec_scheme
from .qir import QIRParseError, parse_qir
from .qubits import PREDEFINED_PROFILES, qubit_params


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant quantum resource estimation "
        "(Azure Quantum Resource Estimator reproduction).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--counts", type=Path, help="JSON file with LogicalCounts fields"
    )
    source.add_argument("--qir", type=Path, help="QIR text file (.ll)")
    parser.add_argument(
        "--profile",
        default="qubit_gate_ns_e3",
        choices=sorted(PREDEFINED_PROFILES),
        help="hardware profile (default: qubit_gate_ns_e3)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=1e-3,
        help="total error budget (default: 1e-3)",
    )
    parser.add_argument(
        "--qec-scheme",
        default=None,
        help="QEC scheme name (default: technology default — surface_code "
        "for gate-based, floquet_code for Majorana)",
    )
    parser.add_argument(
        "--max-t-factories",
        type=int,
        default=None,
        help="cap on parallel T-factory copies",
    )
    parser.add_argument(
        "--depth-factor",
        type=float,
        default=1.0,
        help="logical-depth slowdown factor >= 1 (trades runtime for qubits)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full eight-group report as JSON instead of the summary",
    )
    parser.add_argument(
        "--assess",
        action="store_true",
        help="also classify the result against the quantum computing "
        "implementation levels",
    )
    return parser


def _load_program(args: argparse.Namespace):
    if args.counts is not None:
        try:
            data = json.loads(args.counts.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot read counts file: {exc}")
        try:
            return LogicalCounts.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"error: invalid logical counts: {exc}")
    try:
        text = args.qir.read_text()
    except OSError as exc:
        raise SystemExit(f"error: cannot read QIR file: {exc}")
    try:
        return parse_qir(text, name=args.qir.stem)
    except QIRParseError as exc:
        raise SystemExit(f"error: QIR parse failed: {exc}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    program = _load_program(args)
    qubit = qubit_params(args.profile)
    scheme = (
        qec_scheme(args.qec_scheme, qubit)
        if args.qec_scheme
        else default_scheme_for(qubit)
    )
    try:
        constraints = Constraints(
            max_t_factories=args.max_t_factories,
            logical_depth_factor=args.depth_factor,
        )
        result = estimate(
            program,
            qubit,
            scheme=scheme,
            budget=ErrorBudget(total=args.budget),
            constraints=constraints,
        )
    except (EstimationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        report = result.to_dict()
        if args.assess:
            report["advantageAssessment"] = assess(result).to_dict()
        print(json.dumps(report, indent=2))
    else:
        print(result.summary())
        if args.assess:
            verdict = assess(result)
            print("Implementation level")
            print(f"  Level:                      {verdict.level.name.lower()}")
            print(
                f"  Practical advantage:        "
                f"{'yes' if verdict.practical_advantage else 'no'}"
            )
            for note in verdict.notes:
                print(f"  Note: {note}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
