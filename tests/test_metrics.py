"""Tests for the metrics registry and the ``/v1/metrics`` endpoint.

The load-bearing assertions: concurrent handler threads never produce a
torn scrape (every exposition parses, histograms stay internally
consistent), final counters equal the serial tally, and a scrape does
zero per-request directory walks (TTL-cached gauges).
"""

from __future__ import annotations

import contextlib
import json
import re
import threading
import time
import urllib.request

import pytest

from repro import EstimateSpec, LogicalCounts, ResultStore
from repro.jsonlog import StructuredLogger
from repro.metrics import MetricsRegistry, normalize_route
from repro.registry import Registry
from repro.service import EstimationService, ServiceClient, make_server

COUNTS = LogicalCounts(num_qubits=40, t_count=50_000, measurement_count=500)

#: One Prometheus exposition sample line: name, optional {labels}, value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample; no torn output."""
    assert text.endswith("\n")
    typed: set[str] = set()
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            if line.startswith("# TYPE "):
                name = line.split()[2]
                assert name not in typed, f"duplicate TYPE for {name}"
                typed.add(name)
            continue
        assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"


@contextlib.contextmanager
def live_service(tmp_path, **service_kwargs):
    service = EstimationService(
        registry=Registry(), store=ResultStore(tmp_path), **service_kwargs
    )
    server = make_server("127.0.0.1", 0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield service, f"http://127.0.0.1:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def scrape(base_url: str, suffix: str = "") -> tuple[str, str]:
    """(body, content-type) of one GET /v1/metrics."""
    with urllib.request.urlopen(f"{base_url}/v1/metrics{suffix}") as response:
        return response.read().decode(), response.headers.get("Content-Type", "")


class TestNormalizeRoute:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/v1/estimate", "/v1/estimate"),
            ("/v1/estimate/", "/v1/estimate"),
            ("/v1/metrics?format=json", "/v1/metrics"),
            ("/v1/results/" + "a" * 64, "/v1/results/{hash}"),
            ("/v1/jobs/" + "b" * 64, "/v1/jobs/{id}"),
            ("/v1/sweeps/" + "c" * 64 + "/result", "/v1/sweeps/{id}/result"),
            (
                "/v1/optimize/" + "d" * 64 + "/result",
                "/v1/optimize/{id}/result",
            ),
            ("/", "other"),
            ("/admin", "other"),
            ("/v1/whatever/" + "e" * 200, "other"),
        ],
    )
    def test_bounded_cardinality(self, path, expected):
        assert normalize_route(path) == expected


class TestRegistry:
    def test_counter_accumulates_per_labelset(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", {"route": "/a"})
        registry.inc("hits_total", {"route": "/a"}, amount=2)
        registry.inc("hits_total", {"route": "/b"})
        assert registry.counter_value("hits_total", {"route": "/a"}) == 3
        assert registry.counter_value("hits_total", {"route": "/b"}) == 1
        assert registry.counter_value("hits_total", {"route": "/c"}) == 0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 3.0):
            registry.observe("lat", value, buckets=(1.0, 2.0))
        text = registry.render_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 5" in text

    def test_provider_ttl_caches_expensive_sources(self):
        calls = {"n": 0}

        def expensive():
            calls["n"] += 1
            return [("g", None, 7.0)]

        registry = MetricsRegistry()
        registry.register_provider(expensive, ttl=3600.0)
        registry.render_prometheus()
        registry.render_prometheus()
        registry.render_json()
        assert calls["n"] == 1  # refreshed once, then served from cache

    def test_zero_ttl_provider_refreshes_every_scrape(self):
        calls = {"n": 0}

        def cheap():
            calls["n"] += 1
            return [("g", None, float(calls["n"]))]

        registry = MetricsRegistry()
        registry.register_provider(cheap, ttl=0.0)
        registry.render_prometheus()
        text = registry.render_prometheus()
        assert calls["n"] == 2
        assert "g 2" in text

    def test_broken_provider_keeps_last_samples(self):
        state = {"fail": False}

        def flaky():
            if state["fail"]:
                raise RuntimeError("disk on fire")
            return [("g", None, 42.0)]

        registry = MetricsRegistry()
        registry.register_provider(flaky, ttl=0.0)
        assert "g 42" in registry.render_prometheus()
        state["fail"] = True
        assert "g 42" in registry.render_prometheus()  # stale beats absent

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("c_total", {"path": 'a"b\\c\nd'})
        text = registry.render_prometheus()
        assert '{path="a\\"b\\\\c\\nd"}' in text

    def test_help_and_type_rendered(self):
        registry = MetricsRegistry()
        registry.describe("c_total", "counter", "Things counted.")
        registry.inc("c_total")
        text = registry.render_prometheus()
        assert "# HELP c_total Things counted." in text
        assert "# TYPE c_total counter" in text

    def test_render_json_shape(self):
        registry = MetricsRegistry()
        registry.inc("c_total", {"k": "v"})
        registry.observe("h", 0.5)
        document = registry.render_json()
        assert document["counters"] == [
            {"name": "c_total", "labels": {"k": "v"}, "value": 1.0, "help": ""}
        ]
        histogram = document["histograms"][0]
        assert histogram["name"] == "h"
        assert histogram["count"] == 1
        assert histogram["sum"] == 0.5


class TestMetricsEndpoint:
    def test_prometheus_by_default_json_on_request(self, tmp_path):
        with live_service(tmp_path) as (service, base_url):
            client = ServiceClient(base_url)
            spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
            assert client.submit(spec)["ok"] is True

            text, content_type = scrape(base_url)
            assert content_type.startswith("text/plain")
            assert_valid_exposition(text)
            assert (
                'repro_requests_total{method="POST",route="/v1/estimate",'
                'status="200"} 1' in text
            )

            body, content_type = scrape(base_url, "?format=json")
            assert content_type.startswith("application/json")
            document = json.loads(body)
            assert any(
                entry["name"] == "repro_requests_total"
                and entry["labels"].get("route") == "/v1/estimate"
                and entry["value"] == 1
                for entry in document["counters"]
            )

    def test_latency_histogram_and_store_gauges_present(self, tmp_path):
        with live_service(tmp_path) as (service, base_url):
            client = ServiceClient(base_url)
            client.submit(EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3"))
            text, _ = scrape(base_url)
            assert "repro_request_seconds_bucket" in text
            assert 'repro_store_documents{namespace="results"} 1' in text
            assert "repro_queue_depth 0" in text
            assert "repro_kernel_points_total" in text
            assert 'repro_store_evicted_total{unit="files"} 0' in text
            assert 'repro_jobs{kind="sweep",state="running"} 0' in text

    def test_warm_submission_shows_cache_hits(self, tmp_path):
        with live_service(tmp_path) as (service, base_url):
            client = ServiceClient(base_url)
            spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
            cold = client.submit(spec)
            assert cold["fromStore"] is False
            warm = client.submit(spec)
            assert warm["fromStore"] is True
            hits = service.metrics.snapshot()["gauges"][
                "repro_cache_events_total"
            ]
            assert any(
                dict(key).get("outcome") == "hits" and value > 0
                for key, value in hits.items()
            )

    def test_scrape_does_zero_directory_walks_within_ttl(self, tmp_path):
        store = ResultStore(tmp_path)
        service = EstimationService(
            registry=Registry(), store=store, metrics_ttl=3600.0
        )
        server = make_server("127.0.0.1", 0, service=service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base_url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            scrape(base_url)  # first scrape may pay the one TTL walk
            walks = store.stats_walks
            for _ in range(5):
                text, _ = scrape(base_url)
                assert_valid_exposition(text)
            assert store.stats_walks == walks  # zero walks per scrape
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)

    def test_eviction_tallies_surface_in_metrics(self, tmp_path):
        with live_service(tmp_path) as (service, base_url):
            client = ServiceClient(base_url)
            client.submit(EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3"))
            report = service.store.evict(max_bytes=0)
            assert report["evictedFiles"] >= 1
            text, _ = scrape(base_url)
            assert (
                f'repro_store_evicted_total{{unit="files"}} '
                f'{report["evictedFiles"]}' in text
            )


class TestConcurrency:
    def test_counters_match_serial_tally_and_no_torn_scrapes(self, tmp_path):
        """N submitters race a scraper; the books must balance exactly."""
        num_threads = 6
        batches_per_thread = 4
        with live_service(tmp_path) as (service, base_url):
            client = ServiceClient(base_url)
            specs = [
                EstimateSpec(
                    program=COUNTS, qubit="qubit_gate_ns_e3", budget=budget
                )
                for budget in (1e-3, 1e-4)
            ]
            errors: list[BaseException] = []
            stop_scraping = threading.Event()
            scrapes: list[str] = []

            def submitter():
                try:
                    for _ in range(batches_per_thread):
                        records = client.submit_batch(specs)
                        assert all(record["ok"] for record in records)
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            def scraper():
                try:
                    while not stop_scraping.is_set():
                        text, _ = scrape(base_url)
                        scrapes.append(text)
                except BaseException as exc:
                    errors.append(exc)

            scrape_thread = threading.Thread(target=scraper)
            scrape_thread.start()
            threads = [
                threading.Thread(target=submitter) for _ in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stop_scraping.set()
            scrape_thread.join()
            assert errors == []

            # Every mid-flight scrape parsed cleanly: no torn output.
            assert scrapes  # the scraper overlapped the submissions
            for text in scrapes:
                assert_valid_exposition(text)

            # The final counter equals the serial tally exactly.
            expected = num_threads * batches_per_thread
            assert (
                service.metrics.counter_value(
                    "repro_requests_total",
                    {
                        "method": "POST",
                        "route": "/v1/estimate",
                        "status": "200",
                    },
                )
                == expected
            )
            snapshot = service.metrics.snapshot()
            histogram = snapshot["histograms"]["repro_request_seconds"]
            post_key = tuple(
                sorted({"method": "POST", "route": "/v1/estimate"}.items())
            )
            assert histogram[post_key]["count"] == expected
            # Histogram internal consistency: +Inf == count, buckets
            # monotone nondecreasing.
            counts = histogram[post_key]["counts"]
            assert counts == sorted(counts)
            assert counts[-1] <= histogram[post_key]["count"]


class TestStructuredLogging:
    def test_one_json_record_per_request(self, tmp_path):
        import io

        stream = io.StringIO()
        service = EstimationService(
            registry=Registry(),
            store=ResultStore(tmp_path),
            log=StructuredLogger(stream),
        )
        server = make_server("127.0.0.1", 0, service=service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base_url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            client = ServiceClient(base_url)
            client.submit(EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3"))
            client.health()
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        requests = [r for r in records if r["event"] == "request"]
        assert len(requests) == 2
        for record in requests:
            assert record["status"] == 200
            assert record["duration_s"] >= 0
            assert record["requestId"]
            assert "ts" in record
        routes = {record["route"] for record in requests}
        assert routes == {"/v1/estimate", "/v1/healthz"}

    def test_sweep_job_lifecycle_records_carry_the_job_id(self, tmp_path):
        import io

        stream = io.StringIO()
        service = EstimationService(
            registry=Registry(),
            store=ResultStore(tmp_path),
            log=StructuredLogger(stream),
            executor="local",
        )
        try:
            record = service.submit_sweep(
                {
                    "base": {
                    "program": {"counts": COUNTS.to_dict()},
                    "qubit": {"profile": "qubit_gate_ns_e3"},
                },
                    "axes": [{"field": "budget", "values": [1e-3, 1e-4]}],
                }
            )
            job_id = record["jobId"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = service.job_record(job_id)["status"]
                if status in ("done", "failed"):
                    break
                time.sleep(0.02)
            assert status == "done"
        finally:
            service.close(wait=True)
        events = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        by_event = {record["event"]: record for record in events}
        for name in ("job.queued", "job.running", "job.done"):
            assert name in by_event, sorted(by_event)
            assert by_event[name]["jobId"] == job_id
        assert by_event["job.done"]["duration_s"] >= 0

    def test_disabled_logger_writes_nothing(self):
        import io

        stream = io.StringIO()
        logger = StructuredLogger(stream, enabled=False)
        logger.event("request", status=200)
        assert stream.getvalue() == ""

    def test_worker_loop_emits_chunk_records(self, tmp_path):
        import io

        from repro.estimator.queue import SweepQueue, run_worker
        from repro.estimator.sweep import SweepSpec

        stream = io.StringIO()
        store = ResultStore(tmp_path)
        spec = SweepSpec.from_dict(
            {
                "base": {
                    "program": {"counts": COUNTS.to_dict()},
                    "qubit": {"profile": "qubit_gate_ns_e3"},
                },
                "axes": [{"field": "budget", "values": [1e-3, 1e-4]}],
            }
        )
        queue = SweepQueue(store)
        job = queue.enqueue(spec, registry=Registry())
        report = run_worker(
            store, job_id=job.job_id, log=StructuredLogger(stream)
        )
        assert report.chunks_evaluated >= 1
        events = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        names = [record["event"] for record in events]
        assert names[0] == "worker.start"
        assert names[-1] == "worker.done"
        chunk_records = [r for r in events if r["event"] == "worker.chunk"]
        assert chunk_records
        assert all(r["jobId"] == job.job_id for r in chunk_records)


class TestPoolMetrics:
    def test_pool_gauge_family_present_with_engine(self, tmp_path):
        with live_service(tmp_path, max_workers=2) as (service, base_url):
            body, _ = scrape(base_url)
            executor = service.cache_stats()["executor"]
        assert_valid_exposition(body)
        assert "# TYPE repro_pool_workers gauge" in body
        assert "# TYPE repro_pool_rebuilds_total counter" in body
        assert "# TYPE repro_pool_chunks_total counter" in body
        assert "# TYPE repro_pool_chunk_size gauge" in body
        assert "# TYPE repro_executor_fallbacks_total counter" in body
        assert 'repro_pool_chunks_total{kind="dispatched"}' in body
        assert 'repro_pool_chunks_total{kind="replayed"}' in body
        assert "repro_executor_fallbacks_total 0" in body
        # The idle engine has not spawned its pool yet: alive gauge is 0.
        assert "repro_pool_workers 0" in body
        assert executor["pool"] == "keep"
        assert executor["maxWorkers"] == 2
        assert executor["serialFallbacks"] == 0

    def test_pool_samples_zero_without_engine(self, tmp_path):
        with live_service(tmp_path, max_workers=1, pool="per-call") as (
            service,
            base_url,
        ):
            body, _ = scrape(base_url)
            executor = service.cache_stats()["executor"]
        assert_valid_exposition(body)
        assert "repro_pool_workers 0" in body
        assert 'repro_pool_chunks_total{kind="dispatched"} 0' in body
        assert 'repro_pool_chunks_total{kind="replayed"} 0' in body
        assert "repro_pool_chunk_size 0" in body
        assert executor["pool"] == "per-call"
        assert "maxWorkers" not in executor
