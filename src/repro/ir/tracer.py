"""Pre-layout resource tracer (paper Sec. III-A).

Walks an instruction stream once and produces
:class:`~repro.counts.LogicalCounts`:

* **width** — high-water mark of simultaneously allocated qubits;
* **T count** — T/T† gates, plus rotations whose angle reduces to an odd
  multiple of pi/4 (those synthesize to a single T up to Cliffords);
* **rotation count/depth** — rotations with arbitrary angles; depth is the
  number of rotation *layers* under ASAP scheduling of the dependency
  graph (paper Sec. III-B.2), tracked with per-qubit layer counters;
* **CCZ / CCiX counts** — CCZ and Toffoli count as CCZ; CCiX and
  temporary-AND computes count as CCiX;
* **measurements** — explicit measurements, resets, and the measurement
  half of temporary-AND uncomputes.

Rotations by multiples of pi/2 are Clifford and cost nothing here.

The loop is the hottest code in the materialized path (multiplier
circuits reach tens of millions of instructions), so it binds opcodes as
plain-int locals (the old loop compared every stream int against ``Op``
enum members — most of the cost) and keeps the per-qubit rotation-layer
counters in a flat list indexed by qubit id (ids are free-list-recycled
by the builder, so the list stays at peak-width length) instead of a
dict. Measured on a 654k-instruction modexp stream (n=128, one exponent
bit): 2.03 s -> 0.157 s per trace (~13x), identical counts; the full
before/after table is recorded in
``benchmarks/test_counting_backend.py``.

The streaming counterpart that avoids materializing the stream entirely
is :class:`repro.ir.counting.CountingBuilder`.
"""

from __future__ import annotations

import math

from ..counts import LogicalCounts
from .circuit import Circuit, CircuitError
from .ops import Op

#: Angles closer than this to a pi/4 grid point are snapped onto it.
ANGLE_TOLERANCE = 1e-12

_HALF_PI = math.pi / 2
_QUARTER_PI = math.pi / 4


def _classify_angle(angle: float) -> str:
    """Classify a rotation angle: 'clifford', 't', or 'rotation'."""
    quarter_turns = angle / _HALF_PI
    nearest = round(quarter_turns)
    if abs(quarter_turns - nearest) <= ANGLE_TOLERANCE:
        return "clifford"
    eighth_turns = angle / _QUARTER_PI
    nearest = round(eighth_turns)
    if abs(eighth_turns - nearest) <= ANGLE_TOLERANCE:
        return "t"
    return "rotation"


def trace(circuit: Circuit) -> LogicalCounts:
    """Compute pre-layout logical counts of a circuit."""
    active = 0
    width = 0
    t_count = 0
    rotations = 0
    ccz = 0
    ccix = 0
    measurements = 0

    # Rotation-layer tracking: layer[q] = number of rotation layers qubit q
    # has passed through; multi-qubit gates synchronize the counters of the
    # qubits they touch. The overall rotation depth is the max layer index.
    # Flat list indexed by qubit id; entries survive release/re-allocation
    # of an id, matching dependency tracking through recycled ancillas.
    layer: list[int] = []
    rotation_depth = 0

    injected: list[LogicalCounts] = []
    estimates = circuit.estimates
    classify = _classify_angle

    op_alloc = int(Op.ALLOC)
    op_release = int(Op.RELEASE)
    op_t = int(Op.T)
    op_t_adj = int(Op.T_ADJ)
    op_rx = int(Op.RX)
    op_ry = int(Op.RY)
    op_rz = int(Op.RZ)
    op_ccz = int(Op.CCZ)
    op_ccx = int(Op.CCX)
    op_ccix = int(Op.CCIX)
    op_and = int(Op.AND)
    op_and_uncompute = int(Op.AND_UNCOMPUTE)
    op_measure = int(Op.MEASURE)
    op_reset = int(Op.RESET)
    op_cx = int(Op.CX)
    op_cz = int(Op.CZ)
    op_swap = int(Op.SWAP)
    op_account = int(Op.ACCOUNT)

    # Branches ordered by frequency in arithmetic workloads: CNOT-heavy
    # imprint/copy networks first, then the temporary-AND pairs, then
    # allocation traffic; everything else is rare.
    for op, q0, q1, q2, param in circuit.instructions:
        if op == op_cx or op == op_cz or op == op_swap:
            lq0 = layer[q0]
            lq1 = layer[q1]
            if lq0 != lq1:
                m = lq0 if lq0 > lq1 else lq1
                layer[q0] = m
                layer[q1] = m
        elif op == op_ccix or op == op_and:
            ccix += 1
            _sync3(layer, q0, q1, q2)
        elif op == op_and_uncompute:
            measurements += 1
            _sync3(layer, q0, q1, q2)
        elif op == op_alloc:
            active += 1
            if active > width:
                width = active
            if q0 >= len(layer):
                layer.extend([0] * (q0 + 1 - len(layer)))
        elif op == op_release:
            active -= 1
            if active < 0:
                raise CircuitError("RELEASE without matching ALLOC")
        elif op == op_t or op == op_t_adj:
            t_count += 1
        elif op == op_rx or op == op_ry or op == op_rz:
            kind = classify(param)
            if kind == "t":
                t_count += 1
            elif kind == "rotation":
                rotations += 1
                new_layer = layer[q0] + 1
                layer[q0] = new_layer
                if new_layer > rotation_depth:
                    rotation_depth = new_layer
        elif op == op_ccz or op == op_ccx:
            ccz += 1
            _sync3(layer, q0, q1, q2)
        elif op == op_measure or op == op_reset:
            measurements += 1
        elif op == op_account:
            injected.append(estimates[int(param)])
        # Remaining single-qubit Cliffords need no action.

    counts = LogicalCounts(
        num_qubits=max(width, 1),
        t_count=t_count,
        rotation_count=rotations,
        rotation_depth=rotation_depth,
        ccz_count=ccz,
        ccix_count=ccix,
        measurement_count=measurements,
    )
    return counts.account(injected)


def _sync3(layer: list[int], q0: int, q1: int, q2: int) -> None:
    """Synchronize rotation-layer counters across a three-qubit gate."""
    m = layer[q0]
    if layer[q1] > m:
        m = layer[q1]
    if layer[q2] > m:
        m = layer[q2]
    layer[q0] = m
    layer[q1] = m
    layer[q2] = m
