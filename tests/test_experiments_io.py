"""Tests for experiment result persistence (CSV/JSON round-trips)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.io import (
    CSV_FIELDS,
    read_rows_csv,
    write_rows_csv,
    write_rows_json,
)
from repro.experiments.runner import EstimateRow


@pytest.fixture
def sample_rows():
    return [
        EstimateRow(
            algorithm="windowed",
            bits=2048,
            profile="qubit_maj_ns_e4",
            physical_qubits=16_604_774,
            runtime_seconds=12.3,
            code_distance=13,
            logical_qubits=20_792,
            logical_depth=3_155_111,
            num_t_states=2_961_444,
            t_factory_copies=17,
            rqops=5.33e9,
        ),
        EstimateRow(
            algorithm="schoolbook",
            bits=32,
            profile="qubit_maj_ns_e6",
            physical_qubits=700_000,
            runtime_seconds=0.011,
            code_distance=9,
            logical_qubits=357,
            logical_depth=5_000,
            num_t_states=4_096,
            t_factory_copies=3,
            rqops=1.3e8,
        ),
    ]


class TestCSV:
    def test_round_trip(self, tmp_path, sample_rows):
        path = write_rows_csv(sample_rows, tmp_path / "rows.csv")
        assert read_rows_csv(path) == sample_rows

    def test_header_matches_fields(self, tmp_path, sample_rows):
        path = write_rows_csv(sample_rows, tmp_path / "rows.csv")
        header = path.read_text().splitlines()[0]
        assert header.split(",") == list(CSV_FIELDS)

    def test_creates_parent_directories(self, tmp_path, sample_rows):
        path = write_rows_csv(sample_rows, tmp_path / "deep" / "dir" / "rows.csv")
        assert path.exists()

    def test_missing_column_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("algorithm,bits\nwindowed,64\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_rows_csv(bad)

    def test_types_restored(self, tmp_path, sample_rows):
        path = write_rows_csv(sample_rows, tmp_path / "rows.csv")
        row = read_rows_csv(path)[0]
        assert isinstance(row.bits, int)
        assert isinstance(row.runtime_seconds, float)
        assert isinstance(row.physical_qubits, int)


class TestJSON:
    def test_json_structure(self, tmp_path, sample_rows):
        path = write_rows_json(sample_rows, tmp_path / "rows.json")
        data = json.loads(path.read_text())
        assert len(data) == 2
        assert data[0]["algorithm"] == "windowed"
        assert data[0]["physicalQubits"] == 16_604_774
        assert data[1]["codeDistance"] == 9


class TestRegenerateAll:
    def test_regenerates_reduced_artifacts(self, tmp_path, monkeypatch):
        """Patch the sweeps down to one point each; check all files land."""
        import repro.experiments.io as io_mod
        from repro.experiments import fig3, fig4

        monkeypatch.setattr(
            fig3, "FIG3_BIT_SIZES", (64,), raising=True
        )
        # claims.evaluate_claims needs the qubit_maj_ns_e4 rows present.
        monkeypatch.setattr(
            fig4, "FIG4_PROFILES", ("qubit_maj_ns_e4",), raising=True
        )
        written = io_mod.regenerate_all(tmp_path / "results")
        assert set(written) == {
            "fig3.csv", "fig3.json", "fig4.csv", "fig4.json", "claims.json"
        }
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0
        fig3_rows = read_rows_csv(written["fig3.csv"])
        assert {r.bits for r in fig3_rows} == {64}
        claims = json.loads(written["claims.json"].read_text())
        assert any(c["id"] == "karatsuba-most-qubits" for c in claims)
