"""Streaming counting backend: equality with the materialized path.

The contract of :class:`repro.ir.counting.CountingBuilder` is bit-for-bit
equality: folding emissions into running counters (with subcircuit
memoization and repeat folding) must produce exactly the
:class:`~repro.counts.LogicalCounts` that materializing the same emission
into a :class:`~repro.ir.circuit.Circuit` and tracing it produces. This
module asserts that contract over a catalog spanning every emitter in the
library — adders, lookahead, comparators, lookups, modular arithmetic,
the three paper multipliers, modular exponentiation — plus seeded random
circuits driven instruction-for-instruction through both backends, plus
hand-built programs that stress the memoization machinery itself
(nested/unmemoizable blocks, recording, adjoints, injected estimates).

It also covers the satellite fixes that ride along: the closed-form
``GateTally`` cross-checks now include the counting backend, and
``Circuit.logical_counts()`` no longer serves a stale cache when the
underlying stream grows after a trace.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.arithmetic import (
    KaratsubaMultiplier,
    SchoolbookMultiplier,
    WindowedMultiplier,
    add_into,
    add_lookahead,
    add_lookahead_counts,
    compare_less_than,
    compare_less_than_constant,
    compare_greater_equal_constant,
    increment,
    lookup,
    mod_add,
    mod_mul_inplace,
    modexp_circuit,
    modexp_counting_counts,
    modexp_logical_counts,
    multiplier_by_name,
    schoolbook_multiply_qq,
    subtract_into,
    unlookup_adjoint,
)
from repro.arithmetic.adders import add_constant_controlled
from repro.arithmetic.comparator import add_constant
from repro.arithmetic.lookup import lookup_recorded
from repro.arithmetic.modular import ModularMultiplier, mod_add_constant_controlled
from repro.counts import LogicalCounts
from repro.ir import Circuit, CircuitBuilder, CircuitError, CountingBuilder, Op
from repro.ir.counting import CountedCircuit
from repro.ir.random_circuits import (
    DEFAULT_WEIGHTS,
    REVERSIBLE_WEIGHTS,
    RandomCircuitGenerator,
)


def both_backends(emit):
    """Run one emitter through both backends; return (materialized, counted)."""
    materializing = CircuitBuilder("dual")
    emit(materializing)
    materialized = materializing.finish().logical_counts()
    counting = CountingBuilder("dual")
    emit(counting)
    return materialized, counting.logical_counts()


# -- the catalog -------------------------------------------------------------
#
# Each entry drives a Builder through one library emitter (or a
# hand-built stress program). Registers are measured or released exactly
# as the real constructions do; sizes are small so the whole catalog runs
# in a few seconds.


def emit_add_into(b):
    a = b.allocate_register(5)
    t = b.allocate_register(6)  # extra qubit keeps the carry
    add_into(b, a, t)
    subtract_into(b, a, t)


def emit_add_constant_controlled(b):
    control = b.allocate()
    target = b.allocate_register(6)
    scratch = b.allocate_register(6)
    for constant in (1, 0b101101, 0):
        add_constant_controlled(b, control, constant, target, scratch)


def emit_add_lookahead(b):
    a = b.allocate_register(8)
    reg = b.allocate_register(8)
    total = b.allocate_register(9)
    add_lookahead(b, a, reg, total)


def emit_comparators(b):
    x = b.allocate_register(6)
    y = b.allocate_register(6)
    out = b.allocate()
    compare_less_than(b, x, y, out)
    compare_less_than_constant(b, x, 13, out)
    compare_less_than_constant(b, x, 0, out)
    compare_less_than_constant(b, x, 1 << 6, out)
    compare_greater_equal_constant(b, x, 29, out)
    scratch = b.allocate_register(7)
    increment(b, x, scratch)
    add_constant(b, 21, x, scratch)


def emit_lookup(b):
    address = b.allocate_register(3)
    target = b.allocate_register(5)
    table = [3, 1, 4, 1, 5, 9, 2, 6]
    lookup(b, address, table, target)
    tape = lookup_recorded(b, address, table, target)
    unlookup_adjoint(b, tape)


def emit_mod_add(b):
    a = b.allocate_register(5)
    reg = b.allocate_register(5)
    mod_add(b, a, reg, 23)
    control = b.allocate()
    scratch = b.allocate_register(5)
    for constant in (7, 18, 1):
        mod_add_constant_controlled(b, control, constant, reg, 23, scratch)


def emit_modular_multiplier(b, window):
    mult = ModularMultiplier(5, 29, 17, window=window)
    x = b.allocate_register(5)
    acc = b.allocate_register(5)
    mult.emit(b, x, acc)
    control = b.allocate()
    mult.emit_controlled(b, control, x, acc)


def emit_mod_mul_inplace(b, window, controlled):
    x = b.allocate_register(5)
    b.x(x[0])
    control = b.allocate() if controlled else None
    mod_mul_inplace(b, x, 9, 23, window=window, control=control)


def emit_multiplier(b, algorithm, bits):
    mult = multiplier_by_name(algorithm, bits)
    x = b.allocate_register(bits)
    acc = b.allocate_register(2 * bits)
    for q in x:
        b.h(q)
    mult.emit(b, x, acc)
    for q in acc:
        b.measure(q)


def emit_multiply_qq(b):
    x = b.allocate_register(4)
    y = b.allocate_register(4)
    acc = b.allocate_register(8)
    schoolbook_multiply_qq(b, x, y, acc)


def emit_modexp(b, bits, window, exponent_bits):
    from repro.arithmetic import emit_modexp as emit

    emit(b, 2, (1 << bits) - 1, exponent_bits, window=window)


def emit_random(b, seed, reversible):
    weights = REVERSIBLE_WEIGHTS if reversible else DEFAULT_WEIGHTS
    generator = RandomCircuitGenerator(seed=seed, weights=dict(weights))
    generator.emit_onto(b, 600)


# Memoization stress: blocks the counting backend must refuse to cache
# (or cache correctly) while staying bit-for-bit with materialization.


def emit_unmemoizable_net_alloc(b):
    qs = b.allocate_register(2)
    kept = []

    def leaky(bb):
        kept.append(bb.allocate())  # net allocation: must never be cached

    for _ in range(3):
        b.subcircuit("leaky", leaky)
    b.ccx(kept[0], kept[1], kept[2])


def emit_rotations_around_blocks(b):
    qs = b.allocate_register(4)
    b.rz(0.31, qs[0])  # rotation before: replay must be suppressed

    def block(bb):
        t = bb.and_compute(qs[0], qs[1])
        bb.ccz(qs[1], qs[2], t)
        bb.and_uncompute(qs[0], qs[1], t)

    for _ in range(3):
        b.subcircuit("rot", block)
    b.cx(qs[0], qs[3])
    b.rz(0.62, qs[3])  # deepens the synced layer: depth 2, not 1


def emit_nested_subcircuits(b):
    qs = b.allocate_register(3)

    def inner(bb):
        t = bb.and_compute(qs[0], qs[1])
        bb.and_uncompute(qs[0], qs[1], t)

    def outer(bb):
        bb.repeat(2, inner)
        bb.subcircuit("inner", inner)
        bb.ccz(qs[0], qs[1], qs[2])

    b.repeat(3, outer)
    b.subcircuit("outer", outer)


def emit_estimates_in_blocks(b):
    qs = b.allocate_register(3)
    injected = LogicalCounts(num_qubits=11, t_count=13, measurement_count=2)

    def block(bb):
        bb.account_for_estimates(injected)
        bb.ccx(qs[0], qs[1], qs[2])

    for _ in range(4):
        b.subcircuit("acct", block)
    b.measure(qs[0])


def emit_recording_spans_block(b):
    qs = b.allocate_register(4)

    def block(bb):
        t = bb.and_compute(qs[0], qs[1])
        bb.and_uncompute(qs[0], qs[1], t)

    b.subcircuit("taped", block)  # cached here ...
    b.start_recording()
    b.cx(qs[0], qs[1])
    b.subcircuit("taped", block)  # ... but must re-emit inside a recording
    tape = b.stop_recording()
    b.emit_adjoint(tape)


def emit_freelist_permuting_blocks(b):
    """Replays skip allocator churn; the resulting id relabeling must be
    invisible to every count, including rotation depth through recycled
    ids (the soundness argument in repro.ir.counting's docstring)."""
    qs = b.allocate_register(2)

    def block(bb):
        reg = bb.allocate_register(3)
        t = bb.and_compute(reg[0], reg[1])
        bb.and_uncompute(reg[0], reg[1], t)
        bb.release_register(reg)  # FIFO release permutes the free list

    warm = b.allocate_register(4)  # prime the free list
    b.release_register(warm)
    for _ in range(4):
        b.subcircuit("perm", block)
    # Rotation/recycle traffic downstream of the replays: rotated ids
    # travel through the (now backend-divergent) free list and return.
    x = b.allocate_register(3)
    b.rz(0.3, x[0])
    b.rz(0.5, x[1])
    b.cx(x[0], x[2])
    b.release(x[0])
    b.release(x[1])
    y = b.allocate_register(2)  # recycles rotated ids
    b.rz(0.7, y[0])
    b.ccz(y[0], y[1], x[2])
    b.rz(0.9, y[1])


def emit_width_highwater(b):
    qs = b.allocate_register(2)

    def spike(bb):
        extra = bb.allocate_register(7)
        bb.ccx(extra[0], extra[1], extra[2])
        bb.release_register(extra)

    for _ in range(2):
        b.subcircuit("spike", spike)
    b.release(qs[1])  # replay from a lower live count: peak must not move
    b.subcircuit("spike", spike)


CATALOG = {
    "add-into": emit_add_into,
    "add-constant-controlled": emit_add_constant_controlled,
    "add-lookahead": emit_add_lookahead,
    "comparators": emit_comparators,
    "lookup": emit_lookup,
    "mod-add": emit_mod_add,
    "modular-multiplier-w0": partial(emit_modular_multiplier, window=0),
    "modular-multiplier-w2": partial(emit_modular_multiplier, window=2),
    "mod-mul-inplace-w0": partial(emit_mod_mul_inplace, window=0, controlled=False),
    "mod-mul-inplace-ctrl": partial(emit_mod_mul_inplace, window=2, controlled=True),
    "schoolbook-8": partial(emit_multiplier, algorithm="schoolbook", bits=8),
    "karatsuba-12": partial(emit_multiplier, algorithm="karatsuba", bits=12),
    "windowed-12": partial(emit_multiplier, algorithm="windowed", bits=12),
    "multiply-qq": emit_multiply_qq,
    "modexp-4": partial(emit_modexp, bits=4, window=None, exponent_bits=8),
    "modexp-5-w0": partial(emit_modexp, bits=5, window=0, exponent_bits=3),
    "modexp-5-w1": partial(emit_modexp, bits=5, window=1, exponent_bits=3),
    "fuzz-0": partial(emit_random, seed=0, reversible=False),
    "fuzz-1": partial(emit_random, seed=1, reversible=False),
    "fuzz-2": partial(emit_random, seed=2, reversible=False),
    "fuzz-3-reversible": partial(emit_random, seed=3, reversible=True),
    "fuzz-4-reversible": partial(emit_random, seed=4, reversible=True),
    "unmemoizable-net-alloc": emit_unmemoizable_net_alloc,
    "rotations-around-blocks": emit_rotations_around_blocks,
    "nested-subcircuits": emit_nested_subcircuits,
    "estimates-in-blocks": emit_estimates_in_blocks,
    "freelist-permuting-blocks": emit_freelist_permuting_blocks,
    "recording-spans-block": emit_recording_spans_block,
    "width-highwater": emit_width_highwater,
}


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_counting_equals_materialized(name):
    """The shared equality contract, circuit by circuit."""
    materialized, counted = both_backends(CATALOG[name])
    assert counted == materialized


# -- closed forms vs both backends ------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
def test_lookahead_closed_form_matches_both_backends(n):
    def emit(b):
        a = b.allocate_register(n)
        reg = b.allocate_register(n)
        total = b.allocate_register(n + 1)
        add_lookahead(b, a, reg, total)

    materialized, counted = both_backends(emit)
    formula = add_lookahead_counts(n).to_logical_counts(materialized.num_qubits)
    assert counted == materialized == formula


@pytest.mark.parametrize("algorithm", ["schoolbook", "karatsuba", "windowed"])
@pytest.mark.parametrize("bits", [2, 3, 5, 8, 16])
def test_multiplier_tallies_match_both_backends(algorithm, bits):
    mult = multiplier_by_name(algorithm, bits)
    formula = mult.backend_counts("formula")
    assert mult.backend_counts("materialize") == formula
    assert mult.backend_counts("counting") == formula


@pytest.mark.parametrize("window", [2, 3, 4])
@pytest.mark.parametrize("bits", [8, 12])
def test_windowed_tally_matches_both_backends_across_windows(bits, window):
    mult = WindowedMultiplier(bits, window=window)
    formula = mult.backend_counts("formula")
    assert mult.backend_counts("materialize") == formula
    assert mult.backend_counts("counting") == formula


@pytest.mark.parametrize("window", [None, 0, 1, 2])
@pytest.mark.parametrize("bits", [3, 4, 6])
def test_modexp_tally_matches_both_backends(bits, window):
    modulus = (1 << bits) - 1
    exponent_bits = 2 * bits
    formula = modexp_logical_counts(bits, exponent_bits, window=window)
    counted = modexp_counting_counts(2, modulus, exponent_bits, window=window)
    materialized = modexp_circuit(
        2, modulus, exponent_bits, window=window
    ).logical_counts()
    assert counted == materialized == formula


def test_modexp_counting_reaches_rsa_widths():
    """The streaming path agrees with the closed form far beyond what
    materialization can reach (the closed form is exact at any width)."""
    counts = modexp_counting_counts(2, (1 << 192) - 1, 12)
    assert counts == modexp_logical_counts(192, 12)


# -- memoization machinery ---------------------------------------------------


def test_subcircuit_hits_and_misses_are_counted():
    builder = CountingBuilder()
    qs = builder.allocate_register(3)

    def block(b):
        b.ccz(qs[0], qs[1], qs[2])

    for _ in range(5):
        builder.subcircuit("k", block)
    assert builder.subcircuit_misses == 1
    assert builder.subcircuit_hits == 4
    assert builder.logical_counts().ccz_count == 5


def test_repeat_folds_into_one_trace():
    builder = CountingBuilder()
    qs = builder.allocate_register(3)

    def block(b):
        target = b.and_compute(qs[0], qs[1])
        b.and_uncompute(qs[0], qs[1], target)

    builder.repeat(1000, block)
    counts = builder.logical_counts()
    assert counts.ccix_count == 1000
    assert counts.measurement_count == 1000
    # One real trace; the other 999 served from the cached summary.
    assert builder.subcircuit_hits == 999


def test_repeat_zero_and_negative():
    builder = CountingBuilder()
    qs = builder.allocate_register(3)

    def block(b):
        b.ccz(qs[0], qs[1], qs[2])

    builder.repeat(0, block)
    assert builder.logical_counts().ccz_count == 0
    with pytest.raises(CircuitError):
        builder.repeat(-1, block)


def test_counting_builder_validates_like_materializing():
    builder = CountingBuilder()
    q = builder.allocate()
    builder.release(q)
    with pytest.raises(CircuitError):
        builder.t(q)  # released qubit
    a, b_ = builder.allocate(), builder.allocate()
    with pytest.raises(CircuitError):
        builder.cx(a, a)  # duplicate operands
    with pytest.raises(CircuitError):
        builder.ccz(a, b_, b_)
    with pytest.raises(CircuitError):
        builder.stop_recording()  # no recording open


def test_counted_circuit_freezes_builder():
    builder = CountingBuilder("frozen")
    q = builder.allocate()
    builder.t(q)
    counted = builder.finish()
    assert isinstance(counted, CountedCircuit)
    assert counted.name == "frozen"
    assert counted.logical_counts().t_count == 1
    assert "frozen" in repr(counted)
    with pytest.raises(CircuitError):
        builder.t(q)
    with pytest.raises(CircuitError):
        builder.finish()


def test_counting_memory_stays_flat_under_repeats():
    """The tape buffer is only populated while a recording is open."""
    builder = CountingBuilder()
    qs = builder.allocate_register(3)

    def block(b):
        t = b.and_compute(qs[0], qs[1])
        b.and_uncompute(qs[0], qs[1], t)

    builder.repeat(10_000, block)
    assert builder._tape == []
    # Folded instructions: one traced block (alloc/AND/uncompute/release)
    # plus the initial register allocations; replays add nothing.
    assert builder._emitted < 20


# -- satellite: stale logical_counts cache -----------------------------------


class TestCircuitCountsCache:
    def test_counts_recomputed_when_stream_grows(self):
        stream = [(int(Op.ALLOC), 0, -1, -1, 0.0), (int(Op.T), 0, -1, -1, 0.0)]
        estimates: list[LogicalCounts] = []
        circuit = Circuit(stream, estimates, "growing")
        assert circuit.logical_counts().t_count == 1
        # A caller holding the stream appends after the first trace; the
        # cache must notice instead of serving the stale count.
        stream.append((int(Op.T), 0, -1, -1, 0.0))
        estimates.append(LogicalCounts(num_qubits=4, t_count=100))
        stream.append((int(Op.ACCOUNT), -1, -1, -1, 0.0))
        counts = circuit.logical_counts()
        assert counts.t_count == 102
        assert counts.num_qubits == 1 + 4

    def test_counts_still_cached_when_unchanged(self):
        builder = CircuitBuilder()
        q = builder.allocate()
        builder.t(q)
        circuit = builder.finish()
        assert circuit.logical_counts() is circuit.logical_counts()


# -- estimator integration ----------------------------------------------------


def test_resolve_counts_accepts_providers():
    from repro.estimator.stages import resolve_counts

    direct = LogicalCounts(num_qubits=3, t_count=5)
    assert resolve_counts(direct) == direct
    assert resolve_counts(lambda: direct) == direct

    mult = SchoolbookMultiplier(4)
    expected = mult.logical_counts()
    assert resolve_counts(mult) == expected
    assert resolve_counts(partial(mult.backend_counts, "counting")) == expected
    assert resolve_counts(mult.circuit()) == expected

    with pytest.raises(TypeError):
        resolve_counts(object())
    with pytest.raises(TypeError):
        resolve_counts(lambda: "not counts")


def test_backend_counts_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown count backend"):
        SchoolbookMultiplier(4).backend_counts("qir")
    with pytest.raises(ValueError, match="unknown count backend"):
        from repro.experiments.runner import multiplier_request

        multiplier_request("schoolbook", 4, "qubit_maj_ns_e4", budget=1e-3, backend="x")


def test_runner_backends_produce_identical_rows():
    from repro.experiments.runner import run_estimate_rows

    points = [
        ("schoolbook", 16, "qubit_maj_ns_e4"),
        ("windowed", 16, "qubit_maj_ns_e4"),
    ]
    baseline = run_estimate_rows(points, budget=1e-4)
    for backend in ("materialize", "counting"):
        rows = run_estimate_rows(points, budget=1e-4, backend=backend)
        assert [r.to_dict() for r in rows] == [r.to_dict() for r in baseline]


def test_karatsuba_counting_matches():
    mult = KaratsubaMultiplier(10)
    assert mult.counted_counts() == mult.traced_counts()
