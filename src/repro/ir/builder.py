"""Builder protocol and the shared circuit-authoring front end.

The library has two interchangeable authoring backends behind one emit
surface:

* :class:`~repro.ir.circuit.CircuitBuilder` **materializes** every gate
  into an instruction stream (``Circuit``), which can then be traced,
  validated, simulated, lowered, or serialized — the full-fidelity path.
* :class:`~repro.ir.counting.CountingBuilder` **streams**: each emission
  is folded directly into running :class:`~repro.counts.LogicalCounts`
  in O(live qubits) memory, never storing instructions — the scaling
  path that makes RSA-sized workloads (n >= 2048 bit modular
  exponentiation) tractable.

:class:`Builder` is the structural protocol both implement; circuit
constructors (the arithmetic library, QIR ingestion, user code) should
annotate against it so callers pick the backend. :class:`BuilderBase`
holds everything the two backends share — qubit allocation with a free
list, gate validation, tape recording, adjoint replay — and funnels every
emitted instruction through a single ``_put`` hook that subclasses bind
to "append to the stream" or "fold into the counters".

Two protocol methods exist purely for the streaming backend's benefit and
are exact no-ops (plain emission) on the materialized path:

* ``subcircuit(key, emit)`` marks a structurally-repeated block. The
  counting backend traces the block once per ``key`` and replays its
  cached contribution on later calls in O(1); callers guarantee that
  blocks sharing a key have identical count/width contributions (gate
  *parameters* such as classical constants may differ — Clifford-only
  variation is free).
* ``repeat(count, emit)`` emits a block ``count`` times; the counting
  backend traces once and replays ``count - 1`` times.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Protocol, runtime_checkable

from ..counts import LogicalCounts
from .ops import Op

#: Qubits are plain ints; the alias documents intent in signatures.
QubitHandle = int

Instruction = tuple[int, int, int, int, float]


class CircuitError(RuntimeError):
    """Raised for misuse of a builder or malformed circuits."""


@runtime_checkable
class Builder(Protocol):
    """Structural protocol of the circuit-authoring surface.

    Anything that provides these methods can drive the arithmetic
    constructors and every other circuit emitter in the library. The two
    implementations are :class:`~repro.ir.circuit.CircuitBuilder`
    (materializes an instruction stream) and
    :class:`~repro.ir.counting.CountingBuilder` (folds emissions into
    running logical counts in O(live qubits) memory).
    """

    name: str

    # -- qubit management --
    def allocate(self) -> QubitHandle: ...
    def allocate_register(self, size: int) -> list[QubitHandle]: ...
    def release(self, qubit: QubitHandle) -> None: ...
    def release_register(self, qubits: Iterable[QubitHandle]) -> None: ...
    @property
    def num_active_qubits(self) -> int: ...

    # -- Clifford gates --
    def x(self, q: QubitHandle) -> None: ...
    def y(self, q: QubitHandle) -> None: ...
    def z(self, q: QubitHandle) -> None: ...
    def h(self, q: QubitHandle) -> None: ...
    def s(self, q: QubitHandle) -> None: ...
    def s_adj(self, q: QubitHandle) -> None: ...
    def cx(self, control: QubitHandle, target: QubitHandle) -> None: ...
    def cz(self, a: QubitHandle, b: QubitHandle) -> None: ...
    def swap(self, a: QubitHandle, b: QubitHandle) -> None: ...

    # -- non-Clifford gates --
    def t(self, q: QubitHandle) -> None: ...
    def t_adj(self, q: QubitHandle) -> None: ...
    def rx(self, angle: float, q: QubitHandle) -> None: ...
    def ry(self, angle: float, q: QubitHandle) -> None: ...
    def rz(self, angle: float, q: QubitHandle) -> None: ...
    def ccz(self, a: QubitHandle, b: QubitHandle, c: QubitHandle) -> None: ...
    def ccx(
        self, control1: QubitHandle, control2: QubitHandle, target: QubitHandle
    ) -> None: ...
    def ccix(
        self, control1: QubitHandle, control2: QubitHandle, target: QubitHandle
    ) -> None: ...
    def and_compute(self, a: QubitHandle, b: QubitHandle) -> QubitHandle: ...
    def and_uncompute(
        self, a: QubitHandle, b: QubitHandle, target: QubitHandle
    ) -> None: ...

    # -- measurement and injection --
    def measure(self, q: QubitHandle) -> None: ...
    def reset(self, q: QubitHandle) -> None: ...
    def account_for_estimates(self, counts: LogicalCounts) -> None: ...

    # -- recording, adjoints, and structured repetition --
    def start_recording(self) -> None: ...
    def stop_recording(self) -> list[Instruction]: ...
    def emit_adjoint(self, tape: list[Instruction]) -> None: ...
    def subcircuit(
        self, key: Hashable, emit: Callable[["Builder"], None]
    ) -> None: ...
    def repeat(self, count: int, emit: Callable[["Builder"], None]) -> None: ...


class BuilderBase:
    """Shared authoring machinery of the two builder backends.

    Qubits are plain integer ids managed by an allocator with a free
    list, so releasing temporary ancillas and re-allocating them reuses
    ids, exactly like the qubit-tracking pass the tool runs over QIR
    (paper Sec. IV-B.1). Every emitted instruction funnels through
    :meth:`_put`; subclasses decide whether to store it
    (:class:`~repro.ir.circuit.CircuitBuilder`) or fold it into running
    counters (:class:`~repro.ir.counting.CountingBuilder`).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._free: list[int] = []
        self._next_id = 0
        self._active: set[int] = set()
        self._estimates: list[LogicalCounts] = []
        self._finished = False
        self._recording_starts: list[int] = []

    # -- subclass hooks ------------------------------------------------------

    def _put(self, instruction: Instruction) -> None:
        """Sink one emitted instruction (store it, or fold it)."""
        raise NotImplementedError

    def _mark(self) -> int:
        """Current position in the recording medium (for start_recording)."""
        raise NotImplementedError

    def _capture(self, start: int) -> list[Instruction]:
        """Instructions emitted since ``start`` (for stop_recording)."""
        raise NotImplementedError

    # -- qubit management --------------------------------------------------

    def allocate(self) -> QubitHandle:
        """Allocate one qubit in |0>, reusing released ids."""
        self._check_open()
        q = -1
        # The free list holds only inactive ids (emit_adjoint removes ids
        # it resurrects), but scan defensively: a still-active entry is
        # retained for later reuse, never silently discarded.
        retained: list[int] = []
        while self._free:
            candidate = self._free.pop()
            if candidate in self._active:
                retained.append(candidate)
                continue
            q = candidate
            break
        if retained:
            self._free.extend(reversed(retained))
        if q == -1:
            q = self._next_id
            self._next_id += 1
        self._active.add(q)
        self._put((Op.ALLOC, q, -1, -1, 0.0))
        return q

    def allocate_register(self, size: int) -> list[QubitHandle]:
        """Allocate ``size`` qubits (little-endian registers by convention)."""
        if size < 1:
            raise CircuitError(f"register size must be >= 1, got {size}")
        return [self.allocate() for _ in range(size)]

    def release(self, qubit: QubitHandle) -> None:
        """Release a qubit (caller guarantees it is back in |0>)."""
        self._require_active(qubit)
        self._active.discard(qubit)
        self._free.append(qubit)
        self._put((Op.RELEASE, qubit, -1, -1, 0.0))

    def release_register(self, qubits: Iterable[QubitHandle]) -> None:
        for q in qubits:
            self.release(q)

    @property
    def num_active_qubits(self) -> int:
        return len(self._active)

    # -- Clifford gates ----------------------------------------------------

    def x(self, q: QubitHandle) -> None:
        self._one(Op.X, q)

    def y(self, q: QubitHandle) -> None:
        self._one(Op.Y, q)

    def z(self, q: QubitHandle) -> None:
        self._one(Op.Z, q)

    def h(self, q: QubitHandle) -> None:
        self._one(Op.H, q)

    def s(self, q: QubitHandle) -> None:
        self._one(Op.S, q)

    def s_adj(self, q: QubitHandle) -> None:
        self._one(Op.S_ADJ, q)

    def cx(self, control: QubitHandle, target: QubitHandle) -> None:
        self._two(Op.CX, control, target)

    def cz(self, a: QubitHandle, b: QubitHandle) -> None:
        self._two(Op.CZ, a, b)

    def swap(self, a: QubitHandle, b: QubitHandle) -> None:
        self._two(Op.SWAP, a, b)

    # -- non-Clifford gates --------------------------------------------------

    def t(self, q: QubitHandle) -> None:
        self._one(Op.T, q)

    def t_adj(self, q: QubitHandle) -> None:
        self._one(Op.T_ADJ, q)

    def rx(self, angle: float, q: QubitHandle) -> None:
        self._rotation(Op.RX, angle, q)

    def ry(self, angle: float, q: QubitHandle) -> None:
        self._rotation(Op.RY, angle, q)

    def rz(self, angle: float, q: QubitHandle) -> None:
        self._rotation(Op.RZ, angle, q)

    def ccz(self, a: QubitHandle, b: QubitHandle, c: QubitHandle) -> None:
        self._three(Op.CCZ, a, b, c)

    def ccx(
        self, control1: QubitHandle, control2: QubitHandle, target: QubitHandle
    ) -> None:
        """Toffoli gate (counts as one CCZ plus Cliffords)."""
        self._three(Op.CCX, control1, control2, target)

    def ccix(
        self, control1: QubitHandle, control2: QubitHandle, target: QubitHandle
    ) -> None:
        self._three(Op.CCIX, control1, control2, target)

    def and_compute(self, a: QubitHandle, b: QubitHandle) -> QubitHandle:
        """Gidney temporary AND: allocate and return a target holding a AND b.

        Costs one CCiX (4 T states). Must be undone with
        :meth:`and_uncompute`, which costs only a measurement.
        """
        target = self.allocate()
        self._three(Op.AND, a, b, target)
        return target

    def and_uncompute(
        self, a: QubitHandle, b: QubitHandle, target: QubitHandle
    ) -> None:
        """Measurement-based uncompute of :meth:`and_compute`; releases target."""
        self._three(Op.AND_UNCOMPUTE, a, b, target)
        self._active.discard(target)
        self._free.append(target)
        self._put((Op.RELEASE, target, -1, -1, 0.0))

    # -- measurement and injection -------------------------------------------

    def measure(self, q: QubitHandle) -> None:
        self._one(Op.MEASURE, q)

    def reset(self, q: QubitHandle) -> None:
        self._one(Op.RESET, q)

    def account_for_estimates(self, counts: LogicalCounts) -> None:
        """Inject known logical estimates of an un-emitted subroutine.

        The subroutine's auxiliary qubits are assumed included in
        ``counts.num_qubits`` *in addition to* the qubits currently live
        (matching ``AccountForEstimates``, which receives the qubits it
        acts on plus an aux count).
        """
        self._check_open()
        index = len(self._estimates)
        self._estimates.append(counts)
        self._put((Op.ACCOUNT, -1, -1, -1, float(index)))

    # -- recording and adjoints ------------------------------------------------

    def start_recording(self) -> None:
        """Begin capturing emitted instructions (nestable).

        Use with :meth:`stop_recording` and :meth:`emit_adjoint` to undo a
        reversible subroutine mechanically (Bennett-style cleanup). Only
        reversible instructions may be recorded.
        """
        self._check_open()
        self._recording_starts.append(self._mark())

    def stop_recording(self) -> list[Instruction]:
        """End the innermost recording; return the captured tape."""
        self._check_open()
        if not self._recording_starts:
            raise CircuitError("stop_recording without start_recording")
        start = self._recording_starts.pop()
        return self._capture(start)

    #: Opcode inversion map for adjoint replay. AND flips to its
    #: measurement-based uncompute (and vice versa), which is what makes
    #: Bennett cleanup free of T states in this cost model.
    _ADJOINT = {
        Op.ALLOC: Op.RELEASE,
        Op.RELEASE: Op.ALLOC,
        Op.X: Op.X,
        Op.Y: Op.Y,
        Op.Z: Op.Z,
        Op.H: Op.H,
        Op.S: Op.S_ADJ,
        Op.S_ADJ: Op.S,
        Op.CX: Op.CX,
        Op.CZ: Op.CZ,
        Op.SWAP: Op.SWAP,
        Op.T: Op.T_ADJ,
        Op.T_ADJ: Op.T,
        Op.RX: Op.RX,  # angle negated at replay
        Op.RY: Op.RY,
        Op.RZ: Op.RZ,
        Op.CCZ: Op.CCZ,
        Op.CCX: Op.CCX,
        Op.CCIX: Op.CCIX,
        Op.AND: Op.AND_UNCOMPUTE,
        Op.AND_UNCOMPUTE: Op.AND,
    }

    def emit_adjoint(self, tape: list[Instruction]) -> None:
        """Replay a recorded tape in reverse with each instruction inverted.

        Qubits the tape allocated are released and vice versa; ids are
        re-activated directly (not via the free list) so the adjoint acts
        on exactly the qubits the forward pass used. Irreversible
        instructions (measure, reset, account) cannot be undone and raise.
        """
        self._check_open()
        for op, q0, q1, q2, param in reversed(tape):
            inverse = self._ADJOINT.get(Op(op))
            if inverse is None:
                raise CircuitError(
                    f"cannot take the adjoint of irreversible instruction "
                    f"{Op(op).name}"
                )
            if inverse == Op.ALLOC:
                # Undoing a RELEASE: bring the same id back into service.
                # Remove it from the free list (it is active again) so the
                # list never accumulates stale duplicates across repeated
                # record/adjoint cycles and allocate() never has to skip.
                if q0 in self._active:
                    raise CircuitError(
                        f"adjoint re-allocates qubit {q0}, which is still active"
                    )
                if q0 in self._free:
                    self._free.remove(q0)
                self._active.add(q0)
                self._put((Op.ALLOC, q0, -1, -1, 0.0))
            elif inverse == Op.RELEASE:
                self.release(q0)
            elif inverse in (Op.RX, Op.RY, Op.RZ):
                self._rotation(inverse, -param, q0)
            elif q2 != -1:
                self._three(inverse, q0, q1, q2)
            elif q1 != -1:
                self._two(inverse, q0, q1)
            else:
                self._one(inverse, q0)

    # -- structured repetition -------------------------------------------------

    def subcircuit(
        self, key: Hashable, emit: Callable[[Builder], None]
    ) -> None:
        """Emit a structurally-repeated block, identified by ``key``.

        On the materialized path this simply calls ``emit(self)``. The
        counting backend overrides it to trace the block once per key and
        replay the cached counts/width contribution on later calls.

        Callers guarantee: two blocks emitted under the same key make
        identical contributions to logical counts (gate tallies, peak
        live-qubit delta, rotation structure) and leave the live-qubit
        set unchanged (scratch is allocated and released inside the
        block). Classical parameters may differ between calls as long as
        the difference is Clifford-only (e.g. which CNOTs imprint a
        constant) — that is what makes one key cover all 2n modular
        multiplications of a modular exponentiation. A replay on the
        counting backend skips the block's allocator churn; see
        :mod:`repro.ir.counting` for why the resulting qubit-id
        relabeling cannot change any count.
        """
        self._check_open()
        emit(self)

    def repeat(self, count: int, emit: Callable[[Builder], None]) -> None:
        """Emit ``emit(self)`` exactly ``count`` times (``count >= 0``).

        The counting backend overrides this to trace the block once and
        replay its contribution ``count - 1`` times in O(1).
        """
        self._check_open()
        if count < 0:
            raise CircuitError(f"repeat count must be >= 0, got {count}")
        for _ in range(count):
            emit(self)

    # -- helpers ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self._finished:
            raise CircuitError("builder already finished")

    def _require_active(self, *qubits: int) -> None:
        for q in qubits:
            if q not in self._active:
                raise CircuitError(f"qubit {q} is not allocated")

    def _one(self, op: int, q: int) -> None:
        self._check_open()
        self._require_active(q)
        self._put((op, q, -1, -1, 0.0))

    def _two(self, op: int, a: int, b: int) -> None:
        self._check_open()
        self._require_active(a, b)
        if a == b:
            raise CircuitError(f"two-qubit gate needs distinct qubits, got {a} twice")
        self._put((op, a, b, -1, 0.0))

    def _three(self, op: int, a: int, b: int, c: int) -> None:
        self._check_open()
        self._require_active(a, b, c)
        if len({a, b, c}) != 3:
            raise CircuitError(f"three-qubit gate needs distinct qubits, got {(a, b, c)}")
        self._put((op, a, b, c, 0.0))

    def _rotation(self, op: int, angle: float, q: int) -> None:
        self._check_open()
        self._require_active(q)
        self._put((op, q, -1, -1, float(angle)))
