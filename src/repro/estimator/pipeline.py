"""The end-to-end estimation algorithm (paper Sec. III-A through III-E).

Steps, in the paper's order:

A. *Pre-layout estimation* — obtain :class:`LogicalCounts` (done by the
   tracer or given directly by the user).
B. *Algorithmic logical estimation* — planar-ISA layout: post-layout
   logical qubits, algorithmic depth, T-state count
   (:mod:`repro.layout`).
C. *Error correction* — pick the code distance from the logical error
   budget, derive cycle time and physical qubits per logical qubit.
D. *T factories* — design the cheapest factory meeting the distillation
   budget, decide copies/runs, apply T-factory constraints. Because
   slowing the program to fit factories changes the cycle count, which
   changes the required per-cycle error rate and possibly the distance,
   steps C and D iterate to a fixed point.
E. *rQOPS* — combine logical qubits with the logical clock rate.

The stages themselves live in :mod:`repro.estimator.stages`;
:func:`estimate` is the single-point composition. Sweeps should use
:func:`repro.estimator.batch.estimate_batch`, which runs the same stages
with cross-point memoization and optional process fan-out.
"""

from __future__ import annotations

from ..budget import ErrorBudget
from ..distillation import TFactoryDesigner
from ..qec import QECScheme
from ..qubits import PhysicalQubitParams
from ..synthesis import RotationSynthesis
from .constraints import Constraints
from .result import PhysicalResourceEstimates
from .stages import (
    ASSUMPTIONS as _ASSUMPTIONS,  # noqa: F401  (compat re-export)
    DEFAULT_DESIGNER as _DEFAULT_DESIGNER,  # noqa: F401  (compat re-export)
    EstimationError,
    build_context,
    resolve_counts as _resolve_counts,
    run_pipeline,
)

__all__ = ["EstimationError", "estimate"]


def estimate(
    program: object,
    qubit: PhysicalQubitParams,
    *,
    scheme: QECScheme | None = None,
    budget: ErrorBudget | float = 1e-3,
    constraints: Constraints | None = None,
    synthesis: RotationSynthesis | None = None,
    factory_designer: TFactoryDesigner | None = None,
) -> PhysicalResourceEstimates:
    """Estimate physical resources for running ``program`` fault-tolerantly.

    Parameters
    ----------
    program:
        :class:`LogicalCounts` (the "known logical estimates" input path)
        or an object with a ``logical_counts()`` method (e.g. a traced
        circuit from :mod:`repro.ir`).
    qubit:
        Physical qubit parameters (see :mod:`repro.qubits`).
    scheme:
        QEC scheme; defaults to the tool's choice for the technology
        (surface code for gate-based, floquet code for Majorana).
    budget:
        Total error budget, or an :class:`ErrorBudget` for explicit
        partitioning.
    constraints:
        Optional T-factory and resource constraints.
    synthesis:
        Rotation synthesis cost model override.
    factory_designer:
        T-factory search configuration override.

    Raises
    ------
    EstimationError
        If the physical error rate is above the QEC threshold, no factory
        design meets the budget, or a resource constraint is violated.
    """
    ctx = build_context(
        program,
        qubit,
        scheme=scheme,
        budget=budget,
        constraints=constraints,
        synthesis=synthesis,
        factory_designer=factory_designer,
    )
    return run_pipeline(ctx)
