"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

COUNTS = {
    "num_qubits": 50,
    "t_count": 100_000,
    "ccz_count": 50_000,
    "measurement_count": 1_000,
}


@pytest.fixture
def counts_file(tmp_path):
    path = tmp_path / "counts.json"
    path.write_text(json.dumps(COUNTS))
    return path


@pytest.fixture
def qir_file(tmp_path):
    path = tmp_path / "program.ll"
    path.write_text(
        """
define void @main() {
entry:
  %q0 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__t__body(%Qubit* %q0)
  %r0 = call %Result* @__quantum__qis__m__body(%Qubit* %q0)
  ret void
}
"""
    )
    return path


class TestCountsInput:
    def test_summary_output(self, counts_file, capsys):
        assert main(["--counts", str(counts_file)]) == 0
        out = capsys.readouterr().out
        assert "Physical resource estimates" in out
        assert "Code distance" in out

    def test_json_output(self, counts_file, capsys):
        assert main(["--counts", str(counts_file), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["physicalCounts"]["physicalQubits"] > 0
        assert report["preLayoutLogicalResources"]["t_count"] == 100_000

    def test_profile_and_budget_flags(self, counts_file, capsys):
        assert main([
            "--counts", str(counts_file),
            "--profile", "qubit_maj_ns_e4",
            "--budget", "1e-4",
            "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["logicalQubit"]["qecScheme"]["name"] == "floquet_code"

    def test_explicit_scheme_flag(self, counts_file, capsys):
        assert main([
            "--counts", str(counts_file),
            "--profile", "qubit_maj_ns_e4",
            "--qec-scheme", "surface_code",
            "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["logicalQubit"]["qecScheme"]["name"] == "surface_code"

    def test_constraints_flags(self, counts_file, capsys):
        assert main([
            "--counts", str(counts_file),
            "--max-t-factories", "2",
            "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tFactory"]["copies"] <= 2

    def test_assess_flag(self, counts_file, capsys):
        assert main(["--counts", str(counts_file), "--assess"]) == 0
        out = capsys.readouterr().out
        assert "Implementation level" in out

    def test_assess_json(self, counts_file, capsys):
        assert main(["--counts", str(counts_file), "--assess", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["advantageAssessment"]["levelName"] in (
            "foundational", "resilient", "scale"
        )


class TestQIRInput:
    def test_qir_estimation(self, qir_file, capsys):
        assert main(["--qir", str(qir_file), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["preLayoutLogicalResources"]["t_count"] == 1

    def test_bad_qir_exits_with_message(self, tmp_path, capsys):
        bad = tmp_path / "bad.ll"
        bad.write_text("this is not QIR")
        with pytest.raises(SystemExit, match="QIR parse failed"):
            main(["--qir", str(bad)])


class TestBatchSubcommand:
    @pytest.fixture
    def multiplier_grid(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "algorithms": ["schoolbook", "windowed"],
                    "bits": [32],
                    "profiles": ["qubit_maj_ns_e4"],
                    "budgets": [1e-4],
                }
            )
        )
        return path

    @pytest.fixture
    def counts_grid(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "counts": COUNTS,
                    "profiles": ["qubit_maj_ns_e4", "qubit_gate_ns_e4"],
                    "budgets": [1e-3],
                    "depth_factors": [1.0, 4.0],
                }
            )
        )
        return path

    def test_multiplier_grid_table(self, multiplier_grid, capsys):
        assert main(["batch", str(multiplier_grid)]) == 0
        out = capsys.readouterr().out
        assert "schoolbook/32" in out and "windowed/32" in out
        assert "qubit_maj_ns_e4" in out

    def test_counts_grid_json(self, counts_grid, capsys):
        assert main(["batch", str(counts_grid), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4  # 2 profiles x 2 depth factors
        assert all(r["ok"] for r in records)
        assert records[0]["result"]["physicalQubits"] > 0
        # A stretched point runs longer than the unstretched one.
        assert records[1]["result"]["runtime_s"] > records[0]["result"]["runtime_s"]

    def test_backend_flag_matches_default(self, multiplier_grid, capsys):
        assert main(["batch", str(multiplier_grid), "--json"]) == 0
        formula = json.loads(capsys.readouterr().out)
        assert main(
            ["batch", str(multiplier_grid), "--json", "--backend", "counting"]
        ) == 0
        counting = json.loads(capsys.readouterr().out)
        assert counting == formula

    def test_workers_flag_matches_serial(self, multiplier_grid, capsys):
        assert main(["batch", str(multiplier_grid), "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["batch", str(multiplier_grid), "--json", "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel

    def test_infeasible_points_reported_with_exit_code(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "counts": COUNTS,
                    "profiles": ["qubit_maj_ns_e4"],
                    "max_physical_qubits": 100,  # no point can fit
                }
            )
        )
        assert main(["batch", str(grid)]) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.out
        assert "infeasible" in captured.err

    def test_scheme_incompatible_with_profile_is_a_spec_error(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "counts": COUNTS,
                    "profiles": ["qubit_gate_ns_e4"],
                    "qec_scheme": "floquet_code",
                }
            )
        )
        with pytest.raises(SystemExit, match="invalid grid spec"):
            main(["batch", str(grid)])

    def test_rejects_grid_with_both_program_kinds(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "counts": COUNTS,
                    "algorithms": ["schoolbook"],
                    "bits": [32],
                    "profiles": ["qubit_maj_ns_e4"],
                }
            )
        )
        with pytest.raises(SystemExit, match="either"):
            main(["batch", str(grid)])

    def test_rejects_missing_profiles(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"counts": COUNTS}))
        with pytest.raises(SystemExit, match="profiles"):
            main(["batch", str(grid)])

    def test_rejects_unreadable_spec(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read grid spec"):
            main(["batch", str(tmp_path / "nope.json")])

    def test_rejects_non_numeric_budgets(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "counts": COUNTS,
                    "profiles": ["qubit_maj_ns_e4"],
                    "budgets": ["abc"],
                }
            )
        )
        with pytest.raises(SystemExit, match="invalid 'budgets'"):
            main(["batch", str(grid)])

    def test_rejects_empty_depth_factors(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "counts": COUNTS,
                    "profiles": ["qubit_maj_ns_e4"],
                    "depth_factors": [],
                }
            )
        )
        with pytest.raises(SystemExit, match="non-empty list"):
            main(["batch", str(grid)])

    def test_scenario_profile_flows_through_batch(self, tmp_path, capsys):
        scenario = tmp_path / "hw.json"
        scenario.write_text(
            json.dumps(
                {
                    "schema": "repro-scenario-v1",
                    "qubitParams": [
                        {
                            "name": "cli_batch_qubit",
                            "instruction_set": "gate_based",
                            "one_qubit_measurement_time_ns": 80.0,
                            "one_qubit_measurement_error_rate": 5e-4,
                            "one_qubit_gate_time_ns": 40.0,
                            "one_qubit_gate_error_rate": 5e-4,
                            "two_qubit_gate_time_ns": 40.0,
                            "two_qubit_gate_error_rate": 5e-4,
                            "t_gate_time_ns": 40.0,
                            "t_gate_error_rate": 5e-4,
                        }
                    ],
                }
            )
        )
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps({"counts": COUNTS, "profiles": ["cli_batch_qubit"]})
        )
        assert main(
            ["batch", str(grid), "--scenario", str(scenario), "--json"]
        ) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["ok"] and records[0]["profile"] == "cli_batch_qubit"

    def test_store_flag_warm_run_hits(self, multiplier_grid, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["batch", str(multiplier_grid), "--store", str(store), "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert all(not r["fromStore"] for r in cold)
        assert main(["batch", str(multiplier_grid), "--store", str(store), "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert all(r["fromStore"] for r in warm)
        assert [r["result"] for r in warm] == [r["result"] for r in cold]

    def test_rejects_unknown_algorithm(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "algorithms": ["bogus"],
                    "bits": [32],
                    "profiles": ["qubit_maj_ns_e4"],
                }
            )
        )
        with pytest.raises(SystemExit, match="unknown multiplier"):
            main(["batch", str(grid)])


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["--counts", str(tmp_path / "nope.json")])

    def test_invalid_counts(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"num_qubits": 0}))
        with pytest.raises(SystemExit, match="invalid logical counts"):
            main(["--counts", str(path)])

    def test_infeasible_budget_returns_error_code(self, counts_file, capsys):
        # A 0.9999 budget is valid input; push infeasibility via scheme:
        # gate_ns_e3 error rate 1e-3 is above a custom threshold? Use the
        # max-t-factories path: depth factor < 1 is invalid.
        code = main(["--counts", str(counts_file), "--depth-factor", "0.5"])
        assert code == 1
        assert "logical_depth_factor" in capsys.readouterr().err

    def test_unknown_profile_rejected(self, counts_file):
        with pytest.raises(SystemExit):
            main(["--counts", str(counts_file), "--profile", "bogus"])


class TestBenchSubcommand:
    def test_trace_table_output(self, capsys):
        assert main(["bench", "trace", "--algorithm", "windowed", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "build" in out and "trace" in out and "estimate" in out
        assert "physical qubits" in out

    def test_trace_json_stages_and_backends_agree(self, capsys):
        records = {}
        for backend in ("formula", "materialize", "counting"):
            argv = [
                "bench", "trace", "--algorithm", "schoolbook",
                "--bits", "24", "--backend", backend, "--json",
            ]
            assert main(argv) == 0
            records[backend] = json.loads(capsys.readouterr().out)
        counts = {b: r["counts"] for b, r in records.items()}
        assert counts["counting"] == counts["materialize"] == counts["formula"]
        for record in records.values():
            stages = record["stages"]
            assert stages["total_s"] >= stages["estimate_s"] >= 0
            assert record["result"]["physicalQubits"] > 0

    def test_trace_modexp_counting(self, capsys):
        argv = [
            "bench", "trace", "--algorithm", "modexp", "--bits", "16",
            "--exponent-bits", "4", "--backend", "counting", "--json",
        ]
        assert main(argv) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["counts"]["ccix_count"] > 0

    def test_rejects_bad_bits(self):
        with pytest.raises(SystemExit):
            main(["bench", "trace", "--bits", "0"])
        with pytest.raises(SystemExit):
            main(["bench", "trace", "--algorithm", "modexp", "--bits", "1"])
