"""Ripple-carry adders built from temporary ANDs (Gidney, arXiv:1709.06648).

The core primitive is :func:`add_into`: in-place addition ``b += a`` of an
``n``-qubit register into an ``m``-qubit register (``n <= m``), modulo
``2^m``. Carries are computed into temporary-AND ancillas on the way up and
uncomputed by measurement on the way down, so an addition costs ``m - 1``
CCiX gates and ``m - 1`` measurements and zero CCZ/T — the reason this
construction "halves the cost of quantum addition".

Carry recurrence, with ``c_0 = 0``::

    c_{i+1} = MAJ(a_i, b_i, c_i)                     (i < n, the overlap)
    c_{i+1} = b_i AND c_i                            (n <= i, pure carry ripple)

computed in-place by conjugating a single AND with CNOTs. The closed-form
cost functions next to each emitter are verified equal to traced circuits
by the test suite.
"""

from __future__ import annotations

from typing import Sequence

from ..ir import Builder
from .tally import GateTally


def _check_lengths(a_len: int, b_len: int) -> None:
    if a_len > b_len:
        raise ValueError(
            f"addend ({a_len} qubits) longer than target ({b_len} qubits); "
            "swap the operands or extend the target"
        )


def add_into(builder: Builder, a: Sequence[int], b: Sequence[int]) -> None:
    """In-place ``b += a (mod 2^len(b))`` for ``len(a) <= len(b)``.

    To keep a carry-out, pass ``b`` extended with a fresh zero qubit.
    """
    n, m = len(a), len(b)
    _check_lengths(n, m)
    if n == 0:
        return
    if m == 1:
        builder.cx(a[0], b[0])
        return

    # Forward pass: compute carries c_1..c_{m-1} into AND ancillas.
    carries: list[int] = []
    for i in range(m - 1):
        if i < n:
            if i == 0:
                t = builder.and_compute(a[0], b[0])
            else:
                c = carries[i - 1]
                builder.cx(c, a[i])
                builder.cx(c, b[i])
                t = builder.and_compute(a[i], b[i])
                builder.cx(c, t)
        else:
            if not carries:
                break  # n == 0 handled above; defensive
            t = builder.and_compute(carries[i - 1], b[i])
        carries.append(t)

    # Top bit.
    if carries:
        builder.cx(carries[-1], b[m - 1])
    if n == m:
        builder.cx(a[m - 1], b[m - 1])

    # Backward pass: uncompute carries, write sum bits.
    for i in range(len(carries) - 1, -1, -1):
        t = carries[i]
        if i >= n:
            c = carries[i - 1]
            builder.and_uncompute(c, b[i], t)
            builder.cx(c, b[i])
        elif i == 0:
            builder.and_uncompute(a[0], b[0], t)
            builder.cx(a[0], b[0])
        else:
            c = carries[i - 1]
            builder.cx(c, t)
            builder.and_uncompute(a[i], b[i], t)
            builder.cx(c, a[i])
            builder.cx(a[i], b[i])


def add_into_counts(a_len: int, b_len: int) -> GateTally:
    """Gate tally of :func:`add_into` (mirrors the emitter exactly)."""
    _check_lengths(a_len, b_len)
    if a_len == 0 or b_len == 1:
        return GateTally()
    ands = b_len - 1
    return GateTally(ccix=ands, measurements=ands)


def add_into_ancillas(a_len: int, b_len: int) -> int:
    """Peak number of live carry ancillas during :func:`add_into`."""
    _check_lengths(a_len, b_len)
    if a_len == 0 or b_len == 1:
        return 0
    return b_len - 1


def subtract_into(builder: Builder, a: Sequence[int], b: Sequence[int]) -> None:
    """In-place ``b -= a (mod 2^len(b))``.

    Uses the complement identity ``b - a = NOT(NOT(b) + a)``, so the cost
    equals one addition plus ``2 len(b)`` X gates.
    """
    for q in b:
        builder.x(q)
    add_into(builder, a, b)
    for q in b:
        builder.x(q)


def subtract_into_counts(a_len: int, b_len: int) -> GateTally:
    """Gate tally of :func:`subtract_into`."""
    return add_into_counts(a_len, b_len)


def add_constant_controlled(
    builder: Builder,
    control: int,
    constant: int,
    b: Sequence[int],
    scratch: Sequence[int],
) -> None:
    """In-place ``b += control * constant (mod 2^len(b))``.

    ``scratch`` is a caller-provided zeroed register with at least
    ``constant.bit_length()`` qubits; it is returned to zero, so one
    scratch register can serve a whole loop of controlled additions. The
    classical constant is imprinted onto the scratch register conditioned
    on the control (CNOTs only — multiplying a *classical* bit pattern by
    a control bit needs no AND), then added quantumly and unimprinted.
    """
    if constant < 0:
        raise ValueError(f"constant must be non-negative, got {constant}")
    width = constant.bit_length()
    if width > len(b):
        constant &= (1 << len(b)) - 1  # addition is mod 2^len(b) anyway
        width = constant.bit_length()
    if constant == 0:
        return
    if width > len(scratch):
        raise ValueError(
            f"scratch register ({len(scratch)} qubits) too small for constant "
            f"of {width} bits"
        )
    used = scratch[:width]
    for position, qubit in enumerate(used):
        if (constant >> position) & 1:
            builder.cx(control, qubit)
    add_into(builder, used, b)
    for position, qubit in enumerate(used):
        if (constant >> position) & 1:
            builder.cx(control, qubit)


def add_constant_controlled_counts(constant: int, b_len: int) -> GateTally:
    """Gate tally of :func:`add_constant_controlled`."""
    if constant < 0:
        raise ValueError(f"constant must be non-negative, got {constant}")
    constant &= (1 << b_len) - 1
    if constant == 0:
        return GateTally()
    return add_into_counts(constant.bit_length(), b_len)
