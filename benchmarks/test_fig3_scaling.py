"""Figure 3 reproduction: multipliers vs input size on qubit_maj_ns_e4.

Regenerates both panels of the paper's Figure 3 (physical qubits and
total runtime for 32..16384-bit inputs, floquet code, budget 1e-4),
asserts the paper's shape claims on the full sweep, and benchmarks the
underlying computations. Every test uses the benchmark fixture so the
whole file runs under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from conftest import series
from repro.arithmetic import multiplier_by_name
from repro.experiments import run_estimate_row
from repro.experiments.runner import format_table


@pytest.mark.parametrize("algorithm", ["schoolbook", "karatsuba", "windowed"])
def test_fig3_point_estimation(benchmark, algorithm, fig3_rows):
    """Benchmark one full Fig. 3 point (counts + estimate) per algorithm."""
    row = benchmark(run_estimate_row, algorithm, 2048, "qubit_maj_ns_e4")
    sweep_row = next(
        r for r in fig3_rows if r.algorithm == algorithm and r.bits == 2048
    )
    assert row == sweep_row  # estimation is deterministic

    mine = series(fig3_rows, algorithm)
    assert [r.bits for r in mine] == [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
    qubits = [r.physical_qubits for r in mine]
    runtimes = [r.runtime_seconds for r in mine]
    assert qubits == sorted(qubits), "physical-qubit panel must grow with size"
    assert runtimes == sorted(runtimes), "runtime panel must grow with size"


@pytest.mark.parametrize("algorithm", ["schoolbook", "karatsuba", "windowed"])
def test_fig3_count_generation(benchmark, algorithm):
    """Benchmark the closed-form logical-count generation at full 16384 bits."""
    counts = benchmark(lambda: multiplier_by_name(algorithm, 16384).logical_counts())
    assert counts.ccix_count > 0
    assert counts.t_count == 0  # AND-based circuits consume no explicit T


def test_fig3_code_distance_band(benchmark, fig3_rows):
    """Paper: distance climbs from 9 (32 bits) to 17 (16384 bits)."""
    distances = benchmark(
        lambda: {r.bits: r.code_distance for r in series(fig3_rows, "windowed")}
    )
    assert distances[32] == 9
    assert distances[16384] == 17
    ordered = [distances[b] for b in sorted(distances)]
    assert ordered == sorted(ordered)
    # "At 2048 bits a distance-15 code is used" — schoolbook/Karatsuba hit
    # 15 exactly; windowed (fewer cycles) gets away with 13 in our model.
    at_2048 = {r.algorithm: r.code_distance for r in fig3_rows if r.bits == 2048}
    assert at_2048["schoolbook"] == 15
    assert at_2048["karatsuba"] == 15
    assert at_2048["windowed"] in (13, 15)


def test_fig3_karatsuba_needs_most_qubits(benchmark, fig3_rows):
    """Paper: 'Karatsuba requires more physical qubits than the other two'."""
    def check():
        for bits in (512, 1024, 2048, 4096, 8192, 16384):
            at = {r.algorithm: r for r in fig3_rows if r.bits == bits}
            assert at["karatsuba"].physical_qubits > at["schoolbook"].physical_qubits
            assert at["karatsuba"].physical_qubits > at["windowed"].physical_qubits
        return True

    assert benchmark(check)


def test_fig3_karatsuba_runtime_crossover(benchmark, fig3_rows):
    """Paper: Karatsuba first beats schoolbook's runtime around 4096 bits."""
    def crossover_bits():
        school = {r.bits: r.runtime_seconds for r in series(fig3_rows, "schoolbook")}
        kara = {r.bits: r.runtime_seconds for r in series(fig3_rows, "karatsuba")}
        return [bits for bits in sorted(school) if kara[bits] < school[bits]]

    wins = benchmark(crossover_bits)
    # No advantage at small sizes; first win lands in the paper's
    # multi-thousand-bit range.
    assert all(bits >= 4096 for bits in wins)
    assert wins, "Karatsuba should eventually win on runtime"


def test_fig3_windowed_always_fastest(benchmark, fig3_rows):
    """The windowed lookup beats plain schoolbook at every size."""
    def check():
        school = {r.bits: r.runtime_seconds for r in series(fig3_rows, "schoolbook")}
        return all(
            r.runtime_seconds < school[r.bits]
            for r in series(fig3_rows, "windowed")
        )

    assert benchmark(check)


def test_fig3_emit_table(benchmark, fig3_rows, capsys):
    """Regenerate and print the figure's data table (both panels)."""
    table = benchmark(format_table, fig3_rows)
    with capsys.disabled():
        print("\n=== Figure 3 data (qubit_maj_ns_e4, floquet, budget 1e-4) ===")
        print(table)
