"""Rotation-synthesis cost model (paper Sec. III-B.3/4).

Arbitrary single-qubit rotations are not transversal in the QEC codes the
tool targets; each must be synthesized into a Clifford+T sequence. The
number of T gates needed per rotation depends on the per-rotation accuracy,
which in turn depends on how many rotations share the synthesis error
budget. The tool uses the repeat-until-success synthesis bound

    t_per_rotation = ceil(A * log2(R / eps_syn) + B),   A = 0.53, B = 5.3

(Beverland et al., arXiv:2211.07629, citing Kliuchnikov et al.,
arXiv:2203.10064), where ``R`` is the total number of rotations and
``eps_syn`` the rotation-synthesis error budget, so each rotation is
synthesized to accuracy ``eps_syn / R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default coefficients of the synthesis cost formula.
SYNTHESIS_A: float = 0.53
SYNTHESIS_B: float = 5.3


@dataclass(frozen=True)
class RotationSynthesis:
    """Clifford+T synthesis cost model ``ceil(a*log2(R/eps) + b)``.

    Custom values of ``a``/``b`` model alternative synthesis protocols
    (e.g. fallback or mixed-diagonal synthesis with different constants).
    """

    a: float = SYNTHESIS_A
    b: float = SYNTHESIS_B

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ValueError("synthesis coefficients must be non-negative")

    def to_dict(self) -> dict[str, float]:
        return {"a": self.a, "b": self.b}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "RotationSynthesis":
        unknown = set(data) - {"a", "b"}
        if unknown:
            raise ValueError(f"unknown synthesis fields: {sorted(unknown)}")
        return cls(a=data.get("a", SYNTHESIS_A), b=data.get("b", SYNTHESIS_B))

    def t_states_per_rotation(self, num_rotations: int, synthesis_budget: float) -> int:
        """T states required for each of ``num_rotations`` rotations.

        Returns 0 when the program has no rotations. Raises if rotations
        exist but no synthesis budget was allocated, since the rotations
        would then be impossible to implement within budget.
        """
        if num_rotations < 0:
            raise ValueError(f"num_rotations must be >= 0, got {num_rotations}")
        if num_rotations == 0:
            return 0
        if synthesis_budget <= 0.0:
            raise ValueError(
                "program contains arbitrary rotations but the rotation-synthesis "
                "error budget is zero; allocate a rotations budget"
            )
        per_rotation_accuracy = num_rotations / synthesis_budget
        count = math.ceil(self.a * math.log2(per_rotation_accuracy) + self.b)
        # The bound can dip below 1 for absurdly loose budgets; at least one
        # T gate is always needed to implement a non-Clifford rotation.
        return max(count, 1)
