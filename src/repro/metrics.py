"""Thread-safe metrics for the estimation service (``GET /v1/metrics``).

The service already counts everything an operator needs — engine memo
and kernel counters (:meth:`~repro.estimator.batch.EstimateCache.stats`),
store namespaces and cache hit rates
(:meth:`~repro.estimator.store.ResultStore.stats`), queue depth, jobs by
state — but scattered across objects and, for the store, behind a disk
walk. This module gathers them behind one :class:`MetricsRegistry` that
renders both Prometheus text exposition and JSON.

Design constraints, in order:

* **No races.** The HTTP server is a ``ThreadingHTTPServer``: every
  handler thread increments counters while another scrapes. All mutable
  state lives behind a single lock, and a scrape snapshots everything
  under that lock — readers can never observe a torn update (a counter
  bumped but its histogram not, half a provider's gauges).
* **No walks per scrape.** Expensive gauges (anything touching disk)
  come from registered *providers* refreshed on a TTL: a scrape inside
  the TTL serves the cached samples and does zero filesystem work.
  Cheap in-memory providers use ``ttl=0`` and refresh every scrape.
* **Bounded cardinality.** Request labels use :func:`normalize_route`
  (``/v1/results/{hash}``, not one series per hash).

Counter and histogram updates are O(1) dict operations; the scrape path
is the only place provider callables run.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "normalize_route",
]

#: Histogram bucket upper bounds (seconds) for request latency. Spans
#: sub-millisecond cache hits to multi-second cold estimates; +Inf is
#: implicit per the Prometheus exposition format.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.25,
    1.0,
    2.5,
    10.0,
)

#: The service's fixed routes, kept verbatim as label values.
_EXACT_ROUTES = frozenset(
    {
        "/v1/estimate",
        "/v1/sweeps",
        "/v1/optimize",
        "/v1/registry",
        "/v1/healthz",
        "/v1/metrics",
    }
)

LabelKey = tuple[tuple[str, str], ...]
#: A provider yields (metric name, labels or None, numeric value).
Sample = tuple[str, "dict[str, str] | None", float]


def normalize_route(path: str) -> str:
    """Collapse a request path to a bounded-cardinality route label.

    Hash- and id-carrying paths map to templates
    (``/v1/results/{hash}``), unknown paths to ``"other"`` — a scanner
    probing random URLs must not mint one time series per probe.
    """
    path = path.split("?", 1)[0].split("#", 1)[0].rstrip("/") or "/"
    if path in _EXACT_ROUTES:
        return path
    if path.startswith("/v1/results/"):
        return "/v1/results/{hash}"
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{id}"
    if path.startswith("/v1/sweeps/") and path.endswith("/result"):
        return "/v1/sweeps/{id}/result"
    if path.startswith("/v1/optimize/") and path.endswith("/result"):
        return "/v1/optimize/{id}/result"
    return "other"


def _label_key(labels: dict[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Provider:
    """A gauge source refreshed at most once per ``ttl`` seconds."""

    def __init__(self, fn: Callable[[], Iterable[Sample]], ttl: float) -> None:
        self.fn = fn
        self.ttl = ttl
        self.samples: list[tuple[str, LabelKey, float]] = []
        self.taken: float | None = None  # monotonic time of last refresh

    def refresh_due(self, now: float) -> bool:
        return self.taken is None or self.ttl <= 0 or now - self.taken >= self.ttl

    def refresh(self, now: float) -> None:
        try:
            raw = list(self.fn())
        except Exception:
            # A broken provider must not take /v1/metrics down with it;
            # its samples go stale until it recovers.
            return
        self.samples = [
            (name, _label_key(labels), float(value)) for name, labels, value in raw
        ]
        self.taken = now


class MetricsRegistry:
    """Counters, histograms, and TTL-cached gauges behind one lock.

    Handler threads call :meth:`inc` / :meth:`observe`; the scrape path
    calls :meth:`render_prometheus` or :meth:`render_json`, which build
    a consistent snapshot under the same lock. Metric metadata (type and
    help text) is declared once via :meth:`describe` so both renderings
    agree on it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, dict[str, Any]]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        self._providers: list[_Provider] = []
        self._meta: dict[str, tuple[str, str]] = {}  # name -> (type, help)

    # -- declaration -------------------------------------------------------

    def describe(self, name: str, kind: str, help_text: str) -> None:
        """Register a metric's Prometheus type and help line."""
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric type {kind!r}")
        with self._lock:
            self._meta[name] = (kind, help_text)

    def register_provider(
        self, fn: Callable[[], Iterable[Sample]], *, ttl: float = 0.0
    ) -> None:
        """Add a gauge source; ``ttl`` seconds between refreshes.

        ``fn`` returns ``(name, labels, value)`` samples and runs only
        on the scrape path — with ``ttl > 0`` at most once per TTL
        window, so expensive sources (disk walks) are never paid per
        scrape. ``ttl=0`` refreshes every scrape (for cheap in-memory
        counters). A provider that raises keeps serving its previous
        samples rather than failing the scrape.
        """
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        with self._lock:
            self._providers.append(_Provider(fn, ttl))

    # -- updates (hot path) ------------------------------------------------

    def inc(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        amount: float = 1.0,
    ) -> None:
        """Add ``amount`` to a counter series (creating it at 0)."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def observe(
        self,
        name: str,
        value: float,
        labels: dict[str, str] | None = None,
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Record one histogram observation.

        Bucket bounds are fixed at a histogram's first observation;
        later ``buckets`` arguments for the same name are ignored (a
        histogram's series must stay mutually consistent).
        """
        key = _label_key(labels)
        with self._lock:
            bounds = self._buckets.setdefault(name, tuple(buckets))
            series = self._histograms.setdefault(name, {})
            state = series.get(key)
            if state is None:
                state = {"counts": [0] * len(bounds), "sum": 0.0, "count": 0}
                series[key] = state
            for index, bound in enumerate(bounds):
                if value <= bound:
                    state["counts"][index] += 1
            state["sum"] += value
            state["count"] += 1

    # -- scrape path -------------------------------------------------------

    def counter_value(
        self, name: str, labels: dict[str, str] | None = None
    ) -> float:
        """One counter series' current value (0 if never incremented)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0.0)

    def snapshot(self) -> dict[str, Any]:
        """A consistent copy of every metric, provider gauges included.

        Everything — provider refresh decisions, the copies themselves —
        happens under the registry lock, so concurrent increments can
        never produce a torn scrape.
        """
        now = time.monotonic()
        with self._lock:
            for provider in self._providers:
                if provider.refresh_due(now):
                    provider.refresh(now)
            gauges: dict[str, dict[LabelKey, float]] = {}
            for provider in self._providers:
                for name, key, value in provider.samples:
                    gauges.setdefault(name, {})[key] = value
            return {
                "counters": {
                    name: dict(series) for name, series in self._counters.items()
                },
                "gauges": gauges,
                "histograms": {
                    name: {
                        key: {
                            "counts": list(state["counts"]),
                            "sum": state["sum"],
                            "count": state["count"],
                        }
                        for key, state in series.items()
                    }
                    for name, series in self._histograms.items()
                },
                "buckets": dict(self._buckets),
                "meta": dict(self._meta),
            }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        snap = self.snapshot()
        meta = snap["meta"]
        lines: list[str] = []

        def emit_header(name: str, default_kind: str) -> None:
            kind, help_text = meta.get(name, (default_kind, ""))
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for name in sorted(snap["counters"]):
            emit_header(name, "counter")
            for key in sorted(snap["counters"][name]):
                value = snap["counters"][name][key]
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name in sorted(snap["gauges"]):
            emit_header(name, "gauge")
            for key in sorted(snap["gauges"][name]):
                value = snap["gauges"][name][key]
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name in sorted(snap["histograms"]):
            emit_header(name, "histogram")
            bounds = snap["buckets"][name]
            for key in sorted(snap["histograms"][name]):
                state = snap["histograms"][name][key]
                # counts[] is already cumulative (observe() increments
                # every bucket the value fits), as the format requires.
                for bound, count in zip(bounds, state["counts"]):
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(key, (('le', _format_value(bound)),))}"
                        f" {count}"
                    )
                lines.append(
                    f"{name}_bucket{_render_labels(key, (('le', '+Inf'),))}"
                    f" {state['count']}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(key)} {_format_value(state['sum'])}"
                )
                lines.append(f"{name}_count{_render_labels(key)} {state['count']}")
        return "\n".join(lines) + "\n"

    def render_json(self) -> dict[str, Any]:
        """The same snapshot as a JSON-friendly document."""
        snap = self.snapshot()
        meta = snap["meta"]

        def labels_dict(key: LabelKey) -> dict[str, str]:
            return {name: value for name, value in key}

        document: dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for name in sorted(snap["counters"]):
            for key in sorted(snap["counters"][name]):
                document["counters"].append(
                    {
                        "name": name,
                        "labels": labels_dict(key),
                        "value": snap["counters"][name][key],
                        "help": meta.get(name, ("counter", ""))[1],
                    }
                )
        for name in sorted(snap["gauges"]):
            for key in sorted(snap["gauges"][name]):
                document["gauges"].append(
                    {
                        "name": name,
                        "labels": labels_dict(key),
                        "value": snap["gauges"][name][key],
                        "help": meta.get(name, ("gauge", ""))[1],
                    }
                )
        for name in sorted(snap["histograms"]):
            bounds = snap["buckets"][name]
            for key in sorted(snap["histograms"][name]):
                state = snap["histograms"][name][key]
                document["histograms"].append(
                    {
                        "name": name,
                        "labels": labels_dict(key),
                        "buckets": {
                            _format_value(bound): count
                            for bound, count in zip(bounds, state["counts"])
                        },
                        "sum": state["sum"],
                        "count": state["count"],
                        "help": meta.get(name, ("histogram", ""))[1],
                    }
                )
        return document
