"""Fault-injection harness for the crash-safety tests.

Drives real ``repro work`` *subprocesses* against a shared store with
deterministic kill-points armed through the ``REPRO_QUEUE_FAULT``
environment variable (see :mod:`repro.estimator.queue`): a clause like
``"evaluated:1"`` makes the worker call ``os._exit`` right after
evaluating chunk 1, before persisting it — the closest stdlib
approximation of SIGKILL, exercising exactly the recovery paths a power
loss or OOM kill would.

The helpers here are plain functions (no pytest dependency) so both the
test suite and ad-hoc chaos scripts can use them.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

from repro.estimator.queue import FAULT_ENV, FAULT_EXIT_CODE, FAULT_STAGES

#: The repo's ``src`` directory — workers must import the same code
#: under test regardless of how pytest was launched.
REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def worker_command(
    store_dir: Path | str,
    *,
    job_id: str | None = None,
    ttl: float | None = None,
    poll: float | None = None,
    deadline: float | None = None,
    json_report: bool = False,
) -> list[str]:
    """The ``repro work`` invocation for one worker subprocess."""
    command = [sys.executable, "-m", "repro", "work", str(store_dir), "--quiet"]
    if job_id is not None:
        command += ["--job", job_id]
    if ttl is not None:
        command += ["--ttl", str(ttl)]
    if poll is not None:
        command += ["--poll", str(poll)]
    if deadline is not None:
        command += ["--deadline", str(deadline)]
    if json_report:
        command += ["--json"]
    return command


def worker_env(fault: str | None = None) -> dict[str, str]:
    """A subprocess environment with the kill-point clause armed (or not)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if fault:
        env[FAULT_ENV] = fault
    else:
        env.pop(FAULT_ENV, None)
    return env


def run_worker_process(
    store_dir: Path | str,
    *,
    job_id: str | None = None,
    fault: str | None = None,
    ttl: float | None = None,
    poll: float | None = None,
    deadline: float | None = None,
    timeout: float = 120.0,
    json_report: bool = False,
) -> subprocess.CompletedProcess:
    """Run one worker subprocess to completion (or to its kill-point).

    Returns the completed process; a worker that hit an armed kill-point
    exits with :data:`FAULT_EXIT_CODE`, a worker that drained (or found
    nothing claimable) exits 0.
    """
    return subprocess.run(
        worker_command(
            store_dir,
            job_id=job_id,
            ttl=ttl,
            poll=poll,
            deadline=deadline,
            json_report=json_report,
        ),
        env=worker_env(fault),
        timeout=timeout,
        capture_output=True,
        text=True,
    )


def spawn_worker_process(
    store_dir: Path | str,
    *,
    job_id: str | None = None,
    fault: str | None = None,
    ttl: float | None = None,
    poll: float | None = None,
    deadline: float | None = None,
    json_report: bool = False,
) -> subprocess.Popen:
    """Start a worker subprocess without waiting (concurrent-worker tests)."""
    return subprocess.Popen(
        worker_command(
            store_dir,
            job_id=job_id,
            ttl=ttl,
            poll=poll,
            deadline=deadline,
            json_report=json_report,
        ),
        env=worker_env(fault),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def random_fault(rng: random.Random, num_chunks: int) -> str:
    """One random kill-point clause: a stage, optionally pinned to a chunk."""
    stage = rng.choice(FAULT_STAGES)
    if rng.random() < 0.5:
        return stage  # die at the first chunk reaching this stage
    return f"{stage}:{rng.randrange(num_chunks)}"


def was_fault_kill(process: subprocess.CompletedProcess) -> bool:
    return process.returncode == FAULT_EXIT_CODE
