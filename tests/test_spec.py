"""Tests for the declarative spec layer (EstimateSpec / ProgramRef / run_specs)."""

from __future__ import annotations

import json

import pytest

from repro import (
    Constraints,
    ErrorBudget,
    EstimateCache,
    EstimateSpec,
    LogicalCounts,
    ProgramRef,
    ResultStore,
    RotationSynthesis,
    estimate,
    estimate_batch,
    qubit_params,
    run_specs,
)
from repro.estimator.spec import SPEC_SCHEMA
from repro.qec import FLOQUET_CODE
from repro.registry import Registry

COUNTS = LogicalCounts(num_qubits=50, t_count=100_000, measurement_count=1_000)


def roundtrip(spec: EstimateSpec) -> EstimateSpec:
    return EstimateSpec.from_dict(json.loads(json.dumps(spec.to_dict())))


class TestProgramRef:
    def test_multiplier_roundtrip(self):
        ref = ProgramRef(kind="multiplier", algorithm="windowed", bits=2048)
        assert ProgramRef.from_dict(ref.to_dict()) == ref

    def test_modexp_roundtrip_with_options(self):
        ref = ProgramRef(kind="modexp", bits=64, exponent_bits=16, window=3)
        assert ProgramRef.from_dict(ref.to_dict()) == ref

    def test_modexp_defaults_omitted_from_dict(self):
        ref = ProgramRef(kind="modexp", bits=64)
        assert ref.to_dict() == {"modexp": {"bits": 64}}

    def test_unknown_multiplier_algorithm_rejected_eagerly(self):
        # Regression: counts resolve lazily in batch workers, so an
        # unvalidated algorithm name used to crash the whole sweep (and
        # 500 the service) instead of failing the one spec.
        with pytest.raises(ValueError, match="unknown multiplier 'nope'"):
            ProgramRef(kind="multiplier", algorithm="nope", bits=8)

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ProgramRef(kind="bogus", bits=8)
        with pytest.raises(ValueError, match="algorithm"):
            ProgramRef(kind="multiplier", bits=8)
        with pytest.raises(ValueError, match="unknown multiplier program fields"):
            ProgramRef(kind="multiplier", algorithm="windowed", bits=8, window=2)
        with pytest.raises(ValueError, match="bits"):
            ProgramRef(kind="multiplier", algorithm="windowed", bits=0)
        with pytest.raises(ValueError, match="exactly one"):
            ProgramRef(kind="modexp", name="rsa_1024")
        with pytest.raises(ValueError, match="no body fields"):
            ProgramRef(name="rsa_1024", bits=8)

    def test_unknown_kind_error_lists_kinds_with_fields(self):
        # The open catalog's lookup error mirrors the QEC scheme style:
        # every registered kind appears with its required fields.
        with pytest.raises(ValueError) as excinfo:
            ProgramRef(kind="bogus", bits=8)
        message = str(excinfo.value)
        for fragment in (
            "unknown program kind 'bogus'",
            "multiplier (algorithm, bits)",
            "modexp (bits[, exponentBits, window])",
            "qir (file or text)",
            "formula (counts[, variables])",
            "random (operations[, seed, minQubits])",
        ):
            assert fragment in message

    def test_resolution_matches_direct_counts(self):
        ref = ProgramRef(kind="multiplier", algorithm="schoolbook", bits=16)
        program, key = ref.resolve("formula")
        from repro.arithmetic import multiplier_by_name

        assert program() == multiplier_by_name("schoolbook", 16).logical_counts()
        # The memo key is the program's content identity plus the backend
        # — the same address the persistent counts cache uses.
        assert key == ("program", ref.program.content_hash(), "formula")

    def test_resolution_is_identity_stable(self):
        ref = ProgramRef(kind="multiplier", algorithm="schoolbook", bits=16)
        assert ref.resolve("formula")[0] is ref.resolve("formula")[0]

    def test_modexp_backends_agree(self):
        ref = ProgramRef(kind="modexp", bits=8, exponent_bits=3)
        formula, _ = ref.resolve("formula")
        counting, _ = ref.resolve("counting")
        assert formula() == counting()


class TestEstimateSpecSerialization:
    def test_minimal_counts_spec(self):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        assert roundtrip(spec) == spec

    def test_fully_loaded_spec(self):
        spec = EstimateSpec(
            program=ProgramRef(kind="multiplier", algorithm="karatsuba", bits=256),
            qubit=qubit_params("qubit_maj_ns_e4", t_gate_error_rate=0.01),
            scheme=FLOQUET_CODE.customized(max_code_distance=31),
            budget=ErrorBudget.explicit(logical=1e-4, t_states=1e-4, rotations=1e-4),
            constraints=Constraints(max_t_factories=4, logical_depth_factor=2.0),
            synthesis=RotationSynthesis(a=0.6, b=6.0),
            backend="counting",
            label="loaded",
        )
        assert roundtrip(spec) == spec

    def test_named_scheme_spec(self):
        spec = EstimateSpec(
            program=COUNTS, qubit="qubit_maj_ns_e4", scheme="floquet_code"
        )
        assert roundtrip(spec) == spec

    def test_budget_accepts_bare_number(self):
        spec = EstimateSpec.from_dict(
            {
                "program": {"counts": COUNTS.to_dict()},
                "qubit": {"profile": "qubit_gate_ns_e3"},
                "budget": 1e-4,
            }
        )
        assert spec.budget == ErrorBudget(total=1e-4)

    def test_rejects_unknown_fields_and_shapes(self):
        base = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3").to_dict()
        bad = dict(base, bogus=1)
        with pytest.raises(ValueError, match="bogus"):
            EstimateSpec.from_dict(bad)
        with pytest.raises(ValueError, match="program"):
            EstimateSpec.from_dict({"qubit": {"profile": "qubit_gate_ns_e3"}})
        with pytest.raises(ValueError, match="qubit"):
            EstimateSpec.from_dict({"program": {"counts": COUNTS.to_dict()}})
        with pytest.raises(ValueError, match="scheme"):
            EstimateSpec.from_dict(
                dict(base, scheme={"name": "x", "params": {}})
            )

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", backend="x")


class TestContentHash:
    def test_stable_across_processes(self):
        # A golden hash: this must only ever change together with
        # SPEC_SCHEMA (changing it silently would orphan every stored
        # result).
        assert SPEC_SCHEMA == "repro-spec-v1"
        spec = EstimateSpec(
            program=ProgramRef(kind="multiplier", algorithm="windowed", bits=2048),
            qubit="qubit_maj_ns_e4",
            budget=1e-4,
        )
        assert spec.content_hash() == (
            "d1fa1cdd4ebe6d48dfb2f06e9f820b2ab0e5e7f31ba7322188fc6eea833f6591"
        )
        # The resolved form addresses the persistent store; pin it too.
        assert spec.content_hash(Registry()) == (
            "9849b53911667583adc8c27e9004d37332e758c22647e054e42577ae913e891a"
        )

    def test_label_and_backend_excluded(self):
        a = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", label="a")
        b = EstimateSpec(
            program=COUNTS, qubit="qubit_gate_ns_e3", backend="counting", label="b"
        )
        assert a.content_hash() == b.content_hash()

    def test_default_normalization(self):
        explicit = EstimateSpec(
            program=COUNTS,
            qubit="qubit_gate_ns_e3",
            budget=ErrorBudget(total=1e-3),
            constraints=Constraints(),
            synthesis=RotationSynthesis(),
        )
        defaulted = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        assert explicit.content_hash() == defaulted.content_hash()

    def test_different_specs_differ(self):
        a = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        b = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e4")
        c = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", budget=1e-4)
        assert len({a.content_hash(), b.content_hash(), c.content_hash()}) == 3

    def test_named_and_inline_profile_hash_differently(self):
        # The syntactic hash keeps names as names: a client without a
        # registry cannot know what a name resolves to.
        named = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        inline = EstimateSpec(program=COUNTS, qubit=qubit_params("qubit_gate_ns_e3"))
        assert named.content_hash() != inline.content_hash()

    def test_resolved_hash_inlines_names(self):
        # The resolved hash (what keys the store) covers the actual model
        # parameters, so a name and its inline definition coincide...
        registry = Registry()
        named = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        inline = EstimateSpec(program=COUNTS, qubit=qubit_params("qubit_gate_ns_e3"))
        assert named.content_hash(registry) == inline.content_hash(registry)
        # ...and redefining the name changes the address.
        registry.register_qubit(
            qubit_params("qubit_gate_ns_e3").customized(
                name="qubit_gate_ns_e3", t_gate_error_rate=5e-4
            ),
            replace=True,
        )
        assert named.content_hash(registry) != inline.content_hash(registry)

    def test_resolved_hash_unknown_name_raises(self):
        spec = EstimateSpec(program=COUNTS, qubit="bogus")
        with pytest.raises(KeyError, match="bogus"):
            spec.content_hash(Registry())

    def test_spec_is_hashable(self):
        a = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        b = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        assert len({a, b}) == 1


class TestToRequest:
    def test_matches_direct_estimate(self):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_maj_ns_e4", budget=1e-4)
        outcome = estimate_batch([spec.to_request()])[0]
        direct = estimate(COUNTS, qubit_params("qubit_maj_ns_e4"), budget=1e-4)
        assert outcome.unwrap() == direct

    def test_unknown_profile_raises_keyerror(self):
        spec = EstimateSpec(program=COUNTS, qubit="bogus")
        with pytest.raises(KeyError, match="bogus"):
            spec.to_request()

    def test_custom_registry_resolves(self):
        registry = Registry()
        registry.register_qubit(
            qubit_params("qubit_gate_ns_e3").customized(name="custom_q")
        )
        spec = EstimateSpec(program=COUNTS, qubit="custom_q")
        request = spec.to_request(registry)
        assert request.qubit.name == "custom_q"


class TestRunSpecs:
    def test_matches_estimate_and_orders(self):
        specs = [
            EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", label="gate"),
            EstimateSpec(program=COUNTS, qubit="qubit_maj_ns_e4", label="maj"),
        ]
        outcomes = run_specs(specs)
        assert [o.spec.label for o in outcomes] == ["gate", "maj"]
        for outcome, profile in zip(outcomes, ("qubit_gate_ns_e3", "qubit_maj_ns_e4")):
            assert outcome.ok
            assert outcome.result == estimate(COUNTS, qubit_params(profile))

    def test_invalid_spec_becomes_error_outcome(self):
        outcomes = run_specs(
            [
                EstimateSpec(program=COUNTS, qubit="bogus"),
                EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3"),
            ]
        )
        assert not outcomes[0].ok and "bogus" in outcomes[0].error
        assert outcomes[1].ok

    def test_infeasible_spec_becomes_error_outcome(self):
        spec = EstimateSpec(
            program=COUNTS,
            qubit="qubit_gate_ns_e3",
            constraints=Constraints(max_physical_qubits=100),
        )
        outcome = run_specs([spec])[0]
        assert not outcome.ok
        assert "exceed" in outcome.error

    def test_duplicate_hashes_computed_once(self, tmp_path):
        cache = EstimateCache()
        store = ResultStore(tmp_path)
        specs = [
            EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", label="a"),
            EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", label="b"),
        ]
        outcomes = run_specs(specs, store=store, cache=cache)
        assert outcomes[0].result == outcomes[1].result
        assert outcomes[0].spec_hash == outcomes[1].spec_hash
        assert len(store) == 1
        # Duplicate resolved within the batch, not via a second store read.
        assert cache.stats()["store"] == {"hits": 0, "misses": 1}

    def test_store_round_trip_and_hit_accounting(self, tmp_path):
        cache = EstimateCache()
        store = ResultStore(tmp_path)
        spec = EstimateSpec(program=COUNTS, qubit="qubit_maj_ns_e4", budget=1e-4)
        cold = run_specs([spec], store=store, cache=cache)[0]
        assert cold.ok and not cold.from_store
        warm = run_specs([spec], store=store, cache=cache)[0]
        assert warm.ok and warm.from_store
        assert warm.result == cold.result
        assert cache.stats()["store"] == {"hits": 1, "misses": 1}

    def test_redefined_profile_never_served_stale_result(self, tmp_path):
        # Regression: the store is keyed on the *resolved* spec. Loading
        # a scenario that redefines a profile name must recompute, not
        # serve the result estimated for the old hardware definition.
        store = ResultStore(tmp_path)
        registry = Registry()
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        old = run_specs([spec], registry=registry, store=store)[0]
        assert old.ok and not old.from_store

        registry.load_scenario(
            {
                "qubitParams": [
                    dict(
                        qubit_params("qubit_gate_ns_e3").to_dict(),
                        one_qubit_gate_error_rate=1e-4,
                        two_qubit_gate_error_rate=1e-4,
                        one_qubit_measurement_error_rate=1e-4,
                    )
                ]
            }
        )
        new = run_specs([spec], registry=registry, store=store)[0]
        assert new.ok and not new.from_store
        assert new.spec_hash != old.spec_hash
        assert new.result != old.result  # better hardware, smaller machine

    def test_store_serves_across_instances(self, tmp_path):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e4")
        run_specs([spec], store=ResultStore(tmp_path))
        warm = run_specs([spec], store=ResultStore(tmp_path))[0]
        assert warm.from_store
        assert warm.result == estimate(COUNTS, qubit_params("qubit_gate_ns_e4"))

    def test_failures_not_stored(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = EstimateSpec(
            program=COUNTS,
            qubit="qubit_gate_ns_e3",
            constraints=Constraints(max_physical_qubits=100),
        )
        outcome = run_specs([spec], store=store)[0]
        assert not outcome.ok
        assert len(store) == 0

    def test_parallel_matches_serial(self):
        specs = [
            EstimateSpec(
                program=ProgramRef(
                    kind="multiplier", algorithm=algorithm, bits=64
                ),
                qubit="qubit_maj_ns_e4",
                budget=1e-4,
            )
            for algorithm in ("schoolbook", "karatsuba", "windowed")
        ]
        serial = run_specs(specs, max_workers=1)
        parallel = run_specs(specs, max_workers=2)
        assert [o.result for o in serial] == [o.result for o in parallel]
