"""Benchmarks of the batch/sweep engine against per-point estimation.

The acceptance check for the batch refactor: a cached batch sweep over a
repeated-profile grid must beat the equivalent sequence of per-point
``estimate()`` calls, because the T-factory design (the dominant warm-path
cost) and the traced counts are shared across points instead of recomputed
per point. Results must stay bit-for-bit identical either way.
"""

from __future__ import annotations

import time

from repro import Constraints, estimate, qubit_params
from repro.arithmetic import multiplier_by_name
from repro.estimator.batch import EstimateCache, EstimateRequest, estimate_batch
from repro.qec import default_scheme_for

ALGORITHMS = ("schoolbook", "karatsuba", "windowed")
DEPTH_FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
BITS = 512
PROFILE = "qubit_maj_ns_e4"
BUDGET = 1e-4


def _grid():
    """A repeated-profile grid: a depth ladder per algorithm."""
    return [
        (algorithm, factor)
        for algorithm in ALGORITHMS
        for factor in DEPTH_FACTORS
    ]


def _run_per_point():
    """The legacy sweep: every point re-derives counts and designs anew."""
    qubit = qubit_params(PROFILE)
    scheme = default_scheme_for(qubit)
    results = []
    for algorithm, factor in _grid():
        counts = multiplier_by_name(algorithm, BITS).logical_counts()
        results.append(
            estimate(
                counts,
                qubit,
                scheme=scheme,
                budget=BUDGET,
                constraints=Constraints(logical_depth_factor=factor),
            )
        )
    return results


def _run_batch(cache):
    qubit = qubit_params(PROFILE)
    scheme = default_scheme_for(qubit)
    requests = [
        EstimateRequest(
            program=multiplier_by_name(algorithm, BITS),
            qubit=qubit,
            scheme=scheme,
            budget=BUDGET,
            constraints=Constraints(logical_depth_factor=factor),
            program_key=("bench-multiplier", algorithm, BITS),
        )
        for algorithm, factor in _grid()
    ]
    return [o.unwrap() for o in estimate_batch(requests, max_workers=1, cache=cache)]


def _best_of(n, fn):
    """Best-of-n wall time; the min filters scheduler noise on CI runners."""
    best, result = float("inf"), None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_cached_batch_sweep_beats_per_point_estimates():
    qubit = qubit_params(PROFILE)
    estimate(  # warm the shared designer catalog for both measurements
        multiplier_by_name("schoolbook", 32).logical_counts(), qubit, budget=BUDGET
    )

    per_point_s, per_point = _best_of(3, _run_per_point)

    # Fresh cache per timed run: measured is the per-sweep caching win,
    # not cross-sweep warm-cache reuse.
    batch_s, batched = _best_of(3, lambda: _run_batch(EstimateCache()))

    # Identical results, point for point.
    assert [r.to_dict() for r in batched] == [r.to_dict() for r in per_point]

    # One factory design per algorithm (the ladder shares the design), not
    # one per point; counts traced once per algorithm likewise.
    cache = EstimateCache()
    _run_batch(cache)
    stats = cache.stats()
    assert stats["factories"]["misses"] == len(ALGORITHMS)
    assert stats["factories"]["hits"] == len(_grid()) - len(ALGORITHMS)
    assert stats["counts"]["misses"] == len(ALGORITHMS)

    # The headline: the cached sweep is measurably faster. The grid shares
    # a factory design across a 6-point ladder, so the expected ratio is
    # ~4x; assert a conservative margin to stay robust on noisy machines.
    assert batch_s < per_point_s * 0.75, (
        f"batch sweep took {batch_s:.3f}s vs per-point {per_point_s:.3f}s"
    )


def test_bench_batch_sweep_warm_cache(benchmark):
    """Steady-state cost of re-running a sweep with every memo warm."""
    cache = EstimateCache()
    _run_batch(cache)  # warm
    results = benchmark(_run_batch, cache)
    assert len(results) == len(_grid())
