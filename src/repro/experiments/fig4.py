"""Figure 4: 2048-bit multiplication across the six hardware profiles.

Paper setup: 2048-bit inputs, total error budget 1e-4, surface code for
the four gate-based profiles and floquet code for the two Majorana
profiles (the defaults of :func:`repro.qec.default_scheme_for`). The
checked headline: estimated runtimes span roughly 12 s to 9e4 s across
profiles, driving the 1.37e6 .. 9.1e9 rQOPS range quoted in Sec. V.
"""

from __future__ import annotations

from typing import Sequence

from .runner import ALGORITHMS, PAPER_ERROR_BUDGET, EstimateRow, run_estimate_rows

#: All six predefined profiles, in the paper's grouping order.
FIG4_PROFILES: tuple[str, ...] = (
    "qubit_gate_ns_e3",
    "qubit_gate_ns_e4",
    "qubit_gate_us_e3",
    "qubit_gate_us_e4",
    "qubit_maj_ns_e4",
    "qubit_maj_ns_e6",
)

FIG4_BITS = 2048


def run_fig4(
    profiles: Sequence[str] | None = None,
    *,
    bits: int = FIG4_BITS,
    budget: float = PAPER_ERROR_BUDGET,
    algorithms: Sequence[str] = ALGORITHMS,
    max_workers: int | None = 1,
    backend: str = "formula",
) -> list[EstimateRow]:
    """Reproduce the Fig. 4 sweep; rows ordered by (profile, algorithm).

    The grid runs through the shared batch engine, so each algorithm's
    counts are resolved once and reused across all six profiles;
    ``max_workers`` fans points out over worker processes and ``backend``
    selects the count-resolution path (``formula`` / ``materialize`` /
    ``counting`` — identical results).
    """
    chosen = tuple(profiles) if profiles is not None else FIG4_PROFILES
    points = [
        (algorithm, bits, profile)
        for profile in chosen
        for algorithm in algorithms
    ]
    return run_estimate_rows(
        points, budget=budget, max_workers=max_workers, backend=backend
    )
