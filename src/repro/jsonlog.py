"""Structured JSON logging for the service and queue workers.

One JSON object per line on a stream, so ``repro serve`` / ``repro
work`` output can be shipped straight into any log pipeline and joined
on ids. Every record carries:

``ts``
    ISO-8601 UTC wall time.
``event``
    A dotted name: ``request`` for HTTP requests;
    ``job.queued`` / ``job.running`` / ``job.done`` / ``job.failed``
    for service job transitions; ``worker.start`` / ``worker.chunk`` /
    ``worker.done`` for queue-worker progress.

plus event fields — ``requestId``, ``route``, ``method``, ``status``,
``duration_s`` on requests; ``jobId``, ``kind``, and counters on job
and worker events. Request ids are minted per request; job ids are the
spec content hashes, so one job's records correlate across replicas
and workers sharing a store.

The logger is explicitly passed, never global: library code (and the
tests) default to :meth:`StructuredLogger.disabled`, only the CLI entry
points turn it on. Writes are serialized by a lock, one ``write()``
call per record, so concurrent handler threads never interleave lines.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import uuid
from datetime import datetime, timezone
from typing import Any, TextIO

__all__ = ["StructuredLogger", "new_request_id"]


def new_request_id() -> str:
    """A short unique id to correlate one request's records."""
    return uuid.uuid4().hex[:16]


class StructuredLogger:
    """Writes one JSON record per :meth:`event` call.

    ``stream`` defaults to ``sys.stderr`` (resolved at write time, so
    pytest's capture and test doubles work); pass any text stream to
    redirect. A disabled logger (:meth:`disabled`) makes every call a
    cheap no-op, which is the default wiring everywhere but the CLI.
    """

    def __init__(
        self, stream: TextIO | None = None, *, enabled: bool = True
    ) -> None:
        self._stream = stream
        self.enabled = enabled
        self._lock = threading.Lock()

    @classmethod
    def disabled(cls) -> "StructuredLogger":
        return cls(enabled=False)

    def event(self, event: str, **fields: Any) -> None:
        """Emit one record; non-JSON field values are stringified."""
        if not self.enabled:
            return
        record: dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "event": event,
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        line = json.dumps(record, default=str, separators=(",", ":"))
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError, io.UnsupportedOperation):
                pass  # a dead log pipe must never take the service down
