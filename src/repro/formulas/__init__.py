"""Arithmetic formula engine for user-customizable model parameters.

The paper (Sec. IV-C.2, IV-C.5) specifies that QEC schemes and distillation
units expose *formula parameters*: strings over simple arithmetic operations
and named variables (gate/measurement times, code distance, error rates).
This package implements that little language from scratch — a tokenizer, a
recursive-descent parser producing a small AST, and a compiler to fast
Python callables — so users can plug in custom QEC schemes and distillation
units exactly as they can with the Azure tool.

Example
-------
>>> from repro.formulas import Formula
>>> f = Formula("(4 * twoQubitGateTime + 2 * oneQubitMeasurementTime) * codeDistance")
>>> f(twoQubitGateTime=50, oneQubitMeasurementTime=100, codeDistance=9)
3600
"""

from .ast import (
    BinaryOp,
    Call,
    FormulaError,
    FormulaNode,
    Number,
    UnaryOp,
    Variable,
)
from .parser import FormulaParseError, parse, tokenize
from .formula import Formula, FormulaEvalError, FormulaLike

__all__ = [
    "BinaryOp",
    "Call",
    "Formula",
    "FormulaError",
    "FormulaEvalError",
    "FormulaLike",
    "FormulaNode",
    "FormulaParseError",
    "Number",
    "UnaryOp",
    "Variable",
    "parse",
    "tokenize",
]
