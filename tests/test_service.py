"""Tests for the estimation service (HTTP API + client).

The load-bearing assertion: a result served over HTTP is **bit-for-bit**
equal to the in-process ``estimate()`` / ``estimate_batch()`` result —
the JSON transport is lossless. The CI ``service-smoke`` job re-asserts
this against a real ``repro serve`` process.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import (
    EstimateSpec,
    LogicalCounts,
    ProgramRef,
    ResultStore,
    estimate,
    estimate_batch,
    qubit_params,
)
from repro.estimator.batch import EstimateRequest
from repro.registry import Registry
from repro.service import (
    EstimationService,
    ServiceClient,
    ServiceError,
    make_server,
)

COUNTS = LogicalCounts(num_qubits=50, t_count=100_000, measurement_count=1_000)

CUSTOM_QUBIT = {
    "name": "service_test_qubit",
    "instruction_set": "gate_based",
    "one_qubit_measurement_time_ns": 80.0,
    "one_qubit_measurement_error_rate": 5e-4,
    "one_qubit_gate_time_ns": 40.0,
    "one_qubit_gate_error_rate": 5e-4,
    "two_qubit_gate_time_ns": 40.0,
    "two_qubit_gate_error_rate": 5e-4,
    "t_gate_time_ns": 40.0,
    "t_gate_error_rate": 5e-4,
}


@pytest.fixture()
def service(tmp_path):
    registry = Registry()
    registry.load_scenario({"qubitParams": [CUSTOM_QUBIT]})
    return EstimationService(registry=registry, store=ResultStore(tmp_path))


@pytest.fixture()
def client(service):
    server = make_server("127.0.0.1", 0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield ServiceClient(f"http://127.0.0.1:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestSubmit:
    def test_single_spec_matches_in_process_bit_for_bit(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", label="one")
        record = client.submit(spec)
        assert record["ok"] is True
        assert record["label"] == "one"
        # The service addresses results by the *resolved* hash (profile
        # names inlined via its registry), not the client's syntactic one.
        assert record["specHash"] == spec.content_hash(Registry())
        expected = estimate(COUNTS, qubit_params("qubit_gate_ns_e3"))
        # Bit-for-bit: the HTTP JSON equals the local report dict exactly.
        assert record["result"] == json.loads(json.dumps(expected.to_dict()))
        assert record["result"] == expected.to_dict()

    def test_batch_matches_estimate_batch(self, client):
        specs = [
            EstimateSpec(program=COUNTS, qubit=profile, budget=1e-4, label=profile)
            for profile in ("qubit_gate_ns_e3", "qubit_maj_ns_e4")
        ]
        records = client.submit_batch(specs)
        assert [r["label"] for r in records] == [s.label for s in specs]
        outcomes = estimate_batch(
            [
                EstimateRequest(
                    program=COUNTS, qubit=qubit_params(profile), budget=1e-4
                )
                for profile in ("qubit_gate_ns_e3", "qubit_maj_ns_e4")
            ]
        )
        for record, outcome in zip(records, outcomes):
            assert record["ok"]
            assert record["result"] == outcome.unwrap().to_dict()

    def test_program_ref_spec(self, client):
        spec = EstimateSpec(
            program=ProgramRef(kind="multiplier", algorithm="windowed", bits=64),
            qubit="qubit_maj_ns_e4",
            budget=1e-4,
        )
        record = client.submit(spec)
        assert record["ok"], record["error"]
        assert record["result"]["physicalCounts"]["physicalQubits"] > 0

    def test_second_submission_served_from_store(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e4")
        first = client.submit(spec)
        second = client.submit(spec)
        assert first["fromStore"] is False
        assert second["fromStore"] is True
        assert second["result"] == first["result"]

    def test_scenario_qubit_flows_through_service(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="service_test_qubit")
        record = client.submit(spec)
        assert record["ok"], record["error"]
        assert (
            record["result"]["physicalQubitParameters"]["name"]
            == "service_test_qubit"
        )

    def test_infeasible_spec_reports_error_record(self, client):
        from repro import Constraints

        spec = EstimateSpec(
            program=COUNTS,
            qubit="qubit_gate_ns_e3",
            constraints=Constraints(max_physical_qubits=10),
        )
        record = client.submit(spec)
        assert record["ok"] is False
        assert "exceed" in record["error"]

    def test_bad_spec_in_batch_fails_per_record(self, client):
        good = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        records = client.submit_batch(
            [good, {"program": {"counts": COUNTS.to_dict()}}]  # missing qubit
        )
        assert records[0]["ok"] is True
        assert records[1]["ok"] is False
        assert "qubit" in records[1]["error"]

    def test_unknown_profile_fails_per_record(self, client):
        record = client.submit(EstimateSpec(program=COUNTS, qubit="bogus"))
        assert record["ok"] is False
        assert "bogus" in record["error"]

    def test_partial_budget_fails_per_record_not_batch(self, client):
        # Regression: a budget object missing a field used to raise
        # KeyError past the per-spec handler and 500 the whole batch.
        good = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        records = client.submit_batch(
            [
                good,
                {
                    "program": {"counts": COUNTS.to_dict()},
                    "qubit": {"profile": "qubit_gate_ns_e3"},
                    "budget": {"logical": 1e-4, "tStates": 1e-4},
                },
            ]
        )
        assert records[0]["ok"] is True
        assert records[1]["ok"] is False
        assert "rotations" in records[1]["error"]


class TestResultsEndpoint:
    def test_get_by_hash_round_trips(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_maj_ns_e4", budget=1e-4)
        record = client.submit(spec)
        document = client.result(record["specHash"])
        assert document is not None
        assert document["result"] == record["result"]
        assert document["spec"] == spec.to_dict()

    def test_unknown_hash_is_none(self, client):
        assert client.result("ab" + "0" * 62) is None


class TestIntrospection:
    def test_registry_endpoint_includes_scenario_entries(self, client):
        description = client.registry()
        assert "service_test_qubit" in description["qubitParams"]
        assert "surface_code" in description["qecSchemes"]

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["store"] is not None


class TestProtocolErrors:
    def test_bad_json_body_is_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/v1/estimate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_empty_specs_list_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/estimate", {"specs": []})
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/bogus")
        assert excinfo.value.status == 404

    def test_oversized_body_is_400_and_closes_connection(self, client):
        # Regression: an early 400 leaves the (unread) body on the
        # socket; on keep-alive the server must close the connection so
        # the leftover bytes are never parsed as the next request.
        import http.client
        from repro.service import MAX_BODY_BYTES

        host = client.base_url.split("//")[1]
        connection = http.client.HTTPConnection(host, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/estimate",
                body=b"x" * 16,
                headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.headers.get("Connection") == "close"
        finally:
            connection.close()

    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestServiceWithoutStore:
    def test_submit_recomputes_and_results_miss(self):
        service = EstimationService(registry=Registry(), store=None)
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        record = service.submit(spec.to_dict())
        assert record["ok"] and record["fromStore"] is False
        again = service.submit(spec.to_dict())
        assert again["fromStore"] is False
        assert service.result_document(record["specHash"]) is None
