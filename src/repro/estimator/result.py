"""Estimation result object with the tool's eight output groups (Sec. IV-D)."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..budget import ErrorBudgetPartition
from ..counts import LogicalCounts
from ..distillation import TFactory
from ..layout import AlgorithmicLogicalResources
from ..qec import LogicalQubit
from ..qubits import PhysicalQubitParams


@dataclass(frozen=True)
class PhysicalCounts:
    """Group 1 — headline physical resource estimates."""

    physical_qubits: int
    runtime_ns: float
    rqops: float

    @property
    def runtime_seconds(self) -> float:
        return self.runtime_ns * 1e-9

    def to_dict(self) -> dict[str, Any]:
        return {
            "physicalQubits": self.physical_qubits,
            "runtime_ns": self.runtime_ns,
            "runtime_s": self.runtime_seconds,
            "rqops": self.rqops,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PhysicalCounts":
        return cls(
            physical_qubits=data["physicalQubits"],
            runtime_ns=data["runtime_ns"],
            rqops=data["rqops"],
        )


@dataclass(frozen=True)
class TFactoryUsage:
    """How the chosen T factory is deployed during the run."""

    factory: TFactory
    copies: int
    total_runs: int
    runs_per_copy: int
    physical_qubits: int
    required_output_error_rate: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "copies": self.copies,
            "totalRuns": self.total_runs,
            "runsPerCopy": self.runs_per_copy,
            "physicalQubits": self.physical_qubits,
            "requiredOutputErrorRate": self.required_output_error_rate,
            "factory": self.factory.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TFactoryUsage":
        return cls(
            factory=TFactory.from_dict(data["factory"]),
            copies=data["copies"],
            total_runs=data["totalRuns"],
            runs_per_copy=data["runsPerCopy"],
            physical_qubits=data["physicalQubits"],
            required_output_error_rate=data["requiredOutputErrorRate"],
        )


@dataclass(frozen=True)
class ResourceBreakdown:
    """Group 2 — intermediate quantities behind the headline numbers."""

    algorithmic_logical_qubits: int
    algorithmic_logical_depth: int
    logical_depth: int  # possibly stretched by constraints / factory fit
    num_t_states: int
    clock_frequency_hz: float
    physical_qubits_for_algorithm: int
    physical_qubits_for_t_factories: int
    required_logical_error_rate: float

    @property
    def logical_operations(self) -> int:
        """Total reliable logical operations = logical qubits x depth."""
        return self.algorithmic_logical_qubits * self.logical_depth

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithmicLogicalQubits": self.algorithmic_logical_qubits,
            "algorithmicLogicalDepth": self.algorithmic_logical_depth,
            "logicalDepth": self.logical_depth,
            "numTStates": self.num_t_states,
            "clockFrequency_Hz": self.clock_frequency_hz,
            "physicalQubitsForAlgorithm": self.physical_qubits_for_algorithm,
            "physicalQubitsForTFactories": self.physical_qubits_for_t_factories,
            "requiredLogicalErrorRate": self.required_logical_error_rate,
            "logicalOperations": self.logical_operations,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResourceBreakdown":
        return cls(
            algorithmic_logical_qubits=data["algorithmicLogicalQubits"],
            algorithmic_logical_depth=data["algorithmicLogicalDepth"],
            logical_depth=data["logicalDepth"],
            num_t_states=data["numTStates"],
            clock_frequency_hz=data["clockFrequency_Hz"],
            physical_qubits_for_algorithm=data["physicalQubitsForAlgorithm"],
            physical_qubits_for_t_factories=data["physicalQubitsForTFactories"],
            required_logical_error_rate=data["requiredLogicalErrorRate"],
        )


@dataclass(frozen=True)
class PhysicalResourceEstimates:
    """Full output of one estimation run.

    Groups (paper Sec. IV-D): 1 physical counts, 2 breakdown, 3 logical
    qubit, 4 T factory, 5 pre-layout logical resources, 6 error budget,
    7 physical qubit parameters, 8 assumptions.
    """

    physical_counts: PhysicalCounts
    breakdown: ResourceBreakdown
    logical_qubit: LogicalQubit
    t_factory: TFactoryUsage | None
    algorithmic_resources: AlgorithmicLogicalResources
    error_budget: ErrorBudgetPartition
    qubit_params: PhysicalQubitParams
    assumptions: tuple[str, ...]

    # Convenience accessors used throughout examples/benchmarks.
    @property
    def physical_qubits(self) -> int:
        return self.physical_counts.physical_qubits

    @property
    def runtime_seconds(self) -> float:
        return self.physical_counts.runtime_seconds

    @property
    def rqops(self) -> float:
        return self.physical_counts.rqops

    @property
    def code_distance(self) -> int:
        return self.logical_qubit.code_distance

    @property
    def logical_qubits(self) -> int:
        return self.breakdown.algorithmic_logical_qubits

    @property
    def pre_layout(self) -> LogicalCounts:
        return self.algorithmic_resources.pre_layout

    def to_dict(self) -> dict[str, Any]:
        return {
            "physicalCounts": self.physical_counts.to_dict(),
            "breakdown": self.breakdown.to_dict(),
            "logicalQubit": self.logical_qubit.to_dict(),
            "tFactory": self.t_factory.to_dict() if self.t_factory else None,
            "preLayoutLogicalResources": self.pre_layout.to_dict(),
            "tStatesPerRotation": self.algorithmic_resources.t_states_per_rotation,
            "errorBudget": self.error_budget.to_dict(),
            "physicalQubitParameters": self.qubit_params.to_dict(),
            "assumptions": list(self.assumptions),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PhysicalResourceEstimates":
        """Inverse of :meth:`to_dict`: lossless result deserialization.

        ``from_dict(json.loads(result.to_json()))`` equals ``result``:
        every sub-object (including the full T-factory design and the QEC
        scheme formulas) is reconstructed, so stored results can be served
        and post-processed without re-running the estimator.
        """
        qubit = PhysicalQubitParams.from_dict(data["physicalQubitParameters"])
        breakdown = ResourceBreakdown.from_dict(data["breakdown"])
        pre_layout = LogicalCounts.from_dict(data["preLayoutLogicalResources"])
        t_factory = data.get("tFactory")
        return cls(
            physical_counts=PhysicalCounts.from_dict(data["physicalCounts"]),
            breakdown=breakdown,
            logical_qubit=LogicalQubit.from_dict(data["logicalQubit"], qubit),
            t_factory=TFactoryUsage.from_dict(t_factory) if t_factory else None,
            algorithmic_resources=AlgorithmicLogicalResources(
                logical_qubits=breakdown.algorithmic_logical_qubits,
                logical_depth=breakdown.algorithmic_logical_depth,
                t_states=breakdown.num_t_states,
                t_states_per_rotation=data["tStatesPerRotation"],
                pre_layout=pre_layout,
            ),
            error_budget=ErrorBudgetPartition.from_dict(data["errorBudget"]),
            qubit_params=qubit,
            assumptions=tuple(data["assumptions"]),
        )

    def to_json(self, **json_kwargs: Any) -> str:
        json_kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **json_kwargs)

    def summary(self) -> str:
        """Human-readable report, in the spirit of the tool's result table."""
        pc = self.physical_counts
        bd = self.breakdown
        lines = [
            "Physical resource estimates",
            f"  Runtime:                    {pc.runtime_seconds:.4g} s",
            f"  rQOPS:                      {pc.rqops:.4g}",
            f"  Physical qubits:            {pc.physical_qubits:,}",
            "Resource estimates breakdown",
            f"  Logical algorithmic qubits: {bd.algorithmic_logical_qubits:,}",
            f"  Algorithmic depth:          {bd.algorithmic_logical_depth:,}",
            f"  Logical depth:              {bd.logical_depth:,}",
            f"  Clock frequency:            {bd.clock_frequency_hz:.4g} Hz",
            f"  Number of T states:         {bd.num_t_states:,}",
            f"  T factory copies:           {self.t_factory.copies if self.t_factory else 0}",
            f"  Physical qubits (algorithm):{bd.physical_qubits_for_algorithm:,}",
            f"  Physical qubits (factories):{bd.physical_qubits_for_t_factories:,}",
            "Logical qubit parameters",
            f"  QEC scheme:                 {self.logical_qubit.scheme.name}",
            f"  Code distance:              {self.logical_qubit.code_distance}",
            f"  Physical qubits / logical:  {self.logical_qubit.physical_qubits}",
            f"  Logical cycle time:         {self.logical_qubit.cycle_time_ns:.4g} ns",
            f"  Logical error rate:         {self.logical_qubit.logical_error_rate:.4g}",
        ]
        return "\n".join(lines)
