"""Gate tallies for the closed-form cost functions.

``GateTally`` mirrors the non-Clifford/measurement fields of
:class:`~repro.counts.LogicalCounts` (arithmetic circuits contain no
rotations) and adds nothing else: the point is exact agreement with the
tracer, checked by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..counts import LogicalCounts


@dataclass(frozen=True)
class GateTally:
    """Non-Clifford and measurement tallies of an arithmetic block."""

    ccix: int = 0
    ccz: int = 0
    t: int = 0
    measurements: int = 0

    def __add__(self, other: "GateTally") -> "GateTally":
        return GateTally(
            ccix=self.ccix + other.ccix,
            ccz=self.ccz + other.ccz,
            t=self.t + other.t,
            measurements=self.measurements + other.measurements,
        )

    def __mul__(self, factor: int) -> "GateTally":
        return GateTally(
            ccix=self.ccix * factor,
            ccz=self.ccz * factor,
            t=self.t * factor,
            measurements=self.measurements * factor,
        )

    __rmul__ = __mul__

    def to_logical_counts(self, num_qubits: int) -> LogicalCounts:
        """Combine with a width to form pre-layout logical counts."""
        return LogicalCounts(
            num_qubits=num_qubits,
            t_count=self.t,
            ccz_count=self.ccz,
            ccix_count=self.ccix,
            measurement_count=self.measurements,
        )

    @classmethod
    def from_logical_counts(cls, counts: LogicalCounts) -> "GateTally":
        if counts.rotation_count:
            raise ValueError("GateTally cannot represent rotations")
        return cls(
            ccix=counts.ccix_count,
            ccz=counts.ccz_count,
            t=counts.t_count,
            measurements=counts.measurement_count,
        )
