"""Content-addressed persistent result store.

Every estimation result can be addressed by the content hash of the
:class:`~repro.estimator.spec.EstimateSpec` that produced it — estimation
is deterministic, so the spec hash *is* the result identity. The store
keeps one JSON document per hash on disk, which buys three things the
in-memory :class:`~repro.estimator.batch.EstimateCache` cannot:

* **cross-process reuse** — a second process (or a restarted service)
  re-running the same sweep grid answers from disk in milliseconds
  instead of re-solving every fixed point;
* **warm starts** — the fig3/fig4 reproductions, CLI batch grids, and
  ``repro sweep`` runs skip all previously-computed points
  (``benchmarks/test_store_warmrun.py`` asserts a >= 10x warm-run
  speedup floor) — this is also the sweep subsystem's resume story: a
  killed sweep re-run picks up from its persisted chunks;
* **serving** — the estimation service's ``GET /v1/results/<hash>``
  endpoint reads stored documents directly, and finished sweep results
  (keyed by the sweep's content hash) survive server restarts in the
  sweep namespace.

Layout and durability
---------------------
Entries live under ``<root>/<schema-tag>/<hh>/<hash>.json`` where ``hh``
is the first two hash hex digits (fan-out keeps directories small). The
schema tag versions the document serialization: bumping
:data:`RESULT_SCHEMA` (on any change to ``to_dict`` output or the
document envelope) makes a new namespace, so stale entries are never
deserialized against new code — that is the cache-invalidation story, no
migration needed. Sweep result documents live under their own
:data:`SWEEP_DOC_SCHEMA` namespace, and traced logical counts — keyed by
resolved program content hash plus backend — under :data:`COUNTS_SCHEMA`
(the cross-run counts cache layered under
:func:`~repro.estimator.spec.run_specs`). :meth:`ResultStore.stats`
reports per-namespace document counts and bytes (the ``repro store
stats`` CLI subcommand), TTL-cached so operators and the service's
``/v1/metrics`` endpoint can poll it without paying a directory walk
per call.

Bounded disk
------------
A store grows without bound by default — every distinct spec hash adds
a document. :meth:`ResultStore.evict` (the ``repro store evict`` CLI)
prunes the *document* namespaces — results, sweep results, counts,
optimize traces — oldest mtime first until they fit a byte budget,
and a store constructed with ``max_bytes=`` enforces that budget
automatically as it writes. Eviction never touches live coordination
state: queue chunk records, leases, and journal entries are not
documents of record, they are the crash-safety substrate — evicting
them could orphan a running sweep. An evicted document is simply a
future cache miss: the store heals by recomputation, exactly like a
corrupt file.

Writes go through a temporary file in the destination directory followed
by :func:`os.replace`, so concurrent writers and crashes can never leave
a torn document; rewriting the same hash is idempotent. Every document
embeds a SHA-256 ``digest`` over its canonical content, verified on
read: corrupt, truncated, bit-flipped, or foreign files all read back as
misses — a damaged store heals by recomputation, it never serves a
mangled result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..counts import LogicalCounts
from .result import PhysicalResourceEstimates

__all__ = [
    "COUNTS_SCHEMA",
    "DEFAULT_MEMORY_CACHE_SIZE",
    "JOBS_SCHEMA",
    "OPTIMIZE_DOC_SCHEMA",
    "QUEUE_SCHEMA",
    "RESULT_SCHEMA",
    "SWEEP_DOC_SCHEMA",
    "ResultStore",
    "default_store_root",
    "read_document",
    "write_document",
]

#: Version tag of the stored result document format. Bump when the
#: ``PhysicalResourceEstimates.to_dict`` schema or the document envelope
#: changes incompatibly; old entries then simply stop being found (no
#: migration required). v2: documents gained the integrity ``digest``.
RESULT_SCHEMA = "repro-result-v2"

#: Version tag (and namespace) of stored sweep result documents. Bump
#: alongside :data:`RESULT_SCHEMA` — sweep documents embed result dicts.
SWEEP_DOC_SCHEMA = "repro-sweep-result-v1"

#: Version tag (and namespace) of stored logical-counts documents. Keys
#: are SHA-256 over (this tag, resolved program content hash, backend) —
#: see :meth:`repro.estimator.spec.ProgramRef.counts_cache_key` — so a
#: workload referenced by any number of specs, sweeps, or service
#: submissions is traced once ever per store.
COUNTS_SCHEMA = "repro-counts-v1"

#: Version tag (and namespace) of the sweep work queue: per-sweep chunk
#: records, lease files, and per-chunk outcome documents that let N
#: worker processes drain one sweep cooperatively (see
#: :mod:`repro.estimator.queue`).
QUEUE_SCHEMA = "repro-queue-v1"

#: Version tag (and namespace) of the persistent job journal: one
#: document per submitted sweep job, so in-flight sweeps are
#: rediscovered (and resumed) after a worker or service restart.
JOBS_SCHEMA = "repro-jobs-v1"

#: Version tag (and namespace) of optimize probe-trace documents: one
#: per :class:`~repro.estimator.optimize.OptimizeSpec` content hash,
#: recording every probed spec hash and its verdict, so an interrupted
#: adaptive search resumes bit-for-bit and an equivalent re-submission
#: answers from the store with zero evaluations (see
#: :mod:`repro.estimator.optimize`).
OPTIMIZE_DOC_SCHEMA = "repro-optimize-v1"

#: Default capacity of the in-process read-through LRU in front of
#: :meth:`ResultStore.get` and :meth:`ResultStore.get_counts`. Adaptive
#: searches re-probe neighboring points many times within one process;
#: the memory cache stops them re-reading and re-parsing the same JSON
#: documents from disk. Entries are content-addressed and immutable, so
#: a cached document can never go stale; only documents that passed the
#: integrity digest on a real disk read are ever cached.
DEFAULT_MEMORY_CACHE_SIZE = 256

#: Default time-to-live of the cached :meth:`ResultStore.stats` disk
#: scan. Within the TTL, repeated ``stats()`` calls (metrics scrapes,
#: ``repro store stats``) answer from the cached snapshot without
#: walking a single directory; in-process writes invalidate it, so the
#: cache can only hide *other* processes' writes, never this one's.
DEFAULT_STATS_TTL = 5.0

#: Default tolerance for file mtimes in the *future* during ``gc``: up
#: to this far ahead of the local clock a file is treated as fresh
#: (tolerable writer/collector clock skew on a shared or NFS store);
#: beyond it no live writer can plausibly have produced the timestamp,
#: so the file is clock-skew litter and is collected rather than left
#: immortal.
DEFAULT_GC_FUTURE_SKEW = 3600.0

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_STORE_DIR"


def default_store_root() -> Path:
    """``$REPRO_STORE_DIR`` or ``~/.cache/repro/store``."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "store"


def _digest(document: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a document, sans its digest."""
    body = {key: value for key, value in document.items() if key != "digest"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def read_document(path: Path) -> dict[str, Any] | None:
    """Parse and integrity-check one store document (miss on failure).

    The store's document envelope — digest-verified, corrupt-reads-as-
    miss — exposed for sibling namespaces (the sweep work queue and the
    job journal) that persist documents under the same root with the
    same durability contract.
    """
    return ResultStore._read_document(path)


def write_document(path: Path, document: dict[str, Any]) -> bool:
    """Atomically persist a document with its digest; returns success.

    Same tmp+\\ :func:`os.replace` discipline as every store write:
    concurrent writers and crashes can never leave a torn document, and
    rewriting identical content is idempotent.
    """
    return ResultStore._write_document(path, document)


class _MemoryCache:
    """Bounded thread-safe LRU of parsed documents with hit counters.

    Populated only from *successful disk reads* — never from writes — so
    every cached value passed the integrity digest at least once in this
    process, and the corruption contract (a damaged file reads as a
    miss) is preserved for entries that were never read back. Cached
    values are frozen dataclasses (:class:`PhysicalResourceEstimates`,
    :class:`LogicalCounts`), safe to hand out shared.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries", "_lock")

    def __init__(self, capacity: int) -> None:
        self.capacity = max(int(capacity), 0)
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def remove(self, key: str) -> None:
        """Drop one entry if resident (eviction coherence; benign miss)."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


class ResultStore:
    """Spec-hash -> result-JSON mapping persisted on disk.

    Parameters
    ----------
    root:
        Store directory; created lazily on first write. Defaults to
        :func:`default_store_root`. Multiple processes may share a root —
        writes are atomic and entries immutable (same hash, same bytes).
    schema:
        Result-document schema tag; entries written under a different tag
        are invisible. Override only in tests.
    cache_size:
        Capacity of the in-process read-through LRU in front of
        :meth:`get` and :meth:`get_counts` (per namespace). ``0``
        disables memory caching; every read goes to disk.
    max_bytes:
        Disk budget for the evictable document namespaces (results,
        sweeps, counts, optimize traces). When set, every write checks a
        running byte estimate and triggers :meth:`evict` past the
        budget, so the store stays bounded across arbitrarily large
        sweeps. ``None`` (default) disables automatic eviction.
    stats_ttl:
        How long one :meth:`stats` disk scan stays authoritative, in
        seconds. ``0`` re-walks on every call (the pre-PR-9 behavior).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        schema: str = RESULT_SCHEMA,
        cache_size: int = DEFAULT_MEMORY_CACHE_SIZE,
        max_bytes: int | None = None,
        stats_ttl: float = DEFAULT_STATS_TTL,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if stats_ttl < 0:
            raise ValueError(f"stats_ttl must be >= 0, got {stats_ttl}")
        self.root = Path(root) if root is not None else default_store_root()
        self.schema = schema
        self.max_bytes = max_bytes
        self.stats_ttl = float(stats_ttl)
        self._result_cache = _MemoryCache(cache_size)
        self._counts_cache = _MemoryCache(cache_size)
        #: Directory walks performed by :meth:`stats` — a test/observability
        #: hook asserting the TTL cache really skips the walk.
        self.stats_walks = 0
        self._stats_lock = threading.Lock()
        self._stats_snapshot: dict[str, Any] | None = None
        self._stats_taken = 0.0
        self._evictions = {"files": 0, "bytes": 0}
        # Running byte total of the evictable namespaces; None until the
        # first budget check scans it. Writes add their sizes (an upper
        # bound — idempotent rewrites double-count, which only makes the
        # next evict() run early; evict() recomputes the exact total).
        self._evictable_bytes: int | None = None

    # -- paths -------------------------------------------------------------

    @property
    def _base(self) -> Path:
        return self.root / self.schema

    @staticmethod
    def _check_hash(spec_hash: str) -> str:
        if not spec_hash or any(c not in "0123456789abcdef" for c in spec_hash):
            raise ValueError(f"malformed spec hash {spec_hash!r}")
        return spec_hash

    def path_for(self, spec_hash: str) -> Path:
        """Where the document for ``spec_hash`` lives (existing or not)."""
        self._check_hash(spec_hash)
        return self._base / spec_hash[:2] / f"{spec_hash}.json"

    def sweep_path_for(self, sweep_hash: str) -> Path:
        """Where the sweep result document for ``sweep_hash`` lives."""
        self._check_hash(sweep_hash)
        return self.root / SWEEP_DOC_SCHEMA / sweep_hash[:2] / f"{sweep_hash}.json"

    def counts_path_for(self, counts_key: str) -> Path:
        """Where the logical-counts document for ``counts_key`` lives."""
        self._check_hash(counts_key)
        return self.root / COUNTS_SCHEMA / counts_key[:2] / f"{counts_key}.json"

    def optimize_path_for(self, optimize_hash: str) -> Path:
        """Where the probe-trace document for ``optimize_hash`` lives."""
        self._check_hash(optimize_hash)
        return (
            self.root
            / OPTIMIZE_DOC_SCHEMA
            / optimize_hash[:2]
            / f"{optimize_hash}.json"
        )

    # -- document plumbing -------------------------------------------------

    @staticmethod
    def _read_document(path: Path) -> dict[str, Any] | None:
        """Parse and integrity-check one document file (miss on failure)."""
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(document, dict):
            return None
        digest = document.get("digest")
        if not isinstance(digest, str) or digest != _digest(document):
            return None  # corrupt, tampered, or pre-digest (v1) document
        return document

    @staticmethod
    def _write_document(path: Path, document: dict[str, Any]) -> bool:
        """Atomically persist a document (digest added); returns success."""
        document = dict(document)
        document["digest"] = _digest(document)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    # Compact separators: every byte of the file is
                    # significant, so corruption cannot hide in formatting.
                    json.dump(document, handle, separators=(",", ":"))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    # -- reads -------------------------------------------------------------

    def get_raw(self, spec_hash: str) -> dict[str, Any] | None:
        """The stored document for a hash, or ``None`` (missing/corrupt).

        Documents are ``{"schema": ..., "specHash": ..., "spec": ...,
        "result": ..., "digest": ...}``; a readable file whose digest,
        schema, or hash does not match is treated as a miss, never an
        error — a shared store directory must not be able to crash (or
        corrupt) an estimation run.
        """
        document = self._read_document(self.path_for(spec_hash))
        if (
            document is None
            or document.get("schema") != self.schema
            or document.get("specHash") != spec_hash
            or not isinstance(document.get("result"), dict)
        ):
            return None
        return document

    def get(self, spec_hash: str) -> PhysicalResourceEstimates | None:
        """The stored result for a hash, deserialized, or ``None``.

        Repeated reads of one hash within a process answer from the
        bounded in-memory LRU (populated only by verified disk reads —
        see :class:`_MemoryCache`); hit counts appear under
        ``memoryCache`` in :meth:`stats`.
        """
        self._check_hash(spec_hash)
        cached = self._result_cache.get(spec_hash)
        if cached is not None:
            return cached
        document = self.get_raw(spec_hash)
        if document is None:
            return None
        try:
            result = PhysicalResourceEstimates.from_dict(document["result"])
        except (KeyError, TypeError, ValueError):
            return None  # written by an incompatible (future) build
        self._result_cache.put(spec_hash, result)
        return result

    def __contains__(self, spec_hash: str) -> bool:
        return self.get_raw(spec_hash) is not None

    def keys(self) -> Iterator[str]:
        """Hashes currently stored under this schema tag."""
        if not self._base.is_dir():
            return
        for path in sorted(self._base.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- writes ------------------------------------------------------------

    def put(
        self,
        spec_hash: str,
        result: PhysicalResourceEstimates,
        *,
        spec: dict[str, Any] | None = None,
    ) -> bool:
        """Persist a result document atomically; returns success.

        ``spec`` (the producing spec's ``to_dict``) is embedded for
        debuggability and re-queueing; it is not required to read the
        result back. An unwritable store degrades to a no-op (``False``)
        instead of failing the estimation that produced the result.
        """
        path = self.path_for(spec_hash)
        document = {
            "schema": self.schema,
            "specHash": spec_hash,
            "spec": spec,
            "result": result.to_dict(),
        }
        ok = self._write_document(path, document)
        if ok:
            self._note_document_written(path)
        return ok

    def put_many(
        self,
        entries: Iterable[
            tuple[str, PhysicalResourceEstimates, dict[str, Any] | None]
        ],
    ) -> int:
        """Persist many result documents with one bookkeeping pass.

        Equivalent to calling :meth:`put` per ``(spec_hash, result,
        spec)`` entry, but the stats invalidation, byte-estimate growth,
        and eviction check run once for the whole batch instead of once
        per point — the chunk-write path of
        :func:`repro.estimator.spec.run_specs` uses this so persistence
        bookkeeping stays off the per-point hot path. Returns the number
        of documents actually written (unwritable documents are skipped,
        matching :meth:`put`).
        """
        written = 0
        batch_bytes = 0
        for spec_hash, result, spec in entries:
            path = self.path_for(spec_hash)
            document = {
                "schema": self.schema,
                "specHash": spec_hash,
                "spec": spec,
                "result": result.to_dict(),
            }
            if self._write_document(path, document):
                written += 1
                if self.max_bytes is not None:
                    try:
                        batch_bytes += path.stat().st_size
                    except OSError:
                        pass
        if written:
            self._note_batch_written(batch_bytes)
        return written

    def clear(self) -> int:
        """Remove every entry under this schema tag; returns the count."""
        removed = 0
        for spec_hash in list(self.keys()):
            try:
                self.path_for(spec_hash).unlink()
                removed += 1
            except OSError:
                pass
        self._result_cache.clear()
        self._invalidate_stats()
        return removed

    # -- sweep results -----------------------------------------------------

    def put_sweep(self, sweep_hash: str, result: dict[str, Any]) -> bool:
        """Persist a finished sweep's result document under its hash.

        ``result`` is a :meth:`repro.estimator.sweep.SweepResult.to_dict`
        document; the restarted estimation service re-serves finished
        sweeps from this namespace without recomputing anything.
        """
        document = {
            "schema": SWEEP_DOC_SCHEMA,
            "sweepHash": sweep_hash,
            "result": result,
        }
        path = self.sweep_path_for(sweep_hash)
        ok = self._write_document(path, document)
        if ok:
            self._note_document_written(path)
        return ok

    def get_sweep(self, sweep_hash: str) -> dict[str, Any] | None:
        """A stored sweep result document, or ``None`` (missing/corrupt)."""
        document = self._read_document(self.sweep_path_for(sweep_hash))
        if (
            document is None
            or document.get("schema") != SWEEP_DOC_SCHEMA
            or document.get("sweepHash") != sweep_hash
            or not isinstance(document.get("result"), dict)
        ):
            return None
        return document["result"]

    # -- logical counts ----------------------------------------------------

    def put_counts(
        self,
        counts_key: str,
        counts: LogicalCounts,
        *,
        backend: str | None = None,
    ) -> bool:
        """Persist a workload's traced counts under its counts key.

        ``backend`` is embedded for debuggability (the key already covers
        it). Like :meth:`put`, an unwritable store degrades to a no-op.
        """
        document = {
            "schema": COUNTS_SCHEMA,
            "countsKey": counts_key,
            "backend": backend,
            "counts": counts.to_dict(),
        }
        path = self.counts_path_for(counts_key)
        ok = self._write_document(path, document)
        if ok:
            self._note_document_written(path)
        return ok

    def get_counts(self, counts_key: str) -> LogicalCounts | None:
        """Stored counts for a key, or ``None`` (missing/corrupt).

        Read-through cached like :meth:`get`: repeated lookups of one
        workload's counts within a process skip the disk after the
        first verified read.
        """
        self._check_hash(counts_key)
        cached = self._counts_cache.get(counts_key)
        if cached is not None:
            return cached
        document = self._read_document(self.counts_path_for(counts_key))
        if (
            document is None
            or document.get("schema") != COUNTS_SCHEMA
            or document.get("countsKey") != counts_key
            or not isinstance(document.get("counts"), dict)
        ):
            return None
        try:
            counts = LogicalCounts.from_dict(document["counts"])
        except (TypeError, ValueError):
            return None  # written by an incompatible (future) build
        self._counts_cache.put(counts_key, counts)
        return counts

    # -- optimize probe traces ---------------------------------------------

    def put_optimize(self, optimize_hash: str, trace: dict[str, Any]) -> bool:
        """Persist an adaptive search's probe-trace document.

        ``trace`` is the :mod:`repro.estimator.optimize` trace document
        (probed spec hashes + verdicts, and the answer once the search
        finishes), keyed by the
        :meth:`~repro.estimator.optimize.OptimizeSpec.content_hash` — an
        equivalent re-submission answers from this namespace without a
        single engine evaluation.
        """
        document = {
            "schema": OPTIMIZE_DOC_SCHEMA,
            "optimizeHash": optimize_hash,
            "trace": trace,
        }
        path = self.optimize_path_for(optimize_hash)
        ok = self._write_document(path, document)
        if ok:
            self._note_document_written(path)
        return ok

    def get_optimize(self, optimize_hash: str) -> dict[str, Any] | None:
        """A stored probe-trace document, or ``None`` (missing/corrupt)."""
        document = self._read_document(self.optimize_path_for(optimize_hash))
        if (
            document is None
            or document.get("schema") != OPTIMIZE_DOC_SCHEMA
            or document.get("optimizeHash") != optimize_hash
            or not isinstance(document.get("trace"), dict)
        ):
            return None
        return document["trace"]

    # -- observability -----------------------------------------------------

    def _namespace_bases(self) -> tuple[tuple[str, str, Path], ...]:
        """(key, schema tag, base directory) for every store namespace."""
        return (
            ("results", self.schema, self._base),
            ("sweeps", SWEEP_DOC_SCHEMA, self.root / SWEEP_DOC_SCHEMA),
            ("counts", COUNTS_SCHEMA, self.root / COUNTS_SCHEMA),
            ("queue", QUEUE_SCHEMA, self.root / QUEUE_SCHEMA),
            ("jobs", JOBS_SCHEMA, self.root / JOBS_SCHEMA),
            ("optimize", OPTIMIZE_DOC_SCHEMA, self.root / OPTIMIZE_DOC_SCHEMA),
        )

    def _scan_disk(self) -> dict[str, Any]:
        """One full directory walk: per-namespace tallies plus orphans.

        The only place ``stats`` touches the filesystem; callers go
        through the TTL cache. Increments :attr:`stats_walks` so tests
        (and operators) can assert the cache is doing its job.
        """
        self.stats_walks += 1
        namespaces: dict[str, Any] = {}
        for key, schema, base in self._namespace_bases():
            documents = 0
            size = 0
            if base.is_dir():
                for path in base.rglob("*.json"):
                    try:
                        size += path.stat().st_size
                    except OSError:
                        continue  # deleted underneath us; skip
                    documents += 1
            namespaces[key] = {
                "schema": schema,
                "documents": documents,
                "bytes": size,
            }
        orphan_files = 0
        orphan_bytes = 0
        for path in self._orphan_candidates():
            try:
                orphan_bytes += path.stat().st_size
            except OSError:
                continue
            orphan_files += 1
        return {
            "namespaces": namespaces,
            "orphans": {"files": orphan_files, "bytes": orphan_bytes},
        }

    def _invalidate_stats(self) -> None:
        """Drop the cached disk snapshot (this process changed the disk)."""
        with self._stats_lock:
            self._stats_snapshot = None

    def stats(self, *, refresh: bool = False) -> dict[str, Any]:
        """Per-namespace document counts and bytes (operator visibility).

        Covers the six namespaces this store reads and writes — results
        (under the configured schema tag), sweep results, the
        logical-counts cache, the sweep work queue, the job journal, and
        optimize probe traces — plus the orphaned-file tally (leftover
        ``.tmp`` files from crashed writers and ``.lease`` files from
        dead workers, the population ``gc`` reclaims). The underlying
        directory walk is O(files), so the scan is cached for
        ``stats_ttl`` seconds: within the TTL, repeated calls (metrics
        scrapes, health probes) do no filesystem work at all. Writes,
        eviction, and gc from *this* process invalidate the cache, so
        the only staleness the TTL can hide is other processes' writes;
        pass ``refresh=True`` to force a walk. The ``memoryCache`` and
        ``evictions`` sections are this process's in-memory counters,
        always current.
        """
        now = time.monotonic()
        with self._stats_lock:
            disk = self._stats_snapshot
            if (
                refresh
                or disk is None
                or now - self._stats_taken >= self.stats_ttl
            ):
                disk = self._scan_disk()
                self._stats_snapshot = disk
                self._stats_taken = now
            evictions = dict(self._evictions)
        return {
            "root": str(self.root),
            "namespaces": {
                key: dict(value) for key, value in disk["namespaces"].items()
            },
            "orphans": dict(disk["orphans"]),
            "evictions": evictions,
            "memoryCache": self.memory_cache_stats(),
        }

    def memory_cache_stats(self) -> dict[str, Any]:
        """This process's read-through LRU counters (satellite visibility).

        ``hits``/``misses`` count :meth:`get` / :meth:`get_counts` calls
        answered from (respectively, falling through) the in-memory
        cache; ``entries`` is the current resident population. Counters
        are per-``ResultStore`` instance, not persisted.
        """
        return {
            "capacity": self._result_cache.capacity,
            "results": self._result_cache.stats(),
            "counts": self._counts_cache.stats(),
        }

    def eviction_stats(self) -> dict[str, int]:
        """Cumulative eviction tallies (cheap: counters, never a walk)."""
        with self._stats_lock:
            return dict(self._evictions)

    # -- garbage collection ------------------------------------------------

    def _orphan_candidates(self) -> Iterator[Path]:
        """Files eligible for ``gc``: writer leftovers and lease litter.

        ``.tmp`` files are atomic-write staging that a crash stranded
        (a live writer's tmp file exists only for the microseconds
        between ``mkstemp`` and ``os.replace``); ``.lease`` files under
        the queue namespace belong to workers that stopped heartbeating;
        ``.stale-*`` are lease-takeover tombstones. None of them is ever
        read as data, so removing old ones can only reclaim disk.
        """
        if not self.root.is_dir():
            return
        yield from self.root.rglob("*.tmp")
        queue_base = self.root / QUEUE_SCHEMA
        if queue_base.is_dir():
            yield from queue_base.rglob("*.lease")
            yield from queue_base.rglob(".*.stale-*")

    def gc(
        self,
        *,
        older_than_s: float = 3600.0,
        future_skew_s: float = DEFAULT_GC_FUTURE_SKEW,
    ) -> dict[str, Any]:
        """Remove orphaned ``.tmp`` and expired lease files; report bytes.

        Only files aged at least ``older_than_s`` seconds are touched,
        so in-flight writes and live leases (which are rewritten on
        every heartbeat, keeping their mtime fresh) are never collected.

        Clock contract: age is the local wall clock minus the file's
        mtime, which on a shared (or NFS) store may have been stamped by
        a machine whose clock disagrees with ours. Two protections make
        the comparison skew-tolerant rather than trusting raw wall time:

        * a file whose mtime is *ahead* of our clock by up to
          ``future_skew_s`` is treated as fresh and spared — a writer
          running slightly ahead (or our clock stepping backwards
          between its write and this gc) must not get its live files
          reaped;
        * a file whose mtime is ahead by *more* than ``future_skew_s``
          cannot be live work (no writer runs that far in the future) —
          it is clock-skew litter, collected like any expired orphan
          instead of being immortal (the raw ``now - older_than``
          cutoff would never reach it).

        Files whose mtime appears *old* are indistinguishable from
        genuinely old ones, so the residual contract is on the caller:
        keep ``older_than_s`` larger than the worst clock disagreement
        between writers sharing the store (the 3600 s default dwarfs
        realistic NTP drift). Returns ``{"removedFiles",
        "reclaimedBytes"}``; an unremovable file is skipped, never an
        error — gc on a shared store must be safe to run at any time,
        from any process. Documents are never gc candidates, so the
        read-through memory caches stay coherent by construction.
        """
        now = time.time()
        older = max(older_than_s, 0.0)
        skew = max(future_skew_s, 0.0)
        removed = 0
        reclaimed = 0
        for path in list(self._orphan_candidates()):
            try:
                stat = path.stat()
                age = now - stat.st_mtime
                if -skew <= age < older:
                    continue  # fresh (within tolerated skew): possibly live
                path.unlink()
            except OSError:
                continue  # vanished or unremovable; skip
            removed += 1
            reclaimed += stat.st_size
        if removed:
            self._invalidate_stats()
        return {
            "removedFiles": removed,
            "reclaimedBytes": reclaimed,
            "olderThanSeconds": older_than_s,
        }

    # -- eviction (bounded disk) -------------------------------------------

    #: Namespace keys :meth:`evict` may prune. Queue chunk records,
    #: leases, and journal entries are deliberately absent: they are
    #: live coordination state for in-flight sweeps, not re-derivable
    #: cache documents — evicting them would orphan running work rather
    #: than reclaim disk.
    EVICTABLE_NAMESPACES = ("results", "sweeps", "counts", "optimize")

    def _note_document_written(self, path: Path) -> None:
        """Bookkeeping after a successful document write.

        Invalidates the cached stats snapshot and, when a ``max_bytes``
        budget is configured, grows the running byte estimate and
        triggers eviction past the budget. The estimate is an upper
        bound (idempotent rewrites double-count), which only makes
        eviction run early; :meth:`evict` recomputes the exact total.
        """
        size = 0
        if self.max_bytes is not None:
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
        self._note_batch_written(size)

    def _note_batch_written(self, size: int) -> None:
        """Coalesced bookkeeping for one or many document writes.

        One stats invalidation, one byte-estimate update of ``size``
        (the batch's total on-disk growth), and at most one eviction
        check — regardless of how many documents the batch contained.
        """
        self._invalidate_stats()
        if self.max_bytes is None:
            return
        if self._evictable_bytes is None:
            self.evict()  # first write under a budget: measure and prune
            return
        with self._stats_lock:
            self._evictable_bytes += size
            over = self._evictable_bytes > self.max_bytes
        if over:
            self.evict()

    def evict(self, *, max_bytes: int | None = None) -> dict[str, Any]:
        """Prune document namespaces, oldest mtime first, to a byte budget.

        ``max_bytes`` defaults to the store's configured budget. The
        evictable population is every document under
        :data:`EVICTABLE_NAMESPACES`; queue chunks, leases, and journal
        entries are never touched (see ``EVICTABLE_NAMESPACES``). The
        LRU order is mtime — documents are immutable, so mtime is the
        write time: the policy drops the longest-stored documents first.
        Matching read-through memory-cache entries are invalidated, so a
        ``get`` after eviction misses and recomputes instead of serving
        a document the disk no longer has. Safe and idempotent on a
        shared store: an unremovable (or concurrently removed) file is
        skipped, and every removal is an ordinary cache miss to other
        processes. Returns ``{"evictedFiles", "evictedBytes",
        "totalBytes", "remainingBytes", "maxBytes"}``; cumulative
        tallies appear under ``evictions`` in :meth:`stats`.
        """
        limit = max_bytes if max_bytes is not None else self.max_bytes
        if limit is None:
            raise ValueError(
                "evict() needs a byte budget: pass max_bytes or construct "
                "the store with max_bytes="
            )
        if limit < 0:
            raise ValueError(f"max_bytes must be >= 0, got {limit}")
        entries: list[tuple[float, int, Path, str]] = []
        total = 0
        for key, _, base in self._namespace_bases():
            if key not in self.EVICTABLE_NAMESPACES or not base.is_dir():
                continue
            for path in base.rglob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # removed underneath us
                entries.append((stat.st_mtime, stat.st_size, path, key))
                total += stat.st_size
        before = total
        evicted_files = 0
        evicted_bytes = 0
        if total > limit:
            # Deterministic order: oldest first, path as the tiebreak so
            # concurrent evictors on one store agree on the victims.
            entries.sort(key=lambda entry: (entry[0], str(entry[2])))
            for _, size, path, key in entries:
                if total <= limit:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue  # vanished or unremovable; skip
                total -= size
                evicted_files += 1
                evicted_bytes += size
                if key == "results":
                    self._result_cache.remove(path.stem)
                elif key == "counts":
                    self._counts_cache.remove(path.stem)
        with self._stats_lock:
            self._evictions["files"] += evicted_files
            self._evictions["bytes"] += evicted_bytes
            self._evictable_bytes = total
            if evicted_files:
                self._stats_snapshot = None
        return {
            "evictedFiles": evicted_files,
            "evictedBytes": evicted_bytes,
            "totalBytes": before,
            "remainingBytes": total,
            "maxBytes": limit,
        }
