"""Physical qubit parameter dataclass and instruction sets."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum
from typing import Any


class InstructionSet(str, Enum):
    """Primitive instruction set of the physical qubit technology."""

    GATE_BASED = "gate_based"
    MAJORANA = "majorana"


# Times are in nanoseconds, error rates are probabilities per operation.
_TIME_FIELDS = (
    "one_qubit_measurement_time_ns",
    "one_qubit_gate_time_ns",
    "two_qubit_gate_time_ns",
    "t_gate_time_ns",
    "two_qubit_joint_measurement_time_ns",
)
_ERROR_FIELDS = (
    "one_qubit_measurement_error_rate",
    "one_qubit_gate_error_rate",
    "two_qubit_gate_error_rate",
    "t_gate_error_rate",
    "two_qubit_joint_measurement_error_rate",
    "idle_error_rate",
)


@dataclass(frozen=True)
class PhysicalQubitParams:
    """Operation times and error rates of a physical qubit technology.

    Gate-based qubits use the gate-time/error fields; Majorana qubits use
    the measurement fields (their Cliffords are measurement-based) plus
    the T-gate error rate for the noisy non-Clifford operation. Fields not
    meaningful for an instruction set may be left at ``None``.
    """

    name: str
    instruction_set: InstructionSet
    one_qubit_measurement_time_ns: float
    one_qubit_measurement_error_rate: float
    t_gate_error_rate: float
    # Gate-based fields.
    one_qubit_gate_time_ns: float | None = None
    one_qubit_gate_error_rate: float | None = None
    two_qubit_gate_time_ns: float | None = None
    two_qubit_gate_error_rate: float | None = None
    t_gate_time_ns: float | None = None
    # Majorana fields.
    two_qubit_joint_measurement_time_ns: float | None = None
    two_qubit_joint_measurement_error_rate: float | None = None
    idle_error_rate: float | None = None

    def __post_init__(self) -> None:
        for f in _TIME_FIELDS:
            value = getattr(self, f)
            if value is not None and value <= 0:
                raise ValueError(f"{f} must be positive, got {value}")
        for f in _ERROR_FIELDS:
            value = getattr(self, f)
            if value is not None and not 0.0 <= value < 1.0:
                raise ValueError(f"{f} must be in [0, 1), got {value}")
        if self.instruction_set is InstructionSet.GATE_BASED:
            required = (
                "one_qubit_gate_time_ns",
                "one_qubit_gate_error_rate",
                "two_qubit_gate_time_ns",
                "two_qubit_gate_error_rate",
                "t_gate_time_ns",
            )
        else:
            required = (
                "two_qubit_joint_measurement_time_ns",
                "two_qubit_joint_measurement_error_rate",
            )
        missing = [f for f in required if getattr(self, f) is None]
        if missing:
            raise ValueError(
                f"{self.instruction_set.value} qubit model {self.name!r} is "
                f"missing required parameters: {missing}"
            )

    @property
    def clifford_error_rate(self) -> float:
        """Worst-case error rate of a Clifford-level primitive.

        This is the physical error rate ``p`` entering the QEC logical
        error model. For gate-based qubits it is the max over gate and
        measurement errors; for Majorana qubits the max over single and
        joint measurement errors.
        """
        if self.instruction_set is InstructionSet.GATE_BASED:
            assert self.one_qubit_gate_error_rate is not None
            assert self.two_qubit_gate_error_rate is not None
            return max(
                self.one_qubit_measurement_error_rate,
                self.one_qubit_gate_error_rate,
                self.two_qubit_gate_error_rate,
            )
        assert self.two_qubit_joint_measurement_error_rate is not None
        return max(
            self.one_qubit_measurement_error_rate,
            self.two_qubit_joint_measurement_error_rate,
        )

    def formula_environment(self, code_distance: int) -> dict[str, float]:
        """Variable bindings exposed to QEC/distillation formulas.

        Names follow the tool's camelCase convention so published custom
        scheme strings work verbatim.
        """
        env: dict[str, float] = {
            "codeDistance": float(code_distance),
            "oneQubitMeasurementTime": self.one_qubit_measurement_time_ns,
            "oneQubitMeasurementErrorRate": self.one_qubit_measurement_error_rate,
            "tGateErrorRate": self.t_gate_error_rate,
            "cliffordErrorRate": self.clifford_error_rate,
        }
        optional = {
            "oneQubitGateTime": self.one_qubit_gate_time_ns,
            "oneQubitGateErrorRate": self.one_qubit_gate_error_rate,
            "twoQubitGateTime": self.two_qubit_gate_time_ns,
            "twoQubitGateErrorRate": self.two_qubit_gate_error_rate,
            "tGateTime": self.t_gate_time_ns,
            "twoQubitJointMeasurementTime": self.two_qubit_joint_measurement_time_ns,
            "twoQubitJointMeasurementErrorRate": self.two_qubit_joint_measurement_error_rate,
            "idleErrorRate": self.idle_error_rate,
        }
        env.update({k: v for k, v in optional.items() if v is not None})
        return env

    def customized(self, **overrides: Any) -> "PhysicalQubitParams":
        """Copy with a subset of parameters replaced (paper IV-C.1).

        >>> fast = QUBIT_GATE_NS_E3.customized(two_qubit_gate_time_ns=20.0)
        """
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ValueError(f"unknown qubit parameters: {sorted(unknown)}")
        if "name" not in overrides:
            overrides["name"] = f"{self.name} (customized)"
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["instruction_set"] = self.instruction_set.value
        return {k: v for k, v in data.items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PhysicalQubitParams":
        """Inverse of :meth:`to_dict`; validates field names and values."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown PhysicalQubitParams fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        try:
            kwargs["instruction_set"] = InstructionSet(kwargs["instruction_set"])
        except KeyError:
            raise ValueError("qubit parameters need an 'instruction_set'") from None
        except ValueError:
            raise ValueError(
                f"unknown instruction_set {kwargs['instruction_set']!r}; "
                f"expected one of {[i.value for i in InstructionSet]}"
            ) from None
        return cls(**kwargs)
