"""Out-of-place carry-lookahead-style addition (after quant-ph/0406142).

The ripple adder of :mod:`repro.arithmetic.adders` is in-place and has the
minimum AND count (``m-1``); this module provides the complementary
*out-of-place* form ``sum = a + b`` that preserves both inputs, computing
every carry into its own ancilla from (generate, propagate) pairs:

    g_i = a_i AND b_i,   p_i = a_i XOR b_i,
    G_{0..i} = g_i OR (p_i AND G_{0..i-1})

with OR realized as an X-conjugated AND. The whole carry computation is
recorded and undone by the tape adjoint (Bennett-clean), so inputs are
preserved and all ancillas return to zero. The prefix combine is written
as a left-to-right scan; Draper et al.'s Brent–Kung tree evaluates the
same combines in Theta(log n) layers with the same Theta(n) AND count —
and the paper's cost model prices operation *counts*, not wall-clock
circuit depth, so the scan and the tree are indistinguishable to the
estimator (noted in DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

from ..ir import Builder
from .tally import GateTally


def _or_compute(builder: Builder, a: int, b: int) -> int:
    """Allocate and return a qubit holding ``a OR b`` (1 AND)."""
    builder.x(a)
    builder.x(b)
    t = builder.and_compute(a, b)
    builder.x(t)
    builder.x(a)
    builder.x(b)
    return t


def add_lookahead(
    builder: Builder,
    a: Sequence[int],
    b: Sequence[int],
    total: Sequence[int],
) -> None:
    """Out-of-place ``total ^= a + b`` for equal-length a, b.

    ``total`` must have ``len(a) + 1`` qubits (the top is the carry-out)
    and is typically zeroed. Inputs are preserved; all internal ancillas
    are uncomputed (the carry tree via its adjoint tape).
    """
    n = len(a)
    if len(b) != n:
        raise ValueError(f"operand lengths differ: {n} vs {len(b)}")
    if len(total) != n + 1:
        raise ValueError(
            f"sum register needs {n + 1} qubits (carry-out included), got {len(total)}"
        )
    if n == 0:
        return

    builder.start_recording()
    # Leaf (generate, propagate) pairs, in ancillas so inputs stay intact.
    generate = [builder.and_compute(a[i], b[i]) for i in range(n)]
    propagate = []
    for i in range(n):
        p = builder.allocate()
        builder.cx(a[i], p)
        builder.cx(b[i], p)
        propagate.append(p)

    # Brent-Kung upsweep/downsweep producing carry-in c_i for each position.
    # carries[i] = carry INTO position i; c_0 = None (zero).
    carries = _prefix_carries(builder, generate, propagate)
    tape = builder.stop_recording()

    # Sum writes: s_i = a_i ^ b_i ^ c_i ; s_n = carry out.
    for i in range(n):
        builder.cx(a[i], total[i])
        builder.cx(b[i], total[i])
        if carries[i] is not None:
            builder.cx(carries[i], total[i])
    builder.cx(carries[n], total[n])

    builder.emit_adjoint(tape)


def _prefix_carries(
    builder: Builder,
    generate: list[int],
    propagate: list[int],
) -> list[int | None]:
    """Carry-in qubits for positions 0..n via a sequential prefix scan.

    Kept deliberately simple and obviously correct: prefix pairs are
    combined left to right, each step materializing
    ``G_{0..i} = g_i OR (p_i AND G_{0..i-1})`` with two ANDs. (The
    classical Brent–Kung tree would reuse sub-prefixes to reach
    Theta(log n) layers with the same Theta(n) AND count; since the
    estimator costs count rather than circuit depth, the scan form keeps
    the AND count identical while staying transparent.)
    """
    n = len(generate)
    carries: list[int | None] = [None] * (n + 1)
    running = generate[0]  # G_{0..0}
    carries[1] = running
    for i in range(1, n):
        via = builder.and_compute(propagate[i], running)
        running = _or_compute(builder, generate[i], via)
        carries[i + 1] = running
    return carries


def add_lookahead_counts(n: int) -> GateTally:
    """Gate tally of :func:`add_lookahead` (mirrors the emitter).

    Forward: ``n`` leaf ANDs + ``2(n-1)`` scan ANDs; adjoint converts each
    AND to a measurement and each (absent) uncompute back, so the clean
    total is ``3n - 2`` CCiX and ``3n - 2`` measurements for ``n >= 1``.
    """
    if n < 1:
        return GateTally()
    forward_ands = n + 2 * (n - 1)
    return GateTally(ccix=forward_ands, measurements=forward_ands)


def add_lookahead_ancillas(n: int) -> int:
    """Peak ancillas: n generates + n propagates + 2(n-1) scan qubits."""
    if n < 1:
        return 0
    return 2 * n + 2 * (n - 1)
