"""Tests for the staged pipeline, especially the C<->D fixed-point routine.

The fixed point (depth stretch <-> code distance) was previously reachable
only end-to-end through ``estimate``; these tests drive
``solve_code_distance_fixed_point`` directly with synthetic factories and
lookup functions to pin down convergence, the non-convergence error, and
the ``max_t_factories`` depth-stretch branch.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro import LogicalCounts, estimate, qubit_params
from repro.distillation import TFactory
from repro.estimator import EstimationError, FixedPointSolution
from repro.estimator.stages import (
    build_context,
    run_pipeline,
    solve_code_distance_fixed_point,
    stage_assemble,
    stage_budget_and_layout,
    stage_design_factory,
    stage_fixed_point,
)

MAJ = qubit_params("qubit_maj_ns_e4")

WORKLOAD = LogicalCounts(
    num_qubits=100, t_count=10**5, ccz_count=10**5, measurement_count=10**4
)


def make_factory(
    *, duration_ns: float, output_t_states: int = 1, physical_qubits: int = 1000
) -> TFactory:
    """A synthetic factory; the fixed point only reads these fields."""
    return TFactory(
        rounds=(),
        physical_qubits=physical_qubits,
        duration_ns=duration_ns,
        output_t_states=output_t_states,
        output_error_rate=1e-12,
        input_t_error_rate=1e-4,
    )


def constant_lookup(cycle_time_ns: float):
    """A lookup whose logical qubit has a fixed cycle time."""
    return lambda required_error: SimpleNamespace(cycle_time_ns=cycle_time_ns)


class TestFixedPointConvergence:
    def test_no_factory_returns_base_depth(self):
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=10,
            base_depth=100,
            num_t_states=0,
            factory=None,
            max_t_factories=None,
            logical_qubit_for_error=constant_lookup(100.0),
        )
        assert solution.depth == 100
        assert solution.runtime_ns == 100 * 100.0
        assert solution.copies == 0
        assert solution.runs_per_copy == 0
        assert solution.iterations == 1

    def test_factory_fits_at_base_depth(self):
        # runtime 10_000 ns, factory takes 1_000 ns -> 10 runs per copy.
        factory = make_factory(duration_ns=1_000.0, output_t_states=1)
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=10,
            base_depth=100,
            num_t_states=50,
            factory=factory,
            max_t_factories=None,
            logical_qubit_for_error=constant_lookup(100.0),
        )
        assert solution.iterations == 1
        assert solution.total_runs == 50
        assert solution.runs_per_copy == 10
        assert solution.copies == 5

    def test_short_program_stretched_to_fit_one_run(self):
        # runtime 1_000 ns < factory duration 50_000 ns: the depth must be
        # stretched until one distillation run fits.
        factory = make_factory(duration_ns=50_000.0)
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=10,
            base_depth=10,
            num_t_states=1,
            factory=factory,
            max_t_factories=None,
            logical_qubit_for_error=constant_lookup(100.0),
        )
        assert solution.iterations == 2
        assert solution.depth == math.ceil(50_000.0 / 100.0)
        assert solution.runs_per_copy == 1
        assert solution.copies == 1

    def test_result_type_is_fixed_point_solution(self):
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=1,
            base_depth=1,
            num_t_states=0,
            factory=None,
            max_t_factories=None,
            logical_qubit_for_error=constant_lookup(1.0),
        )
        assert isinstance(solution, FixedPointSolution)


class TestMaxTFactoriesBranch:
    def test_cap_stretches_depth(self):
        # Uncapped: 100 runs over 10 runs/copy -> 10 copies. Capping at 2
        # copies forces 50 runs per copy -> depth 50_000 ns / 100 ns.
        factory = make_factory(duration_ns=1_000.0, output_t_states=1)
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=10,
            base_depth=100,
            num_t_states=100,
            factory=factory,
            max_t_factories=2,
            logical_qubit_for_error=constant_lookup(100.0),
        )
        assert solution.copies == 2
        assert solution.iterations == 2
        assert solution.depth == math.ceil(50 * 1_000.0 / 100.0)
        # The capped copies still deliver every T state in time.
        produced = solution.copies * solution.runs_per_copy * factory.output_t_states
        assert produced >= 100

    def test_cap_not_binding_converges_first_iteration(self):
        factory = make_factory(duration_ns=1_000.0, output_t_states=1)
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=10,
            base_depth=100,
            num_t_states=50,
            factory=factory,
            max_t_factories=100,
            logical_qubit_for_error=constant_lookup(100.0),
        )
        assert solution.iterations == 1
        assert solution.copies == 5

    def test_cap_equal_to_needed_copies_converges_without_stretch(self):
        # The cap exactly matches the copies the base depth needs:
        # converge immediately with no depth stretch.
        factory = make_factory(duration_ns=1_000.0, output_t_states=10)
        solution = solve_code_distance_fixed_point(
            logical_budget=1e-3,
            logical_qubits=10,
            base_depth=100,
            num_t_states=100,  # 10 runs; 10 fit per copy -> 1 copy anyway
            factory=factory,
            max_t_factories=1,
            logical_qubit_for_error=constant_lookup(100.0),
        )
        assert solution.copies == 1
        assert solution.iterations == 1


class TestNonConvergence:
    def test_iteration_cap_raises_estimation_error(self):
        # A cycle time that shrinks on every lookup keeps the runtime below
        # one factory duration forever: the stretch never settles.
        cycle = {"value": 100.0}

        def shrinking_lookup(required_error):
            cycle["value"] /= 2.0
            return SimpleNamespace(cycle_time_ns=cycle["value"])

        factory = make_factory(duration_ns=1e9)
        with pytest.raises(EstimationError, match="did not converge"):
            solve_code_distance_fixed_point(
                logical_budget=1e-3,
                logical_qubits=10,
                base_depth=10,
                num_t_states=1,
                factory=factory,
                max_t_factories=None,
                logical_qubit_for_error=shrinking_lookup,
            )

    def test_max_iterations_parameter_caps_work(self):
        # The short-program stretch needs 2 iterations; capping at 1 must
        # surface the non-convergence error instead of looping.
        factory = make_factory(duration_ns=50_000.0)
        with pytest.raises(EstimationError, match="did not converge"):
            solve_code_distance_fixed_point(
                logical_budget=1e-3,
                logical_qubits=10,
                base_depth=10,
                num_t_states=1,
                factory=factory,
                max_t_factories=None,
                logical_qubit_for_error=constant_lookup(100.0),
                max_iterations=1,
            )

    def test_lookup_failure_wrapped_as_estimation_error(self):
        def failing_lookup(required_error):
            raise ValueError("distance unreachable")

        with pytest.raises(EstimationError, match="distance unreachable"):
            solve_code_distance_fixed_point(
                logical_budget=1e-3,
                logical_qubits=10,
                base_depth=10,
                num_t_states=0,
                factory=None,
                max_t_factories=None,
                logical_qubit_for_error=failing_lookup,
            )


class TestStageComposition:
    """The staged pipeline composes to exactly the monolithic estimate()."""

    def test_manual_composition_matches_estimate(self):
        ctx = build_context(WORKLOAD, MAJ, budget=1e-3)
        partition, alg = stage_budget_and_layout(ctx)
        factory = stage_design_factory(ctx, partition, alg.t_states)
        solution = stage_fixed_point(ctx, partition, alg, factory)
        manual = stage_assemble(ctx, partition, alg, factory, solution)
        assert manual.to_dict() == estimate(WORKLOAD, MAJ, budget=1e-3).to_dict()

    def test_run_pipeline_matches_estimate(self):
        ctx = build_context(WORKLOAD, MAJ, budget=1e-4)
        assert (
            run_pipeline(ctx).to_dict()
            == estimate(WORKLOAD, MAJ, budget=1e-4).to_dict()
        )

    def test_context_applies_defaults(self):
        ctx = build_context(WORKLOAD, MAJ)
        assert ctx.scheme.name == "floquet_code"
        assert ctx.budget.total == 1e-3
        assert ctx.constraints.max_t_factories is None

    def test_incompatible_scheme_rejected_at_context_build(self):
        from repro.qec import FLOQUET_CODE

        gate = qubit_params("qubit_gate_ns_e3")
        with pytest.raises(EstimationError, match="majorana"):
            build_context(WORKLOAD, gate, scheme=FLOQUET_CODE)
