"""Fuzz tests: random circuits through every IR-layer tool at once."""

from __future__ import annotations

import pytest

from repro.ir import CircuitBuilder, trace, validate
from repro.ir.random_circuits import (
    DEFAULT_WEIGHTS,
    RandomCircuitGenerator,
    random_circuit,
)
from repro.layout import layout_resources
from repro.isa import lower
from repro.qir import emit_qir, parse_qir
from repro.sim import run_reversible

SEEDS = list(range(20))


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = random_circuit(200, seed=7)
        b = random_circuit(200, seed=7)
        assert list(a.instructions) == list(b.instructions)
        c = random_circuit(200, seed=8)
        assert list(a.instructions) != list(c.instructions)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_circuits_are_valid(self, seed):
        validate(random_circuit(300, seed=seed))

    def test_custom_mix(self):
        generator = RandomCircuitGenerator(seed=1, weights={"t": 1.0})
        counts = generator.generate(50).logical_counts()
        assert counts.t_count == 50
        assert counts.ccz_count == 0


class TestCrossValidation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_reversible_circuits_simulate(self, seed):
        """The reversible mix always runs clean on the simulator."""
        circuit = random_circuit(300, seed=seed, reversible_only=True)
        validate(circuit)
        run_reversible(circuit)  # raises on any contract violation

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qir_round_trip_preserves_counts(self, seed):
        circuit = random_circuit(200, seed=seed)
        reparsed = parse_qir(emit_qir(circuit))
        assert reparsed.logical_counts() == circuit.logical_counts()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_isa_lowering_agrees_with_layout(self, seed):
        circuit = random_circuit(250, seed=seed)
        counts = circuit.logical_counts()
        budget = 1e-3 if counts.rotation_count else 0.0
        program = lower(circuit, budget)
        layout = layout_resources(counts, budget)
        assert program.total_t_states == layout.t_states
        assert program.depth == layout.logical_depth

    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_adjoint_of_fuzzed_permutation_restores_zero(self, seed):
        """Recording a random permutation circuit and replaying its adjoint
        returns the simulator to all-zeros."""
        mix = {
            k: v
            for k, v in DEFAULT_WEIGHTS.items()
            if k in ("x", "cx", "swap", "ccx")
        }
        generator = RandomCircuitGenerator(seed=seed, weights=mix)
        source = generator.generate(150)

        from repro.ir.ops import Op

        builder = CircuitBuilder()
        mapping: dict[int, int] = {}
        # Allocate the operand qubits outside the recording so the adjoint
        # undoes only the gates, leaving the registers inspectable.
        for op, q0, *_ in source.instructions:
            if op == Op.ALLOC:
                mapping[q0] = builder.allocate()
        builder.start_recording()
        for op, q0, q1, q2, _param in source.instructions:
            if op == Op.ALLOC:
                continue
            if op == Op.X:
                builder.x(mapping[q0])
            elif op == Op.CX:
                builder.cx(mapping[q0], mapping[q1])
            elif op == Op.SWAP:
                builder.swap(mapping[q0], mapping[q1])
            elif op == Op.CCX:
                builder.ccx(mapping[q0], mapping[q1], mapping[q2])
            else:  # pragma: no cover - the mix excludes everything else
                raise AssertionError(f"unexpected op {op}")
        tape = builder.stop_recording()
        builder.emit_adjoint(tape)
        circuit = builder.finish()
        validate(circuit)
        sim = run_reversible(circuit)
        for q in mapping.values():
            assert sim.bit(q) == 0
