"""Error-budget specification and partitioning (paper Sec. IV-C.3).

The total error budget ``eps`` is the maximum allowed failure probability
of the whole algorithm. It is split into three parts that independently
constrain different layers of the stack:

* ``logical`` — budget for logical (QEC) errors; drives the code distance.
* ``t_states`` — budget for faulty distilled T states; drives the factory.
* ``rotations`` — budget for imperfect rotation synthesis; drives the
  number of T gates per rotation.

By default the total is split into equal thirds, matching the tool. When
the program contains no arbitrary rotations the rotation share is
redistributed equally to the other two parts so the budget is not wasted
(the tool does the same re-normalization). Users may also pin each part
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ErrorBudgetPartition:
    """A concrete three-way split of the total error budget."""

    logical: float
    t_states: float
    rotations: float

    def __post_init__(self) -> None:
        for name in ("logical", "t_states", "rotations"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} budget must be in [0, 1), got {value}")
        if self.logical <= 0.0:
            raise ValueError("logical error budget must be positive")
        if self.total >= 1.0:
            raise ValueError(f"total error budget must be < 1, got {self.total}")

    @property
    def total(self) -> float:
        return self.logical + self.t_states + self.rotations

    def to_dict(self) -> dict[str, float]:
        return {
            "logical": self.logical,
            "tStates": self.t_states,
            "rotations": self.rotations,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "ErrorBudgetPartition":
        known = {"logical", "tStates", "rotations"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown error budget fields: {sorted(unknown)}")
        missing = known - set(data)
        if missing:
            raise ValueError(
                f"explicit error budget missing fields: {sorted(missing)}"
            )
        return cls(
            logical=data["logical"],
            t_states=data["tStates"],
            rotations=data["rotations"],
        )


@dataclass(frozen=True)
class ErrorBudget:
    """User-facing error-budget input.

    Either give ``total`` alone (default split), or give all three parts
    explicitly via :meth:`explicit`.
    """

    total: float = 1e-3
    _explicit: ErrorBudgetPartition | None = None

    def __post_init__(self) -> None:
        if self._explicit is None and not 0.0 < self.total < 1.0:
            raise ValueError(f"total error budget must be in (0, 1), got {self.total}")

    @classmethod
    def explicit(
        cls, *, logical: float, t_states: float, rotations: float
    ) -> "ErrorBudget":
        """Budget with user-pinned parts (their sum is the total)."""
        part = ErrorBudgetPartition(logical, t_states, rotations)
        return cls(total=part.total, _explicit=part)

    def to_dict(self) -> dict[str, object]:
        """JSON form: ``{"total": t}`` or the explicit three-way split."""
        if self._explicit is not None:
            return dict(self._explicit.to_dict())
        return {"total": self.total}

    @classmethod
    def from_dict(cls, data: "dict[str, object] | float") -> "ErrorBudget":
        """Inverse of :meth:`to_dict`; also accepts a bare total number."""
        if isinstance(data, (int, float)) and not isinstance(data, bool):
            return cls(total=float(data))
        if not isinstance(data, dict):
            raise ValueError(
                f"error budget must be a number or an object, got {type(data).__name__}"
            )
        if set(data) == {"total"}:
            total = data["total"]
            if not isinstance(total, (int, float)) or isinstance(total, bool):
                raise ValueError(f"budget total must be a number, got {total!r}")
            return cls(total=float(total))
        part = ErrorBudgetPartition.from_dict(data)  # type: ignore[arg-type]
        return cls(total=part.total, _explicit=part)

    def partition(self, *, has_rotations: bool, has_t_states: bool) -> ErrorBudgetPartition:
        """Split the budget for a program with the given features.

        Parameters
        ----------
        has_rotations:
            Whether the program contains arbitrary rotations. If not, the
            default split redistributes the rotation share.
        has_t_states:
            Whether the program consumes any T states (T/CCZ/CCiX or
            rotations). If not, everything goes to the logical share.
        """
        if self._explicit is not None:
            return self._explicit
        if not has_t_states:
            return ErrorBudgetPartition(self.total, 0.0, 0.0)
        if not has_rotations:
            half = self.total / 2.0
            return ErrorBudgetPartition(half, half, 0.0)
        third = self.total / 3.0
        return ErrorBudgetPartition(third, third, third)
