"""Qubit-versus-runtime frontier estimation (paper Sec. III-D, IV-C.4).

Sweeping the logical-depth slowdown factor trades runtime for T-factory
parallelism: a slower program needs fewer simultaneous factory copies, so
it uses fewer physical qubits. :func:`estimate_frontier` evaluates a
geometric ladder of slowdown factors and returns the Pareto-optimal
(physical qubits, runtime) points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..budget import ErrorBudget
from ..qec import QECScheme
from ..qubits import PhysicalQubitParams
from .constraints import Constraints
from .pipeline import EstimationError, estimate
from .result import PhysicalResourceEstimates


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto point: the estimate obtained at a given slowdown."""

    logical_depth_factor: float
    estimates: PhysicalResourceEstimates

    @property
    def physical_qubits(self) -> int:
        return self.estimates.physical_qubits

    @property
    def runtime_seconds(self) -> float:
        return self.estimates.runtime_seconds


def estimate_frontier(
    program: object,
    qubit: PhysicalQubitParams,
    *,
    scheme: QECScheme | None = None,
    budget: ErrorBudget | float = 1e-3,
    depth_factors: Sequence[float] | None = None,
    **estimate_kwargs: object,
) -> list[FrontierPoint]:
    """Estimate the Pareto frontier of qubits vs runtime.

    Parameters
    ----------
    depth_factors:
        Slowdown factors to evaluate; defaults to a geometric ladder
        ``1, 2, 4, ..., 1024``.

    Returns the Pareto-optimal points sorted by increasing runtime. Points
    where estimation fails (e.g. a constraint violation) are skipped.
    """
    if depth_factors is None:
        depth_factors = [float(2**k) for k in range(11)]
    if not depth_factors:
        raise ValueError("depth_factors must not be empty")

    points: list[FrontierPoint] = []
    for factor in depth_factors:
        try:
            result = estimate(
                program,
                qubit,
                scheme=scheme,
                budget=budget,
                constraints=Constraints(logical_depth_factor=factor),
                **estimate_kwargs,  # type: ignore[arg-type]
            )
        except EstimationError:
            continue
        points.append(FrontierPoint(logical_depth_factor=factor, estimates=result))

    points.sort(key=lambda pt: (pt.runtime_seconds, pt.physical_qubits))
    frontier: list[FrontierPoint] = []
    for pt in points:
        if all(pt.physical_qubits < kept.physical_qubits for kept in frontier):
            frontier.append(pt)
    return frontier
