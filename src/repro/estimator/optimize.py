"""Adaptive inverse design: goal-directed search over spec space.

The sweep layer answers "what does this configuration cost?"; production
users ask the inverse — "cheapest configuration with runtime <= 1 day",
"min qubits for RSA-2048 on this hardware". An :class:`OptimizeSpec` is
the declarative form of one such question (mirroring
:class:`~repro.estimator.sweep.SweepSpec`): a ``base`` spec document, one
or two search *axes* over ``range``/``geom`` ladders or registry names,
an *objective* from the frontier vocabulary
(:data:`~repro.estimator.sweep.FRONTIER_OBJECTIVES`), and declarative
*constraints* (``maxRuntime_s``, ``maxPhysicalQubits``).

:func:`run_optimize` answers it *adaptively* instead of densely gridding:
it exploits the monotonicity invariants hypothesis-asserted in
``tests/test_invariants.py`` — runtime is monotone in the error budget
with free T-factory parallelism, physical qubits are monotone under
``maxTFactories == 1`` — to bisect constrained axes toward the
feasibility boundary and walk objective plateaus to the exact point the
dense grid would pick, falling back to bounded local grid refinement on
axes with no proven monotone structure. The contract is *answer
equality*: on monotone problems the optimizer returns exactly the point
set a dense sweep plus :func:`reduce_answer` would, in O(log) engine
evaluations instead of O(grid).

Every probe batch goes through :func:`~repro.estimator.spec.run_specs`,
so the result store, the counts namespace, and the vectorized kernel make
repeated and resumed searches warm; with ``executor="queue"`` probe
batches dispatch through the crash-safe lease queue instead. The probe
trace (every evaluated spec hash + verdict) persists after every round as
a content-addressed ``repro-optimize-v1`` store document keyed on
:meth:`OptimizeSpec.content_hash` — an interrupted optimize resumes
bit-for-bit (probes re-answer from the result store; the serialized
result carries no execution provenance), and re-submitting an equivalent
spec answers from the store with zero evaluations.

Optimize documents are JSON (the ``repro optimize`` CLI subcommand and
the service's ``POST /v1/optimize`` job API both accept them)::

    {
      "base": {"program": {"name": "rsa_2048"}, "budget": 1e-3,
               "constraints": {"maxTFactories": 1}},
      "axes": [
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]},
        {"field": "budget", "geom": {"start": 1e-6, "factor": 2, "count": 128}}
      ],
      "objective": "min-qubits",
      "constraints": {"maxRuntime_s": 86400}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Mapping, Sequence

from .result import PhysicalResourceEstimates
from .spec import run_specs
from .store import OPTIMIZE_DOC_SCHEMA
from .sweep import (
    FRONTIER_OBJECTIVES,
    SweepAxis,
    SweepSpec,
    pareto_min_indices,
    run_sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry import Registry
    from .batch import EstimateCache
    from .engine import ExecutionEngine
    from .store import ResultStore

__all__ = [
    "OPTIMIZE_SCHEMA",
    "OptimizeConstraints",
    "OptimizeProbe",
    "OptimizeProgress",
    "OptimizeResult",
    "OptimizeSpec",
    "reduce_answer",
    "run_optimize",
]

#: Version tag of the optimize canonical form (hashes, serialized
#: results, the store's probe-trace namespace).
OPTIMIZE_SCHEMA = OPTIMIZE_DOC_SCHEMA

#: Columns at or below this length are probed exhaustively — below it
#: adaptive bookkeeping costs more than it saves, and exhaustive columns
#: make the answer exact regardless of monotone structure.
EXHAUSTIVE_LIMIT = 16

#: Metric names the objective/constraint vocabulary draws from.
_METRIC_RUNTIME = "runtime_s"
_METRIC_QUBITS = "physicalQubits"

#: objective -> (primary metric, secondary tie-break metric), matching
#: the dense sweep's ``min-*`` frontier tie-breaking exactly.
_OBJECTIVE_METRICS = {
    "min-qubits": (_METRIC_QUBITS, _METRIC_RUNTIME),
    "min-runtime": (_METRIC_RUNTIME, _METRIC_QUBITS),
}


def _metric(result: PhysicalResourceEstimates, name: str) -> float:
    if name == _METRIC_RUNTIME:
        return result.runtime_seconds
    if name == _METRIC_QUBITS:
        return float(result.physical_qubits)
    raise ValueError(f"unknown metric {name!r}")  # pragma: no cover


@dataclass(frozen=True)
class OptimizeConstraints:
    """Declarative feasibility bounds on the answer's metrics.

    Both are inclusive upper bounds; ``None`` means unconstrained. These
    constrain the *answer* (which probed points count as feasible) — the
    spec-level :class:`~repro.estimator.constraints.Constraints` inside
    ``base`` constrain the *estimator* per point, as everywhere else.
    """

    max_runtime_s: float | None = None
    max_physical_qubits: float | None = None

    def __post_init__(self) -> None:
        for name, value in (
            ("maxRuntime_s", self.max_runtime_s),
            ("maxPhysicalQubits", self.max_physical_qubits),
        ):
            if value is None:
                continue
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value <= 0
            ):
                raise ValueError(
                    f"constraint {name!r} must be a positive number, got {value!r}"
                )

    def bounds(self) -> list[tuple[str, float]]:
        """The active constraints as (metric name, inclusive bound)."""
        out: list[tuple[str, float]] = []
        if self.max_runtime_s is not None:
            out.append((_METRIC_RUNTIME, float(self.max_runtime_s)))
        if self.max_physical_qubits is not None:
            out.append((_METRIC_QUBITS, float(self.max_physical_qubits)))
        return out

    def satisfied(self, result: PhysicalResourceEstimates) -> bool:
        return all(_metric(result, name) <= bound for name, bound in self.bounds())

    def to_dict(self) -> dict[str, Any]:
        return {
            "maxRuntime_s": self.max_runtime_s,
            "maxPhysicalQubits": self.max_physical_qubits,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "OptimizeConstraints":
        if not isinstance(data, dict):
            raise ValueError(
                f"optimize 'constraints' must be a JSON object, got {data!r}"
            )
        unknown = set(data) - {"maxRuntime_s", "maxPhysicalQubits"}
        if unknown:
            raise ValueError(f"unknown optimize constraints {sorted(unknown)}")
        return cls(
            max_runtime_s=data.get("maxRuntime_s"),
            max_physical_qubits=data.get("maxPhysicalQubits"),
        )


@dataclass(frozen=True, eq=False)
class OptimizeSpec:
    """A declarative inverse-design question over a one- or two-axis grid.

    ``axes``/``base`` have exactly the sweep vocabulary (dotted field
    paths, ``values``/``range``/``geom``, registry-name sugar); the
    implied search space is the cartesian grid
    (:meth:`sweep_spec` is the equivalent dense sweep). ``label`` is
    display metadata, excluded from :meth:`content_hash`.
    """

    axes: tuple[SweepAxis, ...]
    objective: str
    base: Mapping[str, Any] = field(default_factory=dict)
    constraints: OptimizeConstraints = field(default_factory=OptimizeConstraints)
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not 1 <= len(self.axes) <= 2:
            raise ValueError(
                f"an optimize takes one or two axes, got {len(self.axes)}"
            )
        if self.objective not in FRONTIER_OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"available: {list(FRONTIER_OBJECTIVES)}"
            )
        if not isinstance(self.constraints, OptimizeConstraints):
            raise ValueError(
                "optimize constraints must be an OptimizeConstraints, got "
                f"{type(self.constraints).__name__}"
            )
        # The dense-grid equivalent validates axes and base eagerly and
        # owns the expansion every other method shares.
        sweep = SweepSpec(axes=self.axes, base=self.base, mode="cartesian")
        object.__setattr__(self, "base", sweep.base)
        object.__setattr__(self, "_sweep", sweep)

    def sweep_spec(self) -> SweepSpec:
        """The equivalent dense sweep (the grid this search refines over)."""
        return self._sweep  # type: ignore[attr-defined]

    def num_points(self) -> int:
        return self.sweep_spec().num_points()

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": OPTIMIZE_SCHEMA,
            "base": json.loads(json.dumps(dict(self.base))),
            "axes": [axis.to_dict() for axis in self.axes],
            "objective": self.objective,
            "constraints": self.constraints.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "OptimizeSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"an optimize must be a JSON object, got {type(data).__name__}"
            )
        known = {"schema", "base", "axes", "objective", "constraints", "label"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown optimize fields {sorted(unknown)}; known: {sorted(known)}"
            )
        schema = data.get("schema")
        if schema is not None and schema != OPTIMIZE_SCHEMA:
            raise ValueError(
                f"unsupported optimize schema {schema!r}; "
                f"expected {OPTIMIZE_SCHEMA!r}"
            )
        raw_axes = data.get("axes")
        if not isinstance(raw_axes, list) or not raw_axes:
            raise ValueError("an optimize needs a non-empty 'axes' list")
        raw_objective = data.get("objective")
        if not isinstance(raw_objective, str):
            raise ValueError(
                "an optimize needs an 'objective' "
                f"(one of {list(FRONTIER_OBJECTIVES)})"
            )
        base = data.get("base", {})
        if not isinstance(base, dict):
            raise ValueError("optimize 'base' must be a JSON object")
        raw_constraints = data.get("constraints")
        constraints = (
            OptimizeConstraints.from_dict(raw_constraints)
            if raw_constraints
            else OptimizeConstraints()
        )
        return cls(
            axes=tuple(SweepAxis.from_dict(axis) for axis in raw_axes),
            objective=raw_objective,
            base=base,
            constraints=constraints,
            label=data.get("label"),
        )

    # -- content addressing ------------------------------------------------

    def content_hash(self, registry: "Registry | None" = None) -> str:
        """SHA-256 identity of the question (the probe-trace store key).

        Covers the expanded grid — each point's coordinates plus its
        *resolved* spec hash, exactly like the sweep hash — the objective,
        and the constraints. ``label`` is excluded and equivalent axis
        spellings hash identically, so one finished optimize answers every
        equivalent resubmission.
        """
        import hashlib

        from .spec import SPEC_SCHEMA

        points = []
        for point in self.sweep_spec().expand():
            try:
                spec_hash = point.spec.content_hash(registry)
            except KeyError:
                spec_hash = point.spec.content_hash()  # unresolvable names
            points.append(
                {"coords": [[f, v] for f, v in point.coords], "spec": spec_hash}
            )
        canonical = {
            "schema": OPTIMIZE_SCHEMA,
            "specSchema": SPEC_SCHEMA,
            "objective": self.objective,
            "constraints": self.constraints.to_dict(),
            "points": points,
        }
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{OPTIMIZE_SCHEMA}\n{payload}".encode()).hexdigest()


@dataclass(frozen=True, eq=False)
class OptimizeProbe:
    """One evaluated grid point: spec hash, estimate, and its verdict.

    ``index`` is the point's position in the dense grid
    (:meth:`OptimizeSpec.sweep_spec` expansion order). ``feasible`` is
    the answer-level verdict: estimation succeeded *and* every optimize
    constraint holds. ``from_store`` is execution provenance — excluded
    from :meth:`to_dict` so a resumed optimize serializes bit-for-bit
    equal to an uninterrupted one.
    """

    index: int
    coords: tuple[tuple[str, Any], ...]
    label: str | None
    spec_hash: str
    result: PhysicalResourceEstimates | None
    error: str | None
    feasible: bool
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "coords": {field_path: value for field_path, value in self.coords},
            "label": self.label,
            "specHash": self.spec_hash,
            "ok": self.ok,
            "feasible": self.feasible,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, entry: dict[str, Any], fields: Sequence[str]) -> "OptimizeProbe":
        return cls(
            index=entry["index"],
            coords=tuple(
                (field_path, entry["coords"][field_path]) for field_path in fields
            ),
            label=entry.get("label"),
            spec_hash=entry["specHash"],
            result=(
                PhysicalResourceEstimates.from_dict(entry["result"])
                if entry.get("result") is not None
                else None
            ),
            error=entry.get("error"),
            feasible=bool(entry.get("feasible")),
        )


@dataclass(frozen=True)
class OptimizeProgress:
    """One progress event, emitted after each persisted probe round."""

    round: int
    requested: int
    probes: int
    evaluations: int
    from_store: int
    feasible: int


@dataclass(eq=False)
class OptimizeResult:
    """A finished optimize: the probe trace plus the answer points.

    ``answer`` holds dense-grid indices into the question's grid; each
    one is backed by a probe in :attr:`probes` (sorted by index).
    ``num_evaluations`` / ``from_trace`` are execution provenance — how
    many probes actually ran the engine (store hits excluded) and whether
    the whole answer came from a stored trace — excluded from
    :meth:`to_dict`.
    """

    optimize_hash: str
    spec: OptimizeSpec
    probes: list[OptimizeProbe]
    answer: tuple[int, ...]
    num_evaluations: int = 0
    from_trace: bool = False

    @property
    def num_feasible(self) -> int:
        return sum(1 for probe in self.probes if probe.feasible)

    def answer_probes(self) -> list[OptimizeProbe]:
        by_index = {probe.index: probe for probe in self.probes}
        return [by_index[index] for index in self.answer]

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form — independent of execution history."""
        return {
            "schema": OPTIMIZE_SCHEMA,
            "optimizeHash": self.optimize_hash,
            "optimize": self.spec.to_dict(),
            "counts": {
                "grid": self.spec.num_points(),
                "probes": len(self.probes),
                "feasible": self.num_feasible,
            },
            "probes": [probe.to_dict() for probe in self.probes],
            "answer": {
                "objective": self.spec.objective,
                "points": list(self.answer),
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OptimizeResult":
        if not isinstance(data, dict) or data.get("schema") != OPTIMIZE_SCHEMA:
            raise ValueError(f"not a {OPTIMIZE_SCHEMA} optimize result document")
        spec = OptimizeSpec.from_dict(data["optimize"])
        fields = [axis.field for axis in spec.axes]
        answer = data.get("answer")
        if not isinstance(answer, dict) or not isinstance(
            answer.get("points"), list
        ):
            raise ValueError("optimize result document has no answer")
        return cls(
            optimize_hash=data["optimizeHash"],
            spec=spec,
            probes=[
                OptimizeProbe.from_dict(entry, fields) for entry in data["probes"]
            ],
            answer=tuple(answer["points"]),
        )


def reduce_answer(
    objective: str,
    constraints: OptimizeConstraints,
    points: Sequence[tuple[int, PhysicalResourceEstimates | None]],
) -> tuple[int, ...]:
    """The reference reduction: answer indices over evaluated points.

    ``points`` are (dense index, result-or-None) pairs in ascending index
    order; infeasible and failed points are dropped, then the objective
    is applied with exactly the dense sweep's tie-breaking — min
    objectives by (primary metric, secondary metric, index), the
    ``qubits-runtime`` frontier by :func:`pareto_min_indices`. Running
    this over a full dense grid defines the answer :func:`run_optimize`
    must reproduce; the optimizer itself uses it to combine per-column
    winners, so both paths share one tie-break.
    """
    feasible = [
        (index, result)
        for index, result in points
        if result is not None and constraints.satisfied(result)
    ]
    if not feasible:
        return ()
    if objective == "qubits-runtime":
        keep = pareto_min_indices(
            [
                (result.runtime_seconds, float(result.physical_qubits))
                for _, result in feasible
            ]
        )
        return tuple(feasible[k][0] for k in keep)
    primary, secondary = _OBJECTIVE_METRICS[objective]
    best = min(
        feasible,
        key=lambda item: (
            _metric(item[1], primary),
            _metric(item[1], secondary),
            item[0],
        ),
    )
    return (best[0],)


def _ascending_numeric(values: Sequence[Any]) -> bool:
    """True when the axis is a strictly ascending numeric ladder."""
    if any(
        not isinstance(v, (int, float)) or isinstance(v, bool) for v in values
    ):
        return False
    return all(a < b for a, b in zip(values, values[1:]))


def _axis_directions(
    axis: SweepAxis, base: Mapping[str, Any], axis_fields: Sequence[str]
) -> dict[str, int]:
    """Known metric monotonicity along one axis: metric -> -1 / +1.

    ``-1`` means the metric is non-increasing as the axis index grows,
    ``+1`` non-decreasing. Only directions backed by the invariant suite
    (``tests/test_invariants.py``) or by model structure are claimed:

    * ``budget`` / ``budget.total`` (ascending = loosening): with *free*
      T-factory parallelism the engine adds factory copies to hold the
      algorithm-bound runtime, which is monotone non-increasing (proven);
      total qubits are not monotone there by design. With
      ``maxTFactories == 1`` pinned the roles flip: physical qubits are
      monotone non-increasing (proven), while the factory-bound runtime
      wiggles locally with the budget split and gets *no* claimed
      direction. The two structures are mutually exclusive — claiming
      both was observably wrong on fine ladders.
    * ``constraints.logicalDepthFactor`` (ascending = slower): runtime is
      non-decreasing — it scales the logical cycle count directly.
      Physical qubits are *not* claimed: stretching the schedule sheds T
      factories, but the extra cycles can push the code distance up a
      step and the algorithm's footprint with it, so the trade is only
      piecewise monotone.

    Everything else — and any non-ascending or non-numeric ladder —
    returns no structure, sending the search to bounded grid refinement.
    """
    if not _ascending_numeric(axis.values) or len(axis.values) < 2:
        return {}
    if axis.field in ("budget", "budget.total"):
        if "constraints.maxTFactories" in axis_fields:
            return {}
        base_constraints = base.get("constraints") or {}
        pinned = (
            base_constraints.get("maxTFactories")
            if isinstance(base_constraints, Mapping)
            else None
        )
        if pinned is None:
            return {_METRIC_RUNTIME: -1}
        if pinned == 1:
            return {_METRIC_QUBITS: -1}
        return {}
    if axis.field == "constraints.logicalDepthFactor":
        return {_METRIC_RUNTIME: 1}
    return {}


#: A column strategy: a generator that yields batches of dense indices to
#: probe and returns its candidate indices (or None) when exhausted.
_Strategy = Generator[list[int], None, Any]


class _Search:
    """The adaptive driver's state: grid geometry, probes, strategies.

    The grid is organized into *columns*: the inner axis (the one with
    the most known monotone structure; the longer one on ties) varies
    within a column, the outer axis — iterated exhaustively — picks the
    column. Each column runs one strategy generator; the driver advances
    all of them in lock-step rounds so their probe requests batch into
    single ``run_specs`` (or queue) dispatches.
    """

    def __init__(self, spec: OptimizeSpec) -> None:
        self.spec = spec
        self.points = spec.sweep_spec().expand()
        self.bounds = spec.constraints.bounds()
        self.probes: dict[int, OptimizeProbe] = {}
        axes = spec.axes
        axis_fields = [axis.field for axis in axes]
        directions = [
            _axis_directions(axis, spec.base, axis_fields) for axis in axes
        ]
        if len(axes) == 1:
            inner = 0
        else:
            inner = max(
                range(2),
                key=lambda k: (len(directions[k]), len(axes[k].values), k),
            )
        self.inner_dirs = directions[inner]
        n_inner = len(axes[inner].values)
        n_outer = 1 if len(axes) == 1 else len(axes[1 - inner].values)
        if len(axes) == 1:
            index_of = lambda o, i: i  # noqa: E731
        elif inner == 1:
            index_of = lambda o, i: o * n_inner + i  # noqa: E731
        else:
            index_of = lambda o, i: i * n_outer + o  # noqa: E731
        self.columns = [
            [index_of(o, i) for i in range(n_inner)] for o in range(n_outer)
        ]

    # -- probe views -------------------------------------------------------

    def _feasible(self, index: int) -> bool:
        return self.probes[index].feasible

    def _value(self, index: int, metric: str) -> float:
        result = self.probes[index].result
        assert result is not None
        return _metric(result, metric)

    def _min_key(self, index: int) -> tuple[float, float, int]:
        primary, secondary = _OBJECTIVE_METRICS[self.spec.objective]
        return (self._value(index, primary), self._value(index, secondary), index)

    # -- generic search steps ----------------------------------------------

    def _bisect_first(
        self, col: list[int], lo: int, hi: int, pred: Callable[[int], bool]
    ) -> _Strategy:
        """First position in [lo, hi] where ``pred`` holds, by bisection.

        Assumes ``pred`` is monotone (False then True along the column)
        and already True at ``hi``; both endpoints must be probed.
        """
        if pred(lo):
            return lo
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if col[mid] not in self.probes:
                yield [col[mid]]
            if pred(mid):
                hi = mid
            else:
                lo = mid
        return hi

    def _probe_all(self, indices: Sequence[int]) -> _Strategy:
        missing = [index for index in indices if index not in self.probes]
        if missing:
            yield missing

    # -- column strategies -------------------------------------------------

    def column_strategy(self, col: list[int]) -> _Strategy:
        if self.spec.objective == "qubits-runtime":
            return self._column_frontier(col)
        return self._column_min(col)

    def _column_min(self, col: list[int]) -> _Strategy:
        """One column of a min objective: the column's winning index.

        With monotone structure for the objective and every active
        constraint, bisects the feasibility window and the objective /
        tie-break plateaus — O(log n) probes for the exact point the
        dense reduction would pick. Any observed violation of the claimed
        structure (a failed probe where monotonicity promises success)
        falls back to :meth:`_refine_min` over the window.
        """
        n = len(col)
        primary, secondary = _OBJECTIVE_METRICS[self.spec.objective]
        dirs = self.inner_dirs
        structured = (
            n > EXHAUSTIVE_LIMIT
            and primary in dirs
            and all(metric in dirs for metric, _ in self.bounds)
        )
        if not structured:
            return (yield from self._refine_min(col))
        yield from self._probe_all((col[0], col[-1]))

        def clear(pos: int, metric: str, bound: float) -> bool:
            probe = self.probes[col[pos]]
            return probe.ok and _metric(probe.result, metric) <= bound

        lo, hi = 0, n - 1
        for metric, bound in self.bounds:
            if dirs[metric] < 0:
                # Metric falls along the column: feasibility is a suffix.
                if not clear(n - 1, metric, bound):
                    return None
                first = yield from self._bisect_first(
                    col, 0, n - 1, lambda pos: clear(pos, metric, bound)
                )
                lo = max(lo, first)
            else:
                # Metric rises: feasibility is a prefix.
                if not clear(0, metric, bound):
                    return None
                if clear(n - 1, metric, bound):
                    continue
                first_bad = yield from self._bisect_first(
                    col, 0, n - 1, lambda pos: not clear(pos, metric, bound)
                )
                hi = min(hi, first_bad - 1)
        if lo > hi:
            return None
        yield from self._probe_all((col[lo], col[hi]))
        window = col[lo : hi + 1]
        direction = dirs[primary]
        end = hi if direction < 0 else lo
        if not self._feasible(col[end]):
            return (yield from self._refine_min(window))
        target = self._value(col[end], primary)

        def on_plateau(pos: int) -> bool:
            probe = self.probes[col[pos]]
            return probe.ok and _metric(probe.result, primary) == target

        sdir = dirs.get(secondary)
        if direction < 0:
            # Optimum at the top; the primary-equality plateau is the
            # suffix [first, hi]. The dense tie-break wants the smallest
            # index with minimal (primary, secondary).
            first = yield from self._bisect_first(col, lo, hi, on_plateau)
            if sdir is not None and sdir < 0:
                starget = self._value(col[hi], secondary)
                winner = yield from self._bisect_first(
                    col,
                    first,
                    hi,
                    lambda pos: on_plateau(pos)
                    and self._value(col[pos], secondary) == starget,
                )
            elif sdir is not None:
                winner = first  # secondary rises: minimal at plateau start
            else:
                yield from self._probe_all(col[first : hi + 1])
                winner = min(
                    (
                        pos
                        for pos in range(first, hi + 1)
                        if on_plateau(pos) and self._feasible(col[pos])
                    ),
                    key=lambda pos: (self._value(col[pos], secondary), pos),
                )
        else:
            # Optimum at the bottom; the plateau is the prefix [lo, last].
            if on_plateau(hi):
                last = hi
            else:
                first_off = yield from self._bisect_first(
                    col, lo, hi, lambda pos: not on_plateau(pos)
                )
                last = first_off - 1
            if sdir is not None and sdir > 0:
                winner = lo  # secondary rises too: plateau start wins both
            elif sdir is not None:
                yield from self._probe_all((col[last],))
                starget = self._value(col[last], secondary)
                winner = yield from self._bisect_first(
                    col,
                    lo,
                    last,
                    lambda pos: on_plateau(pos)
                    and self._value(col[pos], secondary) == starget,
                )
            else:
                yield from self._probe_all(col[lo : last + 1])
                winner = min(
                    (
                        pos
                        for pos in range(lo, last + 1)
                        if on_plateau(pos) and self._feasible(col[pos])
                    ),
                    key=lambda pos: (self._value(col[pos], secondary), pos),
                )
        if not self._feasible(col[winner]):
            return (yield from self._refine_min(window))
        return col[winner]

    def _refine_min(self, col: list[int]) -> _Strategy:
        """Bounded local grid refinement for unstructured columns.

        Short columns are probed exhaustively (exact). Longer ones start
        from a coarse stride lattice and repeatedly probe the +-stride
        neighborhoods of the two best feasible candidates at halving
        strides — exact on unimodal data, best-effort otherwise, and
        always answering with an actually-probed feasible point. A
        lattice with no feasible point at all degrades to the exhaustive
        scan, so "no feasible answer" is never claimed adaptively.
        """
        n = len(col)
        if n <= EXHAUSTIVE_LIMIT:
            yield from self._probe_all(col)
            explored = set(range(n))
        else:
            stride = max(1, n // 8)
            explored = set(range(0, n, stride)) | {n - 1}
            yield from self._probe_all([col[pos] for pos in sorted(explored)])
            while stride > 1:
                stride = max(1, stride // 2)
                seeds = sorted(
                    (pos for pos in explored if self._feasible(col[pos])),
                    key=lambda pos: self._min_key(col[pos]),
                )[:2]
                if not seeds:
                    yield from self._probe_all(col)
                    explored = set(range(n))
                    break
                new = {
                    pos
                    for seed in seeds
                    for pos in range(
                        max(0, seed - stride), min(n, seed + stride + 1)
                    )
                } - explored
                if new:
                    yield from self._probe_all([col[pos] for pos in sorted(new)])
                    explored |= new
        feasible = [pos for pos in sorted(explored) if self._feasible(col[pos])]
        if not feasible:
            return None
        return col[min(feasible, key=lambda pos: self._min_key(col[pos]))]

    def _column_frontier(self, col: list[int]) -> _Strategy:
        """One column of the ``qubits-runtime`` objective: its frontier.

        Successively refines around the Pareto knees: from a coarse
        lattice, probe the +-stride neighborhoods of the current frontier
        members, halving the stride whenever a sweep adds nothing, until
        the stride-1 neighborhoods are exhausted. Returns the column's
        frontier members among all feasible probes.
        """
        n = len(col)
        if n <= EXHAUSTIVE_LIMIT:
            yield from self._probe_all(col)
            explored = set(range(n))
        else:
            stride = max(1, n // 8)
            explored = set(range(0, n, stride)) | {n - 1}
            yield from self._probe_all([col[pos] for pos in sorted(explored)])
            while True:
                members = self._frontier_positions(col, sorted(explored))
                if not members and stride == 1:
                    # No feasible probe anywhere: prove it exhaustively.
                    yield from self._probe_all(col)
                    explored = set(range(n))
                    break
                new = {
                    pos
                    for member in members
                    for pos in range(
                        max(0, member - stride), min(n, member + stride + 1)
                    )
                } - explored
                if not new:
                    if stride == 1:
                        break
                    stride = max(1, stride // 2)
                    continue
                yield from self._probe_all([col[pos] for pos in sorted(new)])
                explored |= new
        return [
            col[pos] for pos in self._frontier_positions(col, sorted(explored))
        ]

    def _frontier_positions(
        self, col: list[int], positions: Sequence[int]
    ) -> list[int]:
        feasible = [pos for pos in positions if self._feasible(col[pos])]
        keep = pareto_min_indices(
            [
                (
                    self._value(col[pos], _METRIC_RUNTIME),
                    self._value(col[pos], _METRIC_QUBITS),
                )
                for pos in feasible
            ]
        )
        return [feasible[k] for k in keep]


def run_optimize(
    spec: OptimizeSpec,
    *,
    registry: "Registry | None" = None,
    store: "ResultStore | None" = None,
    cache: "EstimateCache | None" = None,
    max_workers: int | None = 1,
    kernel: str = "auto",
    executor: str = "local",
    lease_ttl: float | None = None,
    progress: Callable[[OptimizeProgress], None] | None = None,
    lock: Any | None = None,
    engine: "ExecutionEngine | None" = None,
    pool: str = "keep",
) -> OptimizeResult:
    """Answer an inverse-design question adaptively over its grid.

    Column strategies (bisection on monotone axes, knee refinement for
    frontiers, bounded local refinement otherwise — see :class:`_Search`)
    advance in lock-step rounds; each round's probe requests are deduped
    into one batch through :func:`run_specs` (``executor="local"``) or
    one zip-mode sweep through the crash-safe lease queue
    (``executor="queue"``), so the result store, counts namespace, and
    vectorized kernel serve every repeated probe. Both executors produce
    bit-for-bit identical results.

    With a ``store``, the probe trace persists after every round under
    the ``repro-optimize-v1`` namespace keyed on
    :meth:`OptimizeSpec.content_hash`: a killed optimize re-run resumes
    with its previous probes answered from the store (the serialized
    result is bit-for-bit equal to an uninterrupted run's), and re-running
    a *finished* question returns the stored answer with zero
    evaluations (``from_trace=True``).

    ``progress`` is called after each round; ``lock`` (any context
    manager) serializes probe batches with other users of a shared cache,
    exactly like ``run_sweep``. ``engine`` / ``pool`` likewise mirror
    ``run_sweep``: with parallel workers the default ``pool="keep"``
    reuses one persistent process pool across every probe round (closed
    on return unless the ``engine`` was supplied by the caller).
    """
    from ..registry import default_registry

    resolved_registry = registry if registry is not None else default_registry()
    if executor not in ("local", "queue"):
        raise ValueError(f"unknown executor {executor!r}: use 'local' or 'queue'")
    if executor == "queue" and store is None:
        raise ValueError("executor='queue' requires a result store")
    if pool not in ("keep", "per-call"):
        raise ValueError(f"unknown pool mode {pool!r}: use 'keep' or 'per-call'")
    optimize_hash = spec.content_hash(resolved_registry)
    if store is not None:
        trace = store.get_optimize(optimize_hash)
        if (
            isinstance(trace, dict)
            and trace.get("status") == "done"
            and trace.get("result") is not None
        ):
            try:
                result = OptimizeResult.from_dict(trace["result"])
            except (KeyError, TypeError, ValueError):
                pass  # corrupt or stale trace: recompute (and overwrite)
            else:
                result.from_trace = True
                return result

    search = _Search(spec)
    spec_document = spec.to_dict()
    rounds: list[dict[str, Any]] = []
    evaluations = from_store_total = 0
    owned_engine: list[Any] = [None]

    def probe_engine() -> Any:
        """The persistent engine shared by every local probe round.

        Created lazily on the first round that actually evaluates, so a
        warm re-ask (``from_trace``) or all-store-hit run never spawns a
        pool; a caller-supplied ``engine`` is used as-is and never closed
        here.
        """
        if engine is not None:
            return engine
        if pool != "keep" or (max_workers is not None and max_workers <= 1):
            return None
        if owned_engine[0] is None:
            from .engine import ExecutionEngine

            owned_engine[0] = ExecutionEngine(
                max_workers=max_workers,
                store_root=store.root if store is not None else None,
            )
        return owned_engine[0]

    def evaluate(indices: list[int]) -> tuple[int, int]:
        """Probe a deduped batch of grid points; returns (evals, hits)."""
        specs = [search.points[index].spec for index in indices]
        if executor == "queue":
            hashes = []
            for point_spec in specs:
                try:
                    hashes.append(point_spec.content_hash(resolved_registry))
                except KeyError:
                    hashes.append(point_spec.content_hash())
            already = [store.get(point_hash) is not None for point_hash in hashes]
            probe_sweep = SweepSpec(
                axes=tuple(
                    SweepAxis(
                        field=axis.field,
                        values=tuple(
                            dict(search.points[index].coords)[axis.field]
                            for index in indices
                        ),
                    )
                    for axis in spec.axes
                ),
                base=spec.base,
                mode="zip",
            )
            sweep_result = run_sweep(
                probe_sweep,
                registry=resolved_registry,
                store=store,
                cache=cache,
                max_workers=max_workers,
                kernel=kernel,
                executor="queue",
                lease_ttl=lease_ttl,
                lock=lock,
                engine=engine,
                pool=pool,
            )
            outcomes = [
                (point.spec_hash, point.result, point.error, hit)
                for point, hit in zip(sweep_result.points, already)
            ]
        else:
            outcomes = [
                (out.spec_hash, out.result, out.error, out.from_store)
                for out in run_specs(
                    specs,
                    registry=resolved_registry,
                    store=store,
                    cache=cache,
                    max_workers=max_workers,
                    kernel=kernel,
                    engine=probe_engine(),
                )
            ]
        hits = 0
        for index, (spec_hash, result, error, hit) in zip(indices, outcomes):
            point = search.points[index]
            search.probes[index] = OptimizeProbe(
                index=index,
                coords=point.coords,
                label=point.spec.label,
                spec_hash=spec_hash,
                result=result,
                error=error,
                feasible=result is not None and spec.constraints.satisfied(result),
                from_store=hit,
            )
            hits += bool(hit)
        return len(indices) - hits, hits

    def persist(status: str, result: OptimizeResult | None = None) -> None:
        if store is None:
            return
        store.put_optimize(
            optimize_hash,
            {
                "status": status,
                "optimize": spec_document,
                "rounds": rounds,
                "probes": [
                    search.probes[index].to_dict()
                    for index in sorted(search.probes)
                ],
                "result": result.to_dict() if result is not None else None,
            },
        )

    strategies = [search.column_strategy(col) for col in search.columns]
    collected: list[Any] = [None] * len(strategies)
    pending: dict[int, list[int]] = {}
    for position, strategy in enumerate(strategies):
        try:
            pending[position] = next(strategy)
        except StopIteration as stop:
            collected[position] = stop.value
    round_number = 0
    try:
        while pending:
            round_number += 1
            requested = sorted(
                {
                    index
                    for indices in pending.values()
                    for index in indices
                    if index not in search.probes
                }
            )
            if requested:
                round_evals, round_hits = evaluate(requested)
                evaluations += round_evals
                from_store_total += round_hits
                rounds.append(
                    {
                        "round": round_number,
                        "requested": len(requested),
                        "evaluations": round_evals,
                        "fromStore": round_hits,
                    }
                )
                persist("running")
            if progress is not None:
                progress(
                    OptimizeProgress(
                        round=round_number,
                        requested=len(requested),
                        probes=len(search.probes),
                        evaluations=evaluations,
                        from_store=from_store_total,
                        feasible=sum(
                            1 for probe in search.probes.values() if probe.feasible
                        ),
                    )
                )
            for position in sorted(pending):
                try:
                    pending[position] = next(strategies[position])
                except StopIteration as stop:
                    collected[position] = stop.value
                    del pending[position]
    finally:
        if owned_engine[0] is not None:
            owned_engine[0].close()

    candidates: set[int] = set()
    for winner in collected:
        if winner is None:
            continue
        if isinstance(winner, list):
            candidates.update(winner)
        else:
            candidates.add(winner)
    answer = reduce_answer(
        spec.objective,
        spec.constraints,
        [(index, search.probes[index].result) for index in sorted(candidates)],
    )
    result = OptimizeResult(
        optimize_hash=optimize_hash,
        spec=spec,
        probes=[search.probes[index] for index in sorted(search.probes)],
        answer=answer,
        num_evaluations=evaluations,
    )
    persist("done", result)
    return result
