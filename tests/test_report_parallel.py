"""Tests for the full report renderer and parallel sweep execution."""

from __future__ import annotations

import pytest

from repro import LogicalCounts, estimate, qubit_params
from repro.experiments.runner import run_estimate_rows
from repro.report import render_report


@pytest.fixture(scope="module")
def result():
    counts = LogicalCounts(
        num_qubits=60,
        t_count=10_000,
        ccz_count=5_000,
        rotation_count=200,
        rotation_depth=100,
        measurement_count=1_000,
    )
    return estimate(counts, qubit_params("qubit_gate_ns_e4"), budget=1e-3)


class TestRenderReport:
    def test_all_eight_groups_present(self, result):
        text = render_report(result)
        for heading in (
            "Physical resource estimates",
            "Resource estimates breakdown",
            "Logical qubit parameters",
            "T factory parameters",
            "Pre-layout logical resources",
            "Assumed error budget",
            "Physical qubit parameters",
            "Assumptions",
        ):
            assert heading in text, heading

    def test_values_rendered(self, result):
        text = render_report(result)
        assert f"{result.physical_qubits:,}" in text
        assert str(result.code_distance) in text
        assert "surface_code" in text
        assert "10,000" in text  # T gates
        assert "15-to-1" in text  # factory units

    def test_markdown_mode(self, result):
        text = render_report(result, markdown=True)
        assert "## Physical resource estimates" in text
        assert "| quantity | value |" in text
        assert "- Logical qubits are laid out" in text

    def test_clifford_only_report(self):
        counts = LogicalCounts(num_qubits=5, measurement_count=10)
        r = estimate(counts, qubit_params("qubit_gate_ns_e4"), budget=1e-3)
        text = render_report(r)
        assert "not needed" in text

    def test_duration_formatting_scales(self, result):
        from repro.report import _duration

        assert _duration(5e2) == "0.5 µs"
        assert _duration(2e7) == "20 ms"
        assert _duration(3e9) == "3 s"
        assert _duration(3.6e12) == "60 min"
        assert _duration(4e13) == "11.1 h"
        assert _duration(9e14) == "10.4 days"


class TestParallelSweeps:
    POINTS = [
        ("schoolbook", 64, "qubit_maj_ns_e4"),
        ("windowed", 64, "qubit_maj_ns_e4"),
        ("karatsuba", 64, "qubit_maj_ns_e6"),
        ("windowed", 128, "qubit_gate_ns_e4"),
    ]

    def test_serial_matches_parallel(self):
        serial = run_estimate_rows(self.POINTS, budget=1e-4, max_workers=1)
        parallel = run_estimate_rows(self.POINTS, budget=1e-4, max_workers=2)
        assert serial == parallel

    def test_order_preserved(self):
        rows = run_estimate_rows(self.POINTS, budget=1e-4, max_workers=2)
        assert [(r.algorithm, r.bits, r.profile) for r in rows] == self.POINTS

    def test_single_point_runs_inline(self):
        rows = run_estimate_rows([("windowed", 32, "qubit_maj_ns_e6")], budget=1e-4)
        assert len(rows) == 1
        assert rows[0].bits == 32


class TestDeprecatedParallelShimRemoved:
    """The shim completed its deprecation cycle (PR 3) and is gone.

    Everything it offered lives on the sweep surface now:
    ``run_rows_parallel`` -> :func:`repro.experiments.runner.
    run_estimate_rows`, ``fig3_points`` / ``fig4_points`` ->
    :func:`repro.experiments.fig3.run_fig3` / ``fig4.run_fig4``.
    """

    def test_module_is_gone(self):
        import importlib
        import sys

        sys.modules.pop("repro.experiments.parallel", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.experiments.parallel")

    def test_replacement_surface_covers_the_shim(self):
        # The migration targets named by the shim's docstring must exist.
        from repro.experiments.fig3 import run_fig3
        from repro.experiments.fig4 import run_fig4

        assert callable(run_fig3) and callable(run_fig4)
        assert callable(run_estimate_rows)
