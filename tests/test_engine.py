"""Tests for the persistent execution engine (``estimator/engine.py``).

The load-bearing assertions extend the PR 4/7 equality properties to
pool reuse and mid-run worker death: a chunked sweep driven through one
persistent pool — including a pool whose worker is SIGKILLed mid-run —
produces results and stored documents bit-for-bit equal to a serial
run. The engine changes *where processes are spawned*, never *what is
computed*.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LogicalCounts, Registry, ResultStore
from repro.estimator.batch import EstimateCache
from repro.estimator.engine import (
    DEFAULT_MAX_REBUILDS,
    POOL_CHOICES,
    ExecutionEngine,
)
from repro.estimator.spec import EstimateSpec, run_specs
from repro.estimator.sweep import (
    ADAPTIVE_MAX_CHUNK,
    ADAPTIVE_MIN_CHUNK,
    SweepSpec,
    _next_chunk_size,
    run_sweep,
)

COUNTS = LogicalCounts(
    num_qubits=40, t_count=20_000, ccz_count=5_000, measurement_count=500
)

SWEEP_DOC = {
    "base": {"program": {"counts": COUNTS.to_dict()}},
    "axes": [
        {"field": "budget", "values": [1e-4, 1e-3, 1e-2]},
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]},
    ],
    "frontier": {"objective": "qubits-runtime", "groupBy": ["qubit"]},
}


def small_sweep() -> SweepSpec:
    return SweepSpec.from_dict(json.loads(json.dumps(SWEEP_DOC)))


def some_specs(budgets=(1e-4, 1e-3, 1e-2, 1e-5)) -> list[EstimateSpec]:
    return [
        EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", budget=budget)
        for budget in budgets
    ]


def portable(outcomes) -> list:
    return [
        outcome.result.to_dict() if outcome.result is not None else outcome.error
        for outcome in outcomes
    ]


def store_documents(store: ResultStore) -> dict[str, bytes]:
    """Every persisted result document, keyed by file name, as raw bytes."""
    return {
        path.name: path.read_bytes()
        for path in sorted(store.root.rglob("*.json"))
    }


def wait_for_worker_pids(engine: ExecutionEngine) -> list[int]:
    """PIDs of the engine's live pool workers (pool must be spawned)."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        pool = engine._pool
        processes = getattr(pool, "_processes", None) if pool is not None else None
        pids = [
            pid
            for pid, proc in list((processes or {}).items())
            if proc.is_alive()
        ]
        if pids:
            return pids
        time.sleep(0.05)
    raise AssertionError("pool workers never came up")


class TestEngineLifecycle:
    def test_pool_spawned_once_across_runs(self):
        registry = Registry()
        serial = portable(
            run_specs(some_specs(), registry=registry, cache=EstimateCache())
        )
        with ExecutionEngine(max_workers=2) as engine:
            first = run_specs(
                some_specs(),
                registry=registry,
                cache=EstimateCache(),
                max_workers=2,
                engine=engine,
            )
            second = run_specs(
                some_specs(),
                registry=registry,
                cache=EstimateCache(),
                max_workers=2,
                engine=engine,
            )
            stats = engine.stats()
        assert portable(first) == serial
        assert portable(second) == serial
        assert stats["poolSpawns"] == 1
        assert stats["runs"] == 2
        assert stats["chunksDispatched"] >= 2
        assert stats["rebuilds"] == 0

    def test_single_worker_engine_never_spawns_a_pool(self):
        registry = Registry()
        serial = portable(
            run_specs(some_specs(), registry=registry, cache=EstimateCache())
        )
        with ExecutionEngine(max_workers=1) as engine:
            outcomes = run_specs(
                some_specs(),
                registry=registry,
                cache=EstimateCache(),
                engine=engine,
            )
            assert engine.stats()["poolSpawns"] == 0
        assert portable(outcomes) == serial

    def test_close_is_idempotent_and_stats_survive(self):
        engine = ExecutionEngine(max_workers=2)
        engine.close()
        engine.close()
        stats = engine.stats()
        assert stats["workersAlive"] == 0
        assert stats["pool"] == "keep"

    def test_closed_engine_refuses_parallel_work(self):
        engine = ExecutionEngine(max_workers=2)
        engine.close()
        registry = Registry()
        with pytest.raises(RuntimeError, match="closed"):
            run_specs(
                some_specs(),
                registry=registry,
                cache=EstimateCache(),
                engine=engine,
            )

    def test_rejects_bad_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExecutionEngine(max_workers=0)

    def test_stats_shape(self):
        with ExecutionEngine(max_workers=2) as engine:
            engine.note_chunk_size(7)
            stats = engine.stats()
        assert set(stats) == {
            "pool",
            "maxWorkers",
            "workersAlive",
            "poolSpawns",
            "rebuilds",
            "chunksDispatched",
            "chunksReplayed",
            "points",
            "runs",
            "lastChunkSize",
        }
        assert stats["lastChunkSize"] == 7
        assert POOL_CHOICES == ("keep", "per-call")


class TestAdaptiveChunkSizing:
    def test_grows_at_most_one_doubling_per_step(self):
        # 4 points in 0.1s -> 40 points/s; a 1s target wants 40 but the
        # step is clamped to one doubling.
        assert _next_chunk_size(4, 4, 0.1, 1.0) == 8

    def test_shrinks_at_most_one_halving_per_step(self):
        # 8 points in 4s -> 2 points/s; a 1s target wants 2 but the step
        # is clamped to one halving.
        assert _next_chunk_size(8, 8, 4.0, 1.0) == 4

    def test_clamps_to_bounds(self):
        assert _next_chunk_size(1, 1, 100.0, 1e-6) == ADAPTIVE_MIN_CHUNK
        assert (
            _next_chunk_size(ADAPTIVE_MAX_CHUNK, 100_000, 0.001, 10.0)
            == ADAPTIVE_MAX_CHUNK
        )

    def test_adaptive_sweep_results_equal_fixed(self, tmp_path):
        registry = Registry()
        fixed = run_sweep(
            small_sweep(),
            registry=registry,
            cache=EstimateCache(),
            chunk_size=2,
        )
        adaptive = run_sweep(
            small_sweep(),
            registry=registry,
            cache=EstimateCache(),
            chunk_size=2,
            chunk_target_s=0.25,
            pool="per-call",
        )
        assert adaptive.to_dict() == fixed.to_dict()


class TestWorkerDeathChaos:
    def test_sigkill_mid_run_rebuilds_and_matches_serial(self):
        registry = Registry()
        specs = some_specs((1e-4, 1e-3, 1e-2, 1e-5, 1e-6, 3e-4))
        serial = portable(
            run_specs(list(specs), registry=registry, cache=EstimateCache())
        )
        with ExecutionEngine(max_workers=2) as engine:
            # Warm the pool, then kill a worker so the next dispatch hits
            # a broken pool and must rebuild + replay.
            run_specs(
                list(specs[:2]),
                registry=registry,
                cache=EstimateCache(),
                max_workers=2,
                engine=engine,
            )
            os.kill(wait_for_worker_pids(engine)[0], signal.SIGKILL)
            outcomes = run_specs(
                list(specs),
                registry=registry,
                cache=EstimateCache(),
                max_workers=2,
                engine=engine,
            )
            stats = engine.stats()
        assert portable(outcomes) == serial
        assert stats["rebuilds"] >= 1
        assert stats["chunksReplayed"] >= 1

    def test_sigkill_mid_sweep_store_bytes_equal_serial(self, tmp_path):
        registry = Registry()
        serial_store = ResultStore(tmp_path / "serial")
        baseline = run_sweep(
            small_sweep(),
            registry=registry,
            store=serial_store,
            cache=EstimateCache(),
            chunk_size=2,
        )
        chaos_store = ResultStore(tmp_path / "chaos")
        killed = {"done": False}
        with ExecutionEngine(max_workers=2) as engine:

            def kill_one_worker(event) -> None:
                if not killed["done"] and engine._pool is not None:
                    os.kill(wait_for_worker_pids(engine)[0], signal.SIGKILL)
                    killed["done"] = True

            survivor = run_sweep(
                small_sweep(),
                registry=registry,
                store=chaos_store,
                cache=EstimateCache(),
                max_workers=2,
                chunk_size=2,
                engine=engine,
                progress=kill_one_worker,
            )
            stats = engine.stats()
        assert killed["done"], "progress callback never saw a live pool"
        assert stats["rebuilds"] >= 1
        assert survivor.to_dict() == baseline.to_dict()
        assert store_documents(chaos_store) == store_documents(serial_store)

    def test_rebuild_budget_degrades_to_serial_not_forever(self):
        # A pool that is re-killed on every dispatch must not loop: after
        # max_rebuilds the engine finishes serially with correct results
        # and records an executor fallback.
        registry = Registry()
        specs = some_specs()
        serial = portable(
            run_specs(list(specs), registry=registry, cache=EstimateCache())
        )
        cache = EstimateCache()
        with ExecutionEngine(max_workers=2, max_rebuilds=1) as engine:
            run_specs(
                list(specs[:2]),
                registry=registry,
                cache=EstimateCache(),
                max_workers=2,
                engine=engine,
            )
            os.kill(wait_for_worker_pids(engine)[0], signal.SIGKILL)
            os.kill(wait_for_worker_pids(engine)[-1], signal.SIGKILL)
            outcomes = run_specs(
                list(specs),
                registry=registry,
                cache=cache,
                max_workers=2,
                engine=engine,
            )
        assert portable(outcomes) == serial
        executor = cache.stats()["executor"]
        if executor["serialFallbacks"]:
            assert executor["lastFallbackReason"] == "pool-broken"
        assert DEFAULT_MAX_REBUILDS >= 1


class TestExecutionEquivalenceProperty:
    @settings(deadline=None, max_examples=3)
    @given(
        budgets=st.lists(
            st.sampled_from([1e-2, 1e-3, 1e-4, 1e-5, 1e-6]),
            min_size=3,
            max_size=6,
            unique=True,
        )
    )
    def test_serial_percall_persistent_killed_all_store_identical(
        self, tmp_path_factory, budgets
    ):
        registry = Registry()
        doc = {
            "base": {
                "program": {"counts": COUNTS.to_dict()},
                "qubit": {"profile": "qubit_gate_ns_e3"},
            },
            "axes": [{"field": "budget", "values": list(budgets)}],
        }
        stores: dict[str, ResultStore] = {}

        def sweep_into(name: str, **kwargs) -> dict:
            store = ResultStore(tmp_path_factory.mktemp(name))
            stores[name] = store
            result = run_sweep(
                SweepSpec.from_dict(json.loads(json.dumps(doc))),
                registry=registry,
                store=store,
                cache=EstimateCache(),
                chunk_size=2,
                **kwargs,
            )
            return result.to_dict()

        serial = sweep_into("serial")
        per_call = sweep_into("per-call", max_workers=2, pool="per-call")
        with ExecutionEngine(max_workers=2) as engine:
            persistent = sweep_into("persistent", max_workers=2, engine=engine)
        with ExecutionEngine(max_workers=2) as engine:
            killed = {"done": False}

            def kill_one_worker(event) -> None:
                if not killed["done"] and engine._pool is not None:
                    os.kill(wait_for_worker_pids(engine)[0], signal.SIGKILL)
                    killed["done"] = True

            after_kill = sweep_into(
                "killed",
                max_workers=2,
                engine=engine,
                progress=kill_one_worker,
            )
        assert per_call == serial
        assert persistent == serial
        assert after_kill == serial
        baseline_docs = store_documents(stores["serial"])
        for name in ("per-call", "persistent", "killed"):
            assert store_documents(stores[name]) == baseline_docs, name
