"""Figure 4 reproduction: 2048-bit multiplication across six hardware profiles.

Regenerates both panels of the paper's Figure 4 (physical qubits and
runtime per profile, surface code on gate-based / floquet on Majorana,
budget 1e-4) and asserts the cross-profile orderings the paper's plot
shows.
"""

from __future__ import annotations

import pytest

from repro.experiments import FIG4_PROFILES, run_estimate_row
from repro.experiments.runner import format_table


@pytest.mark.parametrize("profile", FIG4_PROFILES)
def test_fig4_profile_estimation(benchmark, profile, fig4_rows):
    """Benchmark one Fig. 4 point per profile; check its sweep row."""
    row = benchmark(run_estimate_row, "windowed", 2048, profile)
    sweep_row = next(
        r for r in fig4_rows if r.algorithm == "windowed" and r.profile == profile
    )
    assert row == sweep_row


def test_fig4_runtime_spans_paper_range(benchmark, fig4_rows):
    """Paper: windowed runtime varies between ~12 s and ~9e4 s."""
    def span():
        runtimes = [
            r.runtime_seconds for r in fig4_rows if r.algorithm == "windowed"
        ]
        return min(runtimes), max(runtimes)

    low, high = benchmark(span)
    assert 1.0 <= low <= 60.0  # paper: 12 s
    assert 1e4 <= high <= 5e5  # paper: 9e4 s


def test_fig4_us_profiles_slowest(benchmark, fig4_rows):
    """Microsecond (ion-like) profiles dominate the runtime panel's top."""
    def check():
        by_profile = {
            r.profile: r.runtime_seconds
            for r in fig4_rows
            if r.algorithm == "windowed"
        }
        slow = {"qubit_gate_us_e3", "qubit_gate_us_e4"}
        fast = set(by_profile) - slow
        return all(by_profile[s] > by_profile[f] for s in slow for f in fast)

    assert benchmark(check)


def test_fig4_better_errors_need_fewer_qubits(benchmark, fig4_rows):
    """Within each platform family, the optimistic regime is cheaper."""
    def check():
        q = {
            (r.profile, r.algorithm): r.physical_qubits for r in fig4_rows
        }
        for algorithm in ("schoolbook", "karatsuba", "windowed"):
            assert q[("qubit_gate_ns_e4", algorithm)] < q[("qubit_gate_ns_e3", algorithm)]
            assert q[("qubit_gate_us_e4", algorithm)] < q[("qubit_gate_us_e3", algorithm)]
            assert q[("qubit_maj_ns_e6", algorithm)] < q[("qubit_maj_ns_e4", algorithm)]
        return True

    assert benchmark(check)


def test_fig4_schemes_match_paper_setup(benchmark, fig4_rows):
    """Gate-based rows used the surface code; Majorana rows the floquet code.

    (The figure caption states this split explicitly; here it is implied
    by each row's code distance being derivable from its scheme, so we
    re-run one gate-based and one Majorana estimate and compare.)
    """
    def redo():
        return (
            run_estimate_row("windowed", 2048, "qubit_gate_ns_e3"),
            run_estimate_row("windowed", 2048, "qubit_maj_ns_e4"),
        )

    gate_row, maj_row = benchmark(redo)
    assert gate_row == next(
        r
        for r in fig4_rows
        if r.algorithm == "windowed" and r.profile == "qubit_gate_ns_e3"
    )
    assert maj_row == next(
        r
        for r in fig4_rows
        if r.algorithm == "windowed" and r.profile == "qubit_maj_ns_e4"
    )


def test_fig4_emit_table(benchmark, fig4_rows, capsys):
    """Regenerate and print the figure's data table (both panels)."""
    table = benchmark(format_table, fig4_rows)
    with capsys.disabled():
        print("\n=== Figure 4 data (2048-bit inputs, budget 1e-4) ===")
        print(table)
