"""Figure 3: the three multipliers vs input size on Majorana hardware.

Paper setup: hardware profile ``qubit_maj_ns_e4``, floquet-code QEC,
total error budget 1e-4, input sizes 32 .. 16384 bits. The paper's
headline observations, all checked by ``benchmarks/test_fig3_scaling.py``:

* code distance climbs from 9 (32 bits) to 17 (16384 bits), with d = 15
  at 2048 bits — visible as jumps in the physical-qubit curves;
* Karatsuba uses the most physical qubits at every large size;
* Karatsuba's runtime first beats schoolbook's only in the
  multi-thousand-bit range despite its better asymptotics.
"""

from __future__ import annotations

from typing import Sequence

from .runner import ALGORITHMS, PAPER_ERROR_BUDGET, EstimateRow, run_estimate_rows

#: The paper sweeps 32 .. 16384 bits (powers of two).
FIG3_BIT_SIZES: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)

FIG3_PROFILE = "qubit_maj_ns_e4"


def run_fig3(
    bit_sizes: Sequence[int] | None = None,
    *,
    budget: float = PAPER_ERROR_BUDGET,
    algorithms: Sequence[str] = ALGORITHMS,
    max_workers: int | None = 1,
    backend: str = "formula",
) -> list[EstimateRow]:
    """Reproduce the Fig. 3 sweep; rows ordered by (algorithm, bits).

    The grid runs through the shared batch engine; ``max_workers`` fans
    points out over worker processes (``1`` = serial, with sweep caches)
    and ``backend`` selects the count-resolution path (``formula`` /
    ``materialize`` / ``counting`` — identical results).
    """
    sizes = tuple(bit_sizes) if bit_sizes is not None else FIG3_BIT_SIZES
    points = [
        (algorithm, bits, FIG3_PROFILE)
        for algorithm in algorithms
        for bits in sizes
    ]
    return run_estimate_rows(
        points, budget=budget, max_workers=max_workers, backend=backend
    )
