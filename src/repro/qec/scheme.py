"""QEC scheme definition with formula parameters."""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

from ..formulas import Formula
from ..qubits import InstructionSet, PhysicalQubitParams


class QECSchemeError(ValueError):
    """Raised for invalid scheme definitions or unsatisfiable requirements."""


@dataclass(frozen=True)
class QECScheme:
    """A quantum error correction scheme (paper Sec. IV-C.2).

    Parameters
    ----------
    name:
        Human-readable scheme name.
    crossing_prefactor:
        Prefactor ``a`` of the logical error model.
    error_correction_threshold:
        Threshold ``p*`` of the logical error model; physical error rates
        at or above the threshold cannot be corrected.
    logical_cycle_time:
        Formula for the duration (ns) of one logical cycle, over the
        physical qubit parameters and ``codeDistance``.
    physical_qubits_per_logical_qubit:
        Formula for the number of physical qubits forming one logical
        qubit, over the same variables.
    instruction_set:
        Which qubit technologies the scheme applies to; ``None`` means
        any.
    max_code_distance:
        Largest distance the scheme supports (practical cut-off for the
        solver's search, mirroring the tool's bounded search).
    """

    name: str
    crossing_prefactor: float
    error_correction_threshold: float
    logical_cycle_time: Formula
    physical_qubits_per_logical_qubit: Formula
    instruction_set: InstructionSet | None = None
    max_code_distance: int = 51

    def __post_init__(self) -> None:
        if self.crossing_prefactor <= 0:
            raise QECSchemeError(
                f"crossing prefactor must be positive, got {self.crossing_prefactor}"
            )
        if not 0.0 < self.error_correction_threshold < 1.0:
            raise QECSchemeError(
                "error correction threshold must be in (0, 1), got "
                f"{self.error_correction_threshold}"
            )
        if self.max_code_distance < 1 or self.max_code_distance % 2 == 0:
            raise QECSchemeError(
                f"max_code_distance must be a positive odd integer, got "
                f"{self.max_code_distance}"
            )
        # Coerce formula-likes so callers can pass plain strings.
        object.__setattr__(self, "logical_cycle_time", Formula(self.logical_cycle_time))
        object.__setattr__(
            self,
            "physical_qubits_per_logical_qubit",
            Formula(self.physical_qubits_per_logical_qubit),
        )

    def check_compatible(self, qubit: PhysicalQubitParams) -> None:
        """Raise if the scheme cannot run on the given qubit technology."""
        if (
            self.instruction_set is not None
            and qubit.instruction_set is not self.instruction_set
        ):
            raise QECSchemeError(
                f"QEC scheme {self.name!r} requires {self.instruction_set.value} "
                f"qubits but {qubit.name!r} is {qubit.instruction_set.value}"
            )
        missing = self.formula_variables() - set(qubit.formula_environment(1))
        if missing:
            raise QECSchemeError(
                f"QEC scheme {self.name!r} formulas reference parameters "
                f"{sorted(missing)} not provided by qubit model {qubit.name!r}"
            )

    def formula_variables(self) -> set[str]:
        return set(
            self.logical_cycle_time.free_variables
            | self.physical_qubits_per_logical_qubit.free_variables
        )

    def logical_error_rate(self, qubit: PhysicalQubitParams, code_distance: int) -> float:
        """Logical error rate per qubit per cycle, ``a (p/p*)^((d+1)/2)``."""
        if code_distance < 1 or code_distance % 2 == 0:
            raise QECSchemeError(
                f"code distance must be a positive odd integer, got {code_distance}"
            )
        p = qubit.clifford_error_rate
        ratio = p / self.error_correction_threshold
        return self.crossing_prefactor * ratio ** ((code_distance + 1) / 2)

    def required_code_distance(
        self, qubit: PhysicalQubitParams, required_error_rate: float
    ) -> int:
        """Smallest odd distance achieving the required logical error rate.

        Solved in closed form from the error model then verified; raises
        :class:`QECSchemeError` when the physical error rate is at/above
        threshold or the needed distance exceeds ``max_code_distance``.
        """
        if required_error_rate <= 0.0:
            raise QECSchemeError(
                f"required logical error rate must be positive, got {required_error_rate}"
            )
        p = qubit.clifford_error_rate
        if p >= self.error_correction_threshold:
            raise QECSchemeError(
                f"physical error rate {p} of {qubit.name!r} is not below the "
                f"threshold {self.error_correction_threshold} of {self.name!r}; "
                "error correction cannot help"
            )
        ratio = p / self.error_correction_threshold
        # a * ratio^((d+1)/2) <= req  =>  (d+1)/2 >= log(req/a) / log(ratio)
        exponent = math.log(required_error_rate / self.crossing_prefactor) / math.log(ratio)
        distance = 2 * math.ceil(exponent) - 1
        distance = max(distance, 1)
        # Guard against floating point edge cases near the boundary.
        while self.logical_error_rate(qubit, distance) > required_error_rate:
            distance += 2
        while distance > 1 and self.logical_error_rate(qubit, distance - 2) <= required_error_rate:
            distance -= 2
        if distance > self.max_code_distance:
            raise QECSchemeError(
                f"achieving logical error rate {required_error_rate:.3e} on "
                f"{qubit.name!r} needs code distance {distance}, above the "
                f"maximum {self.max_code_distance} of scheme {self.name!r}"
            )
        return distance

    def distance_table(
        self, qubit: PhysicalQubitParams
    ) -> tuple[tuple[int, float], ...]:
        """``(distance, logical_error_rate)`` for every supported distance.

        One row per odd distance from 1 through ``max_code_distance``,
        with the rate computed by :meth:`logical_error_rate` — the exact
        values :meth:`required_code_distance` compares against. Batch
        engines tabulate this once per (scheme, qubit) pair and answer
        each required-error query with a sorted-array lookup; below
        threshold the rates decrease monotonically in the distance, so
        the first row at or under the requirement is the distance the
        scalar search returns.
        """
        return tuple(
            (d, self.logical_error_rate(qubit, d))
            for d in range(1, self.max_code_distance + 1, 2)
        )

    def cycle_time_ns(self, qubit: PhysicalQubitParams, code_distance: int) -> float:
        """Duration of one logical cycle, in nanoseconds."""
        env = qubit.formula_environment(code_distance)
        return self.logical_cycle_time.evaluate_positive(env)

    def physical_qubits(self, qubit: PhysicalQubitParams, code_distance: int) -> int:
        """Physical qubits per logical qubit at the given distance."""
        env = qubit.formula_environment(code_distance)
        return math.ceil(self.physical_qubits_per_logical_qubit.evaluate_positive(env))

    def customized(self, **overrides: Any) -> "QECScheme":
        """Copy with some parameters replaced (paper IV-C.2 customization)."""
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise QECSchemeError(f"unknown QEC scheme parameters: {sorted(unknown)}")
        if "name" not in overrides:
            overrides["name"] = f"{self.name} (customized)"
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "crossingPrefactor": self.crossing_prefactor,
            "errorCorrectionThreshold": self.error_correction_threshold,
            "logicalCycleTime": self.logical_cycle_time.source,
            "physicalQubitsPerLogicalQubit": self.physical_qubits_per_logical_qubit.source,
            "instructionSet": self.instruction_set.value if self.instruction_set else None,
            "maxCodeDistance": self.max_code_distance,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QECScheme":
        """Inverse of :meth:`to_dict` (formulas re-parsed from source)."""
        known = {
            "name",
            "crossingPrefactor",
            "errorCorrectionThreshold",
            "logicalCycleTime",
            "physicalQubitsPerLogicalQubit",
            "instructionSet",
            "maxCodeDistance",
        }
        unknown = set(data) - known
        if unknown:
            raise QECSchemeError(f"unknown QEC scheme fields: {sorted(unknown)}")
        missing = {
            "name",
            "crossingPrefactor",
            "errorCorrectionThreshold",
            "logicalCycleTime",
            "physicalQubitsPerLogicalQubit",
        } - set(data)
        if missing:
            raise QECSchemeError(f"QEC scheme definition missing: {sorted(missing)}")
        instruction_set = data.get("instructionSet")
        return cls(
            name=data["name"],
            crossing_prefactor=data["crossingPrefactor"],
            error_correction_threshold=data["errorCorrectionThreshold"],
            logical_cycle_time=Formula(data["logicalCycleTime"]),
            physical_qubits_per_logical_qubit=Formula(
                data["physicalQubitsPerLogicalQubit"]
            ),
            instruction_set=(
                InstructionSet(instruction_set) if instruction_set else None
            ),
            max_code_distance=data.get("maxCodeDistance", 51),
        )
