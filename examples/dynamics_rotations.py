"""Estimating a rotation-heavy workload: Trotterized spin-chain dynamics.

The multiplication case study is Toffoli-only; this example exercises the
other non-Clifford path through the estimator — arbitrary rotations and
their Clifford+T synthesis cost (paper Sec. III-B) — by building a
first-order Trotter circuit for a 1D transverse-field Ising model, and
shows ``account_for_estimates`` for splicing in a pre-counted oracle.

Run:  python examples/dynamics_rotations.py
"""

from repro import LogicalCounts, estimate, qubit_params
from repro.ir import CircuitBuilder


def trotter_ising_circuit(sites: int, steps: int, dt: float = 0.05):
    """First-order Trotter evolution of H = -J sum ZZ - h sum X.

    Each step applies exp(-i h dt X_j) on every site (one RX each) and
    exp(-i J dt Z_j Z_{j+1}) on every bond (CX - RZ - CX).
    """
    builder = CircuitBuilder(f"ising-{sites}x{steps}")
    spins = builder.allocate_register(sites)
    for _ in range(steps):
        for q in spins:
            builder.rx(2 * 0.8 * dt, q)
        for a, b in zip(spins, spins[1:]):
            builder.cx(a, b)
            builder.rz(2 * 1.0 * dt, b)
            builder.cx(a, b)
    for q in spins:
        builder.measure(q)
    return builder.finish()


circuit = trotter_ising_circuit(sites=100, steps=400)
counts = circuit.logical_counts()
print(
    f"Trotter circuit: {counts.num_qubits} qubits, "
    f"{counts.rotation_count:,} rotations in {counts.rotation_depth:,} layers"
)

for profile in ("qubit_gate_ns_e3", "qubit_maj_ns_e6"):
    result = estimate(circuit, qubit_params(profile), budget=1e-3)
    t_per_rot = result.algorithmic_resources.t_states_per_rotation
    print(
        f"{profile:<18} {t_per_rot:>3} T/rotation, "
        f"{result.breakdown.num_t_states:>12,} T states, "
        f"{result.physical_qubits:>11,} physical qubits, "
        f"{result.runtime_seconds:8.2f} s"
    )

# --- account_for_estimates: splice in a pre-counted subroutine. --------------
builder = CircuitBuilder("dynamics-with-oracle")
spins = builder.allocate_register(100)
for q in spins:
    builder.rx(0.08, q)
# A phase-estimation oracle we already counted elsewhere (e.g. by hand or
# from a paper's table) enters the estimate without being emitted:
builder.account_for_estimates(
    LogicalCounts(num_qubits=40, t_count=500_000, ccz_count=250_000)
)
for q in spins:
    builder.measure(q)
combined = builder.finish()

result = estimate(combined, qubit_params("qubit_gate_ns_e3"), budget=1e-3)
print(
    f"\nwith injected oracle estimates: {combined.logical_counts().num_qubits} "
    f"logical qubits pre-layout, {result.breakdown.num_t_states:,} T states, "
    f"{result.physical_qubits:,} physical qubits"
)
