"""Declarative sweeps: resumable grids and per-group Pareto frontiers.

The paper's headline artifacts are parameter sweeps — scaling curves and
per-profile frontiers over (circuit size, qubit profile, QEC scheme,
error budget). A :class:`SweepSpec` is the declarative form of one such
artifact: a ``base`` :class:`~repro.estimator.spec.EstimateSpec` document
plus *axes* (registry names, numeric ranges, or inline spec fragments)
that expand — cartesian or zipped — into the point specs, and an
optional *frontier objective* that reduces the results into per-group
Pareto frontiers.

Execution (:func:`run_sweep`) happens in store-backed chunks through
:func:`~repro.estimator.spec.run_specs`: every completed chunk is
persisted in the content-addressed
:class:`~repro.estimator.store.ResultStore` before the next one starts,
so a killed sweep resumes from its completed points for free — re-running
the same sweep file answers stored points from disk and computes only the
rest. The serialized :class:`SweepResult` carries no execution
provenance (store hits, timings), so an interrupted-then-resumed sweep is
bit-for-bit equal to an uninterrupted one.

Sweep documents are JSON (the ``repro sweep`` CLI subcommand and the
service's ``POST /v1/sweeps`` job API both accept them)::

    {
      "base": {"program": {"multiplier": {"algorithm": "schoolbook"}},
               "budget": 1e-4},
      "axes": [
        {"field": "program.multiplier.bits", "geom": {"start": 32, "factor": 2, "count": 4}},
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]}
      ],
      "mode": "cartesian",
      "frontier": {"objective": "qubits-runtime", "groupBy": ["qubit"]}
    }

Axis values are applied to the base document by dotted field path
(``program.multiplier.bits``), with sugar for the common cases: a string
value on the ``qubit`` axis means ``{"profile": name}``, and a string on
``scheme`` or ``program`` means ``{"name": name}`` — so an axis can sweep
directly over registry program names
(``{"field": "program", "values": ["rsa_1024", "rsa_2048"]}``). Numeric axes may be spelled as an
explicit ``values`` list, an inclusive linear ``range`` (``start`` /
``stop`` / ``step``), or a geometric ladder ``geom`` (``start`` /
``factor`` / ``count``); all three canonicalize to the expanded values,
so equivalent spellings share one :meth:`SweepSpec.content_hash` — the
identity under which the service stores and re-serves finished sweeps.
"""

from __future__ import annotations

import csv
import hashlib
import io
import itertools
import json
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from .result import PhysicalResourceEstimates
from .spec import SPEC_SCHEMA, EstimateSpec, run_specs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry import Registry
    from .batch import EstimateCache
    from .engine import ExecutionEngine
    from .store import ResultStore

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FRONTIER_OBJECTIVES",
    "FrontierGroup",
    "FrontierSpec",
    "SWEEP_SCHEMA",
    "SweepAxis",
    "SweepPoint",
    "SweepPointOutcome",
    "SweepProgress",
    "SweepResult",
    "SweepSpec",
    "pareto_min_indices",
    "run_sweep",
]

#: Version tag of the sweep canonical form (hashes, serialized results).
SWEEP_SCHEMA = "repro-sweep-v1"

#: Points evaluated (and persisted) per chunk when the caller picks none.
DEFAULT_CHUNK_SIZE = 16

#: Bounds for adaptive chunk sizing (``chunk_target_s``): the size never
#: leaves this window, and never more than doubles or halves per step.
ADAPTIVE_MIN_CHUNK = 1
ADAPTIVE_MAX_CHUNK = 4096


def _next_chunk_size(
    current: int, points_done: int, elapsed_s: float, target_s: float
) -> int:
    """Chunk size for the next step, steered toward ``target_s`` of work.

    Uses the measured points/sec of the chunk just completed; growth and
    shrinkage are clamped to one doubling/halving per step so a single
    anomalous chunk (cold caches, store-hit burst) cannot whipsaw the
    size. Chunk boundaries never affect results — chunking is excluded
    from :meth:`SweepSpec.content_hash` — so this is purely a wall-clock
    and persistence-granularity knob.
    """
    if points_done <= 0:
        return current
    rate = points_done / max(elapsed_s, 1e-9)
    ideal = rate * target_s
    stepped = max(min(ideal, current * 2), current // 2, ADAPTIVE_MIN_CHUNK)
    return int(min(stepped, ADAPTIVE_MAX_CHUNK))

#: Supported frontier reductions. ``qubits-runtime`` keeps the Pareto
#: non-dominated (runtime, physical qubits) points per group — the
#: paper's frontier; ``min-qubits`` / ``min-runtime`` keep the single
#: best point per group.
FRONTIER_OBJECTIVES = ("qubits-runtime", "min-qubits", "min-runtime")

#: Expansion modes: full cartesian product of the axes, or position-wise
#: ``zip`` of equal-length axes.
SWEEP_MODES = ("cartesian", "zip")


def pareto_min_indices(values: Sequence[tuple[float, float]]) -> list[int]:
    """Indices of the non-dominated points, minimizing both coordinates.

    Sorting by (first, second) makes the kept second coordinates strictly
    decreasing, so a single running minimum replaces the quadratic
    all-pairs dominance check; returned indices are ordered by increasing
    first coordinate. Ties are broken explicitly by input index — among
    duplicate (x, y) points exactly the lowest-index one is kept, so the
    frontier over equal-cost points is deterministic and the kept value
    set is stable under any permutation of the input.
    """
    order = sorted(range(len(values)), key=lambda i: (values[i][0], values[i][1], i))
    keep: list[int] = []
    best: float | None = None
    for i in order:
        second = values[i][1]
        if best is None or second < best:
            keep.append(i)
            best = second
    return keep


def _expand_range(body: Mapping[str, Any]) -> tuple[Any, ...]:
    """Inclusive linear range -> explicit values (ints when exact)."""
    unknown = set(body) - {"start", "stop", "step"}
    if unknown:
        raise ValueError(f"unknown range fields {sorted(unknown)}")
    try:
        start, stop = body["start"], body["stop"]
    except KeyError as exc:
        raise ValueError(f"a range axis needs 'start' and 'stop' ({exc})") from None
    step = body.get("step", 1)
    for name, value in (("start", start), ("stop", stop), ("step", step)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"range {name!r} must be a number, got {value!r}")
    if step <= 0:
        raise ValueError(f"range step must be > 0, got {step}")
    if stop < start:
        raise ValueError(f"range stop {stop} is below start {start}")
    count = int((stop - start) / step + 1e-9) + 1
    integral = all(isinstance(v, int) for v in (start, stop, step))
    values = [start + i * step for i in range(count)]
    return tuple(int(v) if integral else float(v) for v in values)


def _expand_geom(body: Mapping[str, Any]) -> tuple[Any, ...]:
    """Geometric ladder -> explicit values (ints when exact)."""
    unknown = set(body) - {"start", "factor", "count"}
    if unknown:
        raise ValueError(f"unknown geom fields {sorted(unknown)}")
    try:
        start, factor, count = body["start"], body["factor"], body["count"]
    except KeyError as exc:
        raise ValueError(
            f"a geom axis needs 'start', 'factor', and 'count' ({exc})"
        ) from None
    for name, value in (("start", start), ("factor", factor)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"geom {name!r} must be a number, got {value!r}")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise ValueError(f"geom count must be a positive int, got {count!r}")
    if factor <= 0:
        raise ValueError(f"geom factor must be > 0, got {factor}")
    integral = isinstance(start, int) and isinstance(factor, int)
    values: list[Any] = []
    value: Any = start
    for _ in range(count):
        values.append(value if integral else float(value))
        value = value * factor
    return tuple(values)


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a spec field path and the values it takes.

    ``field`` is a dotted path into the spec document (with the
    ``qubit`` / ``scheme`` string sugar described in the module
    docstring); ``values`` are JSON scalars or spec fragments.
    """

    field: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.field or not isinstance(self.field, str):
            raise ValueError(f"axis field must be a non-empty string, got {self.field!r}")
        if any(not part for part in self.field.split(".")):
            raise ValueError(f"malformed axis field path {self.field!r}")
        object.__setattr__(self, "values", tuple(self.values))

    def to_dict(self) -> dict[str, Any]:
        return {"field": self.field, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Any) -> "SweepAxis":
        if not isinstance(data, dict):
            raise ValueError(f"an axis must be a JSON object, got {data!r}")
        unknown = set(data) - {"field", "values", "range", "geom"}
        if unknown:
            raise ValueError(f"unknown axis fields {sorted(unknown)}")
        field_path = data.get("field")
        sources = [key for key in ("values", "range", "geom") if key in data]
        if len(sources) != 1:
            raise ValueError(
                "an axis needs exactly one of 'values', 'range', or 'geom'"
            )
        source = sources[0]
        if source == "values":
            values = data["values"]
            if not isinstance(values, list) or not values:
                raise ValueError(
                    f"axis {field_path!r} 'values' must be a non-empty list"
                )
            values = tuple(values)
        elif source == "range":
            values = _expand_range(data["range"])
        else:
            values = _expand_geom(data["geom"])
        return cls(field=str(field_path or ""), values=values)


@dataclass(frozen=True)
class FrontierSpec:
    """How sweep results reduce to frontiers.

    ``group_by`` names axis fields; points sharing those coordinate
    values form one group, and the ``objective`` is applied per group
    (no ``group_by`` means one global group).
    """

    objective: str = "qubits-runtime"
    group_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.objective not in FRONTIER_OBJECTIVES:
            raise ValueError(
                f"unknown frontier objective {self.objective!r}; "
                f"available: {list(FRONTIER_OBJECTIVES)}"
            )
        object.__setattr__(self, "group_by", tuple(self.group_by))

    def to_dict(self) -> dict[str, Any]:
        return {"objective": self.objective, "groupBy": list(self.group_by)}

    @classmethod
    def from_dict(cls, data: Any) -> "FrontierSpec":
        if not isinstance(data, dict):
            raise ValueError(f"'frontier' must be a JSON object, got {data!r}")
        unknown = set(data) - {"objective", "groupBy"}
        if unknown:
            raise ValueError(f"unknown frontier fields {sorted(unknown)}")
        group_by = data.get("groupBy", [])
        if not isinstance(group_by, list) or any(
            not isinstance(name, str) for name in group_by
        ):
            raise ValueError("'groupBy' must be a list of axis field names")
        return cls(
            objective=data.get("objective", "qubits-runtime"),
            group_by=tuple(group_by),
        )


@dataclass(frozen=True, eq=False)
class SweepPoint:
    """One expanded point: its axis coordinates and the resulting spec."""

    index: int
    coords: tuple[tuple[str, Any], ...]
    spec: EstimateSpec


def _apply_axis(document: dict[str, Any], field_path: str, value: Any) -> None:
    """Set one axis value into a spec document by dotted path."""
    if field_path == "qubit" and isinstance(value, str):
        value = {"profile": value}
    elif field_path in ("scheme", "program") and isinstance(value, str):
        value = {"name": value}
    parts = field_path.split(".")
    node = document
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = node[part] = {}
        elif not isinstance(child, dict):
            raise ValueError(
                f"axis field {field_path!r} descends into non-object "
                f"spec field {part!r}"
            )
        node = child
    node[parts[-1]] = value


def _coord_label(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return str(value)


@dataclass(frozen=True, eq=False)
class SweepSpec:
    """A declarative sweep: base spec document, axes, and reductions.

    ``base`` is a partial :class:`EstimateSpec` document; each expanded
    point deep-copies it, applies one value per axis, and parses the
    result. ``chunk_size`` is an execution hint (points persisted per
    chunk) and ``label`` display metadata — neither affects
    :meth:`content_hash`.
    """

    axes: tuple[SweepAxis, ...]
    base: Mapping[str, Any] = field(default_factory=dict)
    mode: str = "cartesian"
    frontier: FrontierSpec | None = None
    chunk_size: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        # Own a normalized deep copy of the base document: the spec is
        # frozen, so expansion (computed once, lazily) can never go stale
        # if the caller mutates the dict it passed in.
        if not isinstance(self.base, Mapping):
            raise ValueError(
                f"sweep base must be a JSON object, got {type(self.base).__name__}"
            )
        try:
            object.__setattr__(self, "base", json.loads(json.dumps(dict(self.base))))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"sweep base must be JSON-serializable: {exc}") from exc
        object.__setattr__(self, "_expanded", None)
        if self.mode not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {self.mode!r}; available: {list(SWEEP_MODES)}"
            )
        fields = [axis.field for axis in self.axes]
        if len(set(fields)) != len(fields):
            raise ValueError(f"duplicate axis fields in {fields}")
        if self.mode == "zip":
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) > 1:
                raise ValueError(
                    "zip-mode axes must all have the same length, got "
                    f"{[len(axis.values) for axis in self.axes]}"
                )
        if self.frontier is not None:
            unknown = set(self.frontier.group_by) - set(fields)
            if unknown:
                raise ValueError(
                    f"frontier groupBy names unknown axes {sorted(unknown)}; "
                    f"axes: {fields}"
                )
        if self.chunk_size is not None and (
            not isinstance(self.chunk_size, int) or self.chunk_size < 1
        ):
            raise ValueError(
                f"chunk_size must be a positive int, got {self.chunk_size!r}"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SWEEP_SCHEMA,
            "base": json.loads(json.dumps(dict(self.base))),
            "axes": [axis.to_dict() for axis in self.axes],
            "mode": self.mode,
            "frontier": self.frontier.to_dict() if self.frontier else None,
            "chunkSize": self.chunk_size,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"a sweep must be a JSON object, got {type(data).__name__}"
            )
        known = {"schema", "base", "axes", "mode", "frontier", "chunkSize", "label"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown sweep fields {sorted(unknown)}; known: {sorted(known)}"
            )
        schema = data.get("schema")
        if schema is not None and schema != SWEEP_SCHEMA:
            raise ValueError(
                f"unsupported sweep schema {schema!r}; expected {SWEEP_SCHEMA!r}"
            )
        raw_axes = data.get("axes")
        if not isinstance(raw_axes, list) or not raw_axes:
            raise ValueError("a sweep needs a non-empty 'axes' list")
        axes = tuple(SweepAxis.from_dict(axis) for axis in raw_axes)
        base = data.get("base", {})
        if not isinstance(base, dict):
            raise ValueError("sweep 'base' must be a JSON object")
        raw_frontier = data.get("frontier")
        frontier = FrontierSpec.from_dict(raw_frontier) if raw_frontier else None
        return cls(
            axes=axes,
            base=base,
            mode=data.get("mode", "cartesian"),
            frontier=frontier,
            chunk_size=data.get("chunkSize"),
            label=data.get("label"),
        )

    # -- expansion ---------------------------------------------------------

    def _combinations(self) -> Iterable[tuple[Any, ...]]:
        if self.mode == "zip":
            return zip(*(axis.values for axis in self.axes))
        return itertools.product(*(axis.values for axis in self.axes))

    def num_points(self) -> int:
        if self.mode == "zip":
            return len(self.axes[0].values)
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def expand(self) -> list[SweepPoint]:
        """The sweep's points, in deterministic first-axis-major order.

        Each point deep-copies ``base``, applies its axis values, and
        parses the document as an :class:`EstimateSpec`; a malformed
        point raises :class:`ValueError` naming its coordinates — a typo
        in a sweep file is a spec error, not a pile of failed points.

        The expansion is computed once per spec (safe: the spec is
        frozen and owns its base document) — ``content_hash``, the
        service's submit path, and ``run_sweep`` all share it.
        """
        cached = self._expanded
        if cached is not None:
            return list(cached)
        fields = [axis.field for axis in self.axes]
        points: list[SweepPoint] = []
        for index, combo in enumerate(self._combinations()):
            document = json.loads(json.dumps(dict(self.base)))
            coords = tuple(zip(fields, combo))
            for field_path, value in coords:
                _apply_axis(document, field_path, value)
            if not document.get("label"):
                document["label"] = ", ".join(
                    f"{field_path}={_coord_label(value)}"
                    for field_path, value in coords
                )
            try:
                spec = EstimateSpec.from_dict(document)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"sweep point {index} ({document['label']}): {exc}"
                ) from exc
            points.append(SweepPoint(index=index, coords=coords, spec=spec))
        object.__setattr__(self, "_expanded", tuple(points))
        return points

    # -- content addressing ------------------------------------------------

    def content_hash(self, registry: "Registry | None" = None) -> str:
        """SHA-256 identity of the sweep (the service's job id).

        Covers the expanded points — each point's coordinates plus its
        *resolved* spec hash (names inlined through ``registry``, exactly
        like the result store's keys) — and the frontier reduction.
        Execution hints (``chunk_size``) and display metadata (``label``,
        per-point labels) are excluded, and equivalent axis spellings
        (``range`` vs the explicit list) hash identically, so one
        finished sweep answers every equivalent resubmission.
        """
        points = []
        for point in self.expand():
            try:
                spec_hash = point.spec.content_hash(registry)
            except KeyError:
                spec_hash = point.spec.content_hash()  # unresolvable names
            points.append(
                {"coords": [[f, v] for f, v in point.coords], "spec": spec_hash}
            )
        canonical = {
            "schema": SWEEP_SCHEMA,
            "specSchema": SPEC_SCHEMA,
            "frontier": self.frontier.to_dict() if self.frontier else None,
            "points": points,
        }
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{SWEEP_SCHEMA}\n{payload}".encode()).hexdigest()


@dataclass(frozen=True, eq=False)
class SweepPointOutcome:
    """Result of one sweep point.

    ``from_store`` is execution provenance — reported in progress events
    and job status, deliberately excluded from :meth:`to_dict` so a
    resumed sweep serializes bit-for-bit equal to an uninterrupted one.
    """

    index: int
    coords: tuple[tuple[str, Any], ...]
    label: str | None
    spec_hash: str
    result: PhysicalResourceEstimates | None
    error: str | None
    from_store: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "coords": {field_path: value for field_path, value in self.coords},
            "label": self.label,
            "specHash": self.spec_hash,
            "ok": self.ok,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
        }


def _outcome_from_dict(
    entry: dict[str, Any], fields: list[str]
) -> SweepPointOutcome:
    """Rebuild one point outcome from its serialized form.

    Shared by :meth:`SweepResult.from_dict` and the work queue's chunk
    assembly — one parser, so both paths reconstruct identical objects
    from identical bytes.
    """
    return SweepPointOutcome(
        index=entry["index"],
        coords=tuple(
            (field_path, entry["coords"][field_path]) for field_path in fields
        ),
        label=entry.get("label"),
        spec_hash=entry["specHash"],
        result=(
            PhysicalResourceEstimates.from_dict(entry["result"])
            if entry.get("result") is not None
            else None
        ),
        error=entry.get("error"),
    )


@dataclass(frozen=True, eq=False)
class FrontierGroup:
    """One frontier: the group's coordinates and its point indices.

    ``indices`` point into :attr:`SweepResult.points`, ordered by the
    objective (increasing runtime for ``qubits-runtime``; the single
    best point otherwise).
    """

    key: tuple[tuple[str, Any], ...]
    indices: tuple[int, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": {field_path: value for field_path, value in self.key},
            "points": list(self.indices),
        }


@dataclass(eq=False)
class SweepResult:
    """A finished sweep: per-point outcomes plus frontier reductions."""

    sweep_hash: str
    spec: SweepSpec
    points: list[SweepPointOutcome]
    frontiers: list[FrontierGroup] | None = None

    @property
    def num_ok(self) -> int:
        return sum(1 for point in self.points if point.ok)

    @property
    def num_failed(self) -> int:
        return len(self.points) - self.num_ok

    @property
    def num_from_store(self) -> int:
        return sum(1 for point in self.points if point.from_store)

    def frontier_indices(self) -> set[int]:
        if not self.frontiers:
            return set()
        return {index for group in self.frontiers for index in group.indices}

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form — independent of execution history."""
        return {
            "schema": SWEEP_SCHEMA,
            "sweepHash": self.sweep_hash,
            "sweep": self.spec.to_dict(),
            "counts": {
                "total": len(self.points),
                "ok": self.num_ok,
                "failed": self.num_failed,
            },
            "points": [point.to_dict() for point in self.points],
            "frontiers": (
                [group.to_dict() for group in self.frontiers]
                if self.frontiers is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepResult":
        if not isinstance(data, dict) or data.get("schema") != SWEEP_SCHEMA:
            raise ValueError(f"not a {SWEEP_SCHEMA} sweep result document")
        spec = SweepSpec.from_dict(data["sweep"])
        fields = [axis.field for axis in spec.axes]
        points = [_outcome_from_dict(entry, fields) for entry in data["points"]]
        raw_frontiers = data.get("frontiers")
        frontiers = None
        if raw_frontiers is not None:
            group_fields = list(spec.frontier.group_by) if spec.frontier else []
            frontiers = [
                FrontierGroup(
                    key=tuple(
                        (field_path, entry["key"][field_path])
                        for field_path in group_fields
                    ),
                    indices=tuple(entry["points"]),
                )
                for entry in raw_frontiers
            ]
        return cls(
            sweep_hash=data["sweepHash"],
            spec=spec,
            points=points,
            frontiers=frontiers,
        )

    def to_csv(self) -> str:
        """Flat CSV: axis coordinates, key metrics, frontier membership."""
        fields = [axis.field for axis in self.spec.axes]
        on_frontier = self.frontier_indices()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            fields
            + [
                "specHash",
                "ok",
                "physicalQubits",
                "runtime_s",
                "codeDistance",
                "logicalQubits",
                "tFactoryCopies",
                "rqops",
                "onFrontier",
                "error",
            ]
        )
        for point in self.points:
            coords = dict(point.coords)
            row = [_coord_label(coords[field_path]) for field_path in fields]
            row.append(point.spec_hash)
            row.append(point.ok)
            if point.ok:
                result = point.result
                row += [
                    result.physical_qubits,
                    result.runtime_seconds,
                    result.code_distance,
                    result.logical_qubits,
                    result.t_factory.copies if result.t_factory else 0,
                    result.rqops,
                ]
            else:
                row += [""] * 6
            row.append(point.index in on_frontier)
            row.append(point.error or "")
            writer.writerow(row)
        return buffer.getvalue()


@dataclass(frozen=True)
class SweepProgress:
    """One progress event, emitted after each persisted chunk."""

    chunk: int
    num_chunks: int
    completed: int
    total: int
    ok: int
    failed: int
    from_store: int


def _reduce_frontiers(
    spec: FrontierSpec, points: Sequence[SweepPointOutcome]
) -> list[FrontierGroup]:
    """Group points by the frontier key and keep each group's winners."""
    groups: dict[str, tuple[tuple[tuple[str, Any], ...], list[SweepPointOutcome]]] = {}
    for point in points:
        coords = dict(point.coords)
        key = tuple((name, coords[name]) for name in spec.group_by)
        # Values may be unhashable fragments; group on their canonical JSON.
        group_id = json.dumps([[n, v] for n, v in key], sort_keys=True)
        groups.setdefault(group_id, (key, []))[1].append(point)

    reduced: list[FrontierGroup] = []
    for key, members in groups.values():  # insertion = expansion order
        feasible = [point for point in members if point.ok]
        if not feasible:
            reduced.append(FrontierGroup(key=key, indices=()))
            continue
        if spec.objective == "qubits-runtime":
            keep = pareto_min_indices(
                [
                    (point.result.runtime_seconds, point.result.physical_qubits)
                    for point in feasible
                ]
            )
            indices = tuple(feasible[i].index for i in keep)
        elif spec.objective == "min-qubits":
            best = min(
                feasible,
                key=lambda point: (
                    point.result.physical_qubits,
                    point.result.runtime_seconds,
                    point.index,
                ),
            )
            indices = (best.index,)
        else:  # min-runtime
            best = min(
                feasible,
                key=lambda point: (
                    point.result.runtime_seconds,
                    point.result.physical_qubits,
                    point.index,
                ),
            )
            indices = (best.index,)
        reduced.append(FrontierGroup(key=key, indices=indices))
    return reduced


def run_sweep(
    spec: SweepSpec,
    *,
    registry: "Registry | None" = None,
    store: "ResultStore | None" = None,
    cache: "EstimateCache | None" = None,
    max_workers: int | None = 1,
    chunk_size: int | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    lock: Any | None = None,
    kernel: str = "auto",
    executor: str = "local",
    lease_ttl: float | None = None,
    engine: "ExecutionEngine | None" = None,
    pool: str = "keep",
    chunk_target_s: float | None = None,
) -> SweepResult:
    """Execute a sweep in store-backed chunks and reduce its frontiers.

    Points run through :func:`run_specs` one chunk at a time (``chunk_size``
    falls back to the spec's hint, then :data:`DEFAULT_CHUNK_SIZE` with a
    store and a single chunk without one — chunking only buys anything
    when completed chunks persist). With a ``store``, every completed
    chunk is persisted before the next starts, so killing a sweep between
    chunks loses at most the chunk in flight — re-running the same spec
    resumes from the stored points. Infeasible or invalid points become
    failed outcomes, excluded from frontiers.

    ``progress`` is called after each chunk with cumulative counts.
    ``lock`` (any context manager) serializes chunk execution with other
    users of a shared cache — the estimation service passes its engine
    lock so sweep jobs interleave fairly with interactive submissions.

    ``kernel`` selects the batch backend (``"auto"``/``"scalar"``/
    ``"vectorized"``). It is an execution hint like ``max_workers`` —
    backends are bit-for-bit interchangeable, so it is not part of
    :class:`SweepSpec` and never affects content hashes or stored
    documents. Note that under ``"auto"`` the threshold applies per
    chunk: store-backed sweeps using the default 16-point chunks stay on
    the scalar path; pass ``kernel="vectorized"`` or a larger
    ``chunk_size`` to engage the kernel.

    ``executor`` selects how chunks run. ``"local"`` (default) iterates
    them in this call, as above. ``"queue"`` requires a ``store`` and
    routes through the crash-safe work queue
    (:mod:`repro.estimator.queue`): the sweep is journaled, chunks are
    leased, and this call drains them as one cooperating worker —
    other worker processes (``repro work DIR``) or service replicas
    sharing the store directory pick up chunks concurrently, and the
    journal survives a crash for a later worker to resume. Both
    executors produce bit-for-bit identical results; ``lease_ttl``
    (queue only) tunes crash-detection latency.

    ``pool`` selects the parallel-executor lifecycle when
    ``max_workers`` enables process fan-out: ``"keep"`` (default) runs
    every chunk through one persistent
    :class:`~repro.estimator.engine.ExecutionEngine` pool created for
    the whole sweep (workers keep their memo tables and store handles
    warm across chunks), ``"per-call"`` restores the historical
    fresh-pool-per-chunk behavior. An explicit ``engine`` overrides
    ``pool`` and is *not* closed by this call — the estimation service
    shares one engine across jobs. Results are identical for every
    combination.

    ``chunk_target_s`` enables adaptive chunk sizing: starting from the
    resolved ``chunk_size``, each subsequent chunk grows or shrinks
    (at most 2x per step, within [:data:`ADAPTIVE_MIN_CHUNK`,
    :data:`ADAPTIVE_MAX_CHUNK`]) toward the target per-chunk wall time
    using the measured points/sec. Results never depend on chunk
    boundaries.
    """
    from ..registry import default_registry

    resolved_registry = registry if registry is not None else default_registry()
    if executor not in ("local", "queue"):
        raise ValueError(f"unknown executor {executor!r}: use 'local' or 'queue'")
    if pool not in ("keep", "per-call"):
        raise ValueError(f"unknown pool mode {pool!r}: use 'keep' or 'per-call'")
    if chunk_target_s is not None and chunk_target_s <= 0:
        raise ValueError(
            f"chunk_target_s must be positive, got {chunk_target_s}"
        )
    if executor == "queue":
        if store is None:
            raise ValueError("executor='queue' requires a result store")
        from .queue import DEFAULT_LEASE_TTL, SweepQueue, run_worker

        queue = SweepQueue(store, ttl=lease_ttl or DEFAULT_LEASE_TTL)
        job = queue.enqueue(spec, registry=resolved_registry, chunk_size=chunk_size)
        if store.get_sweep(job.job_id) is None:
            run_worker(
                store,
                job_id=job.job_id,
                registry=resolved_registry,
                cache=cache,
                max_workers=max_workers,
                kernel=kernel,
                ttl=lease_ttl or DEFAULT_LEASE_TTL,
                progress=progress,
                lock=lock,
                engine=engine,
                pool=pool,
            )
        document = store.get_sweep(job.job_id)
        if document is not None:
            return SweepResult.from_dict(document)
        # Store went read-only under us: fall back to assembling the
        # result straight from whatever chunk markers were persisted.
        assembled = queue.assemble(job)
        if assembled is None:
            raise RuntimeError(
                f"queue executor could not complete sweep {job.job_id}: "
                f"store {store.root} is not writable"
            )
        return assembled
    points = spec.expand()
    sweep_hash = spec.content_hash(resolved_registry)
    # Chunking exists to bound the work lost on a kill between persisted
    # chunks; without a store nothing persists, so default to one chunk
    # (one batch call, one process pool) unless the caller asked for more.
    size = chunk_size or spec.chunk_size
    if size is None:
        size = DEFAULT_CHUNK_SIZE if store is not None else max(len(points), 1)
    guard = lock if lock is not None else nullcontext()

    # Parallel sweeps default to one persistent pool for the whole run;
    # an engine passed in by the caller (the service) is shared, not owned.
    owned_engine = None
    if (
        engine is None
        and pool == "keep"
        and (max_workers is None or max_workers > 1)
        and len(points) > 1
    ):
        from .engine import ExecutionEngine

        owned_engine = ExecutionEngine(
            max_workers=max_workers,
            store_root=store.root if store is not None else None,
        )
        engine = owned_engine

    outcomes: list[SweepPointOutcome] = []
    ok = failed = from_store = 0
    chunk_index = 0
    position = 0
    try:
        while position < len(points):
            chunk = points[position : position + size]
            started = time.perf_counter()
            with guard:
                chunk_outcomes = run_specs(
                    [point.spec for point in chunk],
                    registry=resolved_registry,
                    store=store,
                    cache=cache,
                    max_workers=max_workers,
                    kernel=kernel,
                    engine=engine,
                )
            elapsed = time.perf_counter() - started
            position += len(chunk)
            chunk_index += 1
            for point, outcome in zip(chunk, chunk_outcomes):
                outcomes.append(
                    SweepPointOutcome(
                        index=point.index,
                        coords=point.coords,
                        label=point.spec.label,
                        spec_hash=outcome.spec_hash,
                        result=outcome.result,
                        error=outcome.error,
                        from_store=outcome.from_store,
                    )
                )
                if outcome.ok:
                    ok += 1
                else:
                    failed += 1
                if outcome.from_store:
                    from_store += 1
            if chunk_target_s is not None and position < len(points):
                size = _next_chunk_size(size, len(chunk), elapsed, chunk_target_s)
            if engine is not None:
                engine.note_chunk_size(size)
            if progress is not None:
                remaining_chunks = -(-(len(points) - position) // size)
                progress(
                    SweepProgress(
                        chunk=chunk_index,
                        num_chunks=chunk_index + remaining_chunks,
                        completed=len(outcomes),
                        total=len(points),
                        ok=ok,
                        failed=failed,
                        from_store=from_store,
                    )
                )
    finally:
        if owned_engine is not None:
            owned_engine.close()

    frontiers = (
        _reduce_frontiers(spec.frontier, outcomes)
        if spec.frontier is not None
        else None
    )
    return SweepResult(
        sweep_hash=sweep_hash, spec=spec, points=outcomes, frontiers=frontiers
    )
