"""The planar quantum Instruction-Set Architecture (paper Fig. 1, Sec. III).

The tool's central abstraction is the *planar quantum ISA*: fault-tolerant
programs execute as a sequence of (multi-qubit) Pauli measurements via
lattice surgery, plus magic-state consumption for non-Clifford content
(Beverland et al., Appendix B). This package makes that layer explicit:

* :class:`LogicalOperation` — one ISA-level step with its cycle cost and
  T-state consumption;
* :func:`lower` — lowering from the gate-level IR to an ISA operation
  sequence using the paper's per-gate costs (T gate: 1 cycle / 1 T state;
  CCZ and CCiX: 3 cycles / 4 T states; synthesized rotation:
  ``t_rot`` cycles / ``t_rot`` T states; measurement: 1 cycle);
* :func:`schedule_depth` — the total logical depth of the lowered
  sequence.

The lowering re-derives the algorithmic-depth and T-count formulas of
Sec. III-B operation by operation; tests assert it agrees exactly with
the closed-form layout step, which is precisely the consistency the
paper's Figure 1 pipeline relies on.
"""

from .lowering import (
    ISAProgram,
    LogicalOperation,
    OperationKind,
    lower,
    schedule_depth,
)

__all__ = [
    "ISAProgram",
    "LogicalOperation",
    "OperationKind",
    "lower",
    "schedule_depth",
]
