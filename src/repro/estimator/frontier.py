"""Qubit-versus-runtime frontier estimation (paper Sec. III-D, IV-C.4).

Sweeping the logical-depth slowdown factor trades runtime for T-factory
parallelism: a slower program needs fewer simultaneous factory copies, so
it uses fewer physical qubits. :func:`estimate_frontier` is the
programmatic single-workload form: it evaluates a geometric ladder of
slowdown factors through the declarative spec layer
(:func:`~repro.estimator.spec.run_specs` — the same path as the CLI, the
sweep subsystem, and the estimation service), optionally backed by a
persistent :class:`~repro.estimator.store.ResultStore`, and keeps the
Pareto-optimal (physical qubits, runtime) points via the shared reducer
in :mod:`repro.estimator.sweep`. Declarative sweep files get the same
reduction from a ``frontier`` objective (see the README section "Sweeps
and frontiers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..budget import ErrorBudget
from ..counts import LogicalCounts
from ..distillation import TFactoryDesigner
from ..qec import QECScheme
from ..qubits import PhysicalQubitParams
from ..synthesis import RotationSynthesis
from .batch import EstimateCache
from .constraints import Constraints
from .result import PhysicalResourceEstimates
from .spec import EstimateSpec, run_specs
from .stages import resolve_counts
from .sweep import pareto_min_indices

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import ResultStore


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto point: the estimate obtained at a given slowdown."""

    logical_depth_factor: float
    estimates: PhysicalResourceEstimates

    @property
    def physical_qubits(self) -> int:
        return self.estimates.physical_qubits

    @property
    def runtime_seconds(self) -> float:
        return self.estimates.runtime_seconds


class Frontier(list):
    """The Pareto points of a frontier sweep, plus failure diagnostics.

    Behaves exactly like ``list[FrontierPoint]`` (sorted by increasing
    runtime), and additionally reports the ladder points whose estimation
    failed instead of silently dropping them:

    ``skipped``
        ``(depth_factor, error message)`` pairs for infeasible points.
    ``num_skipped``
        Count of skipped factors.
    """

    def __init__(
        self,
        points: Iterable[FrontierPoint] = (),
        skipped: Iterable[tuple[float, str]] = (),
    ) -> None:
        super().__init__(points)
        self.skipped: tuple[tuple[float, str], ...] = tuple(skipped)

    @property
    def num_skipped(self) -> int:
        return len(self.skipped)

    @property
    def skipped_factors(self) -> tuple[float, ...]:
        return tuple(factor for factor, _ in self.skipped)


def pareto_frontier(points: Sequence[FrontierPoint]) -> list[FrontierPoint]:
    """Pareto-minimal (runtime, qubits) points in one pass.

    Delegates to the sweep subsystem's generic reducer: a point survives
    iff it uses strictly fewer qubits than every faster point.
    """
    keep = pareto_min_indices(
        [(pt.runtime_seconds, pt.physical_qubits) for pt in points]
    )
    return [points[i] for i in keep]


def estimate_frontier(
    program: object,
    qubit: PhysicalQubitParams,
    *,
    scheme: QECScheme | None = None,
    budget: ErrorBudget | float = 1e-3,
    depth_factors: Sequence[float] | None = None,
    synthesis: RotationSynthesis | None = None,
    factory_designer: TFactoryDesigner | None = None,
    store: "ResultStore | None" = None,
) -> Frontier:
    """Estimate the Pareto frontier of qubits vs runtime.

    Parameters
    ----------
    depth_factors:
        Slowdown factors to evaluate; defaults to a geometric ladder
        ``1, 2, 4, ..., 1024``.
    store:
        Optional persistent result store; ladder points whose spec hash
        is already stored answer from disk, and fresh points are written
        back — repeated frontiers over the same workload are warm.

    Returns the Pareto-optimal points sorted by increasing runtime, as a
    :class:`Frontier` (a ``list`` that also carries the ladder points
    whose estimation failed, e.g. on a constraint violation, as
    ``.skipped``).
    """
    if depth_factors is None:
        depth_factors = [float(2**k) for k in range(11)]
    if not depth_factors:
        raise ValueError("depth_factors must not be empty")
    if factory_designer is not None and store is not None:
        # Spec hashes do not cover the designer, so storing results from a
        # custom factory search would poison the shared namespace.
        raise ValueError(
            "a persistent store cannot be combined with a custom "
            "factory_designer (results would be stored under hashes that "
            "do not reflect the designer)"
        )

    # The program is traced once up front; the ladder shares the counts.
    counts = (
        program if isinstance(program, LogicalCounts) else resolve_counts(program)
    )
    # A custom designer needs its own cache; otherwise share the module
    # cache so repeated frontiers keep their memos warm.
    cache = EstimateCache(designer=factory_designer) if factory_designer else None
    specs = [
        EstimateSpec(
            program=counts,
            qubit=qubit,
            scheme=scheme,
            budget=budget,
            constraints=Constraints(logical_depth_factor=factor),
            synthesis=synthesis,
        )
        for factor in depth_factors
    ]
    outcomes = run_specs(specs, store=store, cache=cache, max_workers=1)

    points: list[FrontierPoint] = []
    skipped: list[tuple[float, str]] = []
    for factor, outcome in zip(depth_factors, outcomes):
        if outcome.ok:
            points.append(
                FrontierPoint(
                    logical_depth_factor=factor, estimates=outcome.result
                )
            )
        else:
            skipped.append((factor, outcome.error or "estimation failed"))
    return Frontier(pareto_frontier(points), skipped)
