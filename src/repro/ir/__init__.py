"""Quantum program IR, builder, and pre-layout resource tracer.

This package plays the role of QIR in the tool (paper Sec. III-A, IV-B):
a flat instruction stream recording qubit allocation/release, gate
applications, and measurements. Programs are authored with
:class:`CircuitBuilder` (the stand-in for Q#/Qiskit front ends), traced
into :class:`~repro.counts.LogicalCounts` by :func:`trace`, and validated
for well-formedness by :func:`validate`.

The gate set matches what the tool counts: Clifford gates (free at the
logical level), T gates, arbitrary rotations, CCZ/CCiX, logical-AND
compute/uncompute (Gidney's temporary AND), and single-qubit measurements.
``account_for_estimates`` injects known logical estimates for a subroutine
without emitting its gates, mirroring Q#'s ``AccountForEstimates``.
"""

from .ops import Op, OPCODE_NAMES
from .circuit import Circuit, CircuitBuilder, CircuitError, QubitHandle
from .tracer import trace
from .validate import validate

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "OPCODE_NAMES",
    "Op",
    "QubitHandle",
    "trace",
    "validate",
]
