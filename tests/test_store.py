"""Tests for the content-addressed persistent result store."""

from __future__ import annotations

import json

import pytest

from repro import LogicalCounts, ResultStore, estimate, qubit_params
from repro.estimator.store import RESULT_SCHEMA, STORE_ENV_VAR, default_store_root

COUNTS = LogicalCounts(num_qubits=40, t_count=50_000, measurement_count=500)
HASH_A = "ab" + "0" * 62
HASH_B = "cd" + "1" * 62


@pytest.fixture()
def result():
    return estimate(COUNTS, qubit_params("qubit_gate_ns_e3"))


class TestPutGet:
    def test_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path)
        assert store.put(HASH_A, result, spec={"label": "x"})
        assert store.get(HASH_A) == result
        assert HASH_A in store
        assert list(store.keys()) == [HASH_A]
        assert len(store) == 1

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(HASH_A) is None
        assert HASH_A not in store

    def test_document_embeds_spec_and_schema(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result, spec={"label": "x"})
        document = store.get_raw(HASH_A)
        assert document["schema"] == RESULT_SCHEMA
        assert document["specHash"] == HASH_A
        assert document["spec"] == {"label": "x"}
        assert document["result"] == result.to_dict()

    def test_rewrite_is_idempotent(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.put(HASH_A, result)
        assert len(store) == 1
        assert store.get(HASH_A) == result

    def test_fanout_layout(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        expected = tmp_path / RESULT_SCHEMA / HASH_A[:2] / f"{HASH_A}.json"
        assert expected.is_file()
        assert store.path_for(HASH_A) == expected

    def test_malformed_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            store.path_for("../../etc/passwd")
        with pytest.raises(ValueError, match="malformed"):
            store.get("")

    def test_no_temp_files_left_behind(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.put(HASH_B, result)
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestRobustness:
    def test_corrupt_file_reads_as_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.path_for(HASH_A).write_text("{not json")
        assert store.get(HASH_A) is None

    def test_wrong_schema_tag_is_invisible(self, tmp_path, result):
        old = ResultStore(tmp_path, schema="repro-result-v0")
        old.put(HASH_A, result)
        current = ResultStore(tmp_path)
        assert current.get(HASH_A) is None
        assert len(current) == 0
        # And vice versa: the old namespace still reads its own entry.
        assert old.get(HASH_A) == result

    def test_mismatched_hash_inside_document_is_a_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        document = json.loads(store.path_for(HASH_A).read_text())
        document["specHash"] = HASH_B
        store.path_for(HASH_A).write_text(json.dumps(document))
        assert store.get(HASH_A) is None

    def test_unwritable_root_degrades_to_noop(self, tmp_path, result):
        # A root whose parent is a regular file can never be created
        # (works even when the suite runs as root, unlike chmod tricks).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = ResultStore(blocker / "store")
        assert store.put(HASH_A, result) is False
        assert store.get(HASH_A) is None

    def test_clear(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(HASH_A, result)
        store.put(HASH_B, result)
        assert store.clear() == 2
        assert len(store) == 0


class TestDefaultRoot:
    def test_env_var_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "custom"))
        assert default_store_root() == tmp_path / "custom"
        assert ResultStore().root == tmp_path / "custom"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        root = default_store_root()
        assert root.name == "store"
        assert "repro" in str(root)
