"""Result serialization round-trips: ``to_dict`` -> JSON -> ``from_dict``.

The invariant backing the persistent store and the estimation service:
for every result the estimator can produce,
``PhysicalResourceEstimates.from_dict(json.loads(result.to_json()))``
equals the original result — including the full T-factory design, the
QEC scheme formulas, and the qubit parameters.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    Constraints,
    ErrorBudget,
    LogicalCounts,
    PhysicalResourceEstimates,
    QECScheme,
    RotationSynthesis,
    estimate,
    qubit_params,
)
from repro.budget import ErrorBudgetPartition
from repro.distillation import TFactory, TFactoryDesigner, design_t_factory
from repro.distillation.units import (
    DistillationUnit,
    LogicalUnitSpec,
    PhysicalUnitSpec,
    T15_RM_PREP,
    T15_SPACE_EFFICIENT,
)
from repro.qec import (
    FLOQUET_CODE,
    LogicalQubit,
    SURFACE_CODE_GATE_BASED,
    SURFACE_CODE_MAJORANA,
)
from repro.qubits import PREDEFINED_PROFILES, PhysicalQubitParams

WORKLOAD = LogicalCounts(
    num_qubits=60,
    t_count=50_000,
    ccz_count=10_000,
    rotation_count=200,
    rotation_depth=100,
    measurement_count=2_000,
)

#: Every predefined profile paired with every scheme that runs on it.
PROFILE_SCHEME_COMBOS = [
    (profile_name, scheme)
    for profile_name, profile in sorted(PREDEFINED_PROFILES.items())
    for scheme in (
        SURFACE_CODE_GATE_BASED,
        SURFACE_CODE_MAJORANA,
        FLOQUET_CODE,
    )
    if scheme.instruction_set is profile.instruction_set
]


def roundtrip(result: PhysicalResourceEstimates) -> PhysicalResourceEstimates:
    return PhysicalResourceEstimates.from_dict(json.loads(result.to_json()))


class TestFullResultRoundTrip:
    @pytest.mark.parametrize(
        "profile_name, scheme",
        PROFILE_SCHEME_COMBOS,
        ids=[f"{p}-{s.name}" for p, s in PROFILE_SCHEME_COMBOS],
    )
    def test_every_profile_scheme_combo(self, profile_name, scheme):
        result = estimate(
            WORKLOAD, qubit_params(profile_name), scheme=scheme, budget=1e-3
        )
        assert roundtrip(result) == result

    def test_clifford_only_result_without_t_factory(self):
        counts = LogicalCounts(num_qubits=5, measurement_count=10)
        result = estimate(counts, qubit_params("qubit_gate_ns_e4"))
        assert result.t_factory is None
        assert roundtrip(result) == result

    def test_constrained_result(self):
        result = estimate(
            WORKLOAD,
            qubit_params("qubit_maj_ns_e4"),
            budget=1e-4,
            constraints=Constraints(max_t_factories=2, logical_depth_factor=4.0),
        )
        assert result.t_factory is not None
        assert result.t_factory.copies <= 2
        assert roundtrip(result) == result

    def test_explicit_budget_and_custom_synthesis(self):
        result = estimate(
            WORKLOAD,
            qubit_params("qubit_gate_ns_e3"),
            budget=ErrorBudget.explicit(
                logical=5e-4, t_states=3e-4, rotations=1e-4
            ),
            synthesis=RotationSynthesis(a=0.6, b=6.0),
        )
        assert roundtrip(result) == result

    def test_roundtrip_preserves_derived_accessors(self):
        result = estimate(WORKLOAD, qubit_params("qubit_maj_ns_e4"), budget=1e-4)
        back = roundtrip(result)
        assert back.physical_qubits == result.physical_qubits
        assert back.runtime_seconds == result.runtime_seconds
        assert back.code_distance == result.code_distance
        assert back.rqops == result.rqops
        assert back.pre_layout == WORKLOAD
        assert back.summary() == result.summary()

    def test_double_roundtrip_is_stable(self):
        result = estimate(WORKLOAD, qubit_params("qubit_gate_us_e4"))
        once = roundtrip(result)
        assert roundtrip(once) == once
        assert once.to_dict() == result.to_dict()


class TestSubObjectRoundTrips:
    def test_physical_qubit_params_all_profiles(self):
        for params in PREDEFINED_PROFILES.values():
            back = PhysicalQubitParams.from_dict(
                json.loads(json.dumps(params.to_dict()))
            )
            assert back == params

    def test_physical_qubit_params_rejects_unknown_fields(self):
        data = qubit_params("qubit_gate_ns_e3").to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            PhysicalQubitParams.from_dict(data)

    def test_qec_scheme(self):
        for scheme in (SURFACE_CODE_GATE_BASED, SURFACE_CODE_MAJORANA, FLOQUET_CODE):
            back = QECScheme.from_dict(json.loads(json.dumps(scheme.to_dict())))
            assert back == scheme

    def test_qec_scheme_missing_fields(self):
        with pytest.raises(Exception, match="missing"):
            QECScheme.from_dict({"name": "x"})

    def test_logical_qubit(self):
        qubit = qubit_params("qubit_maj_ns_e4")
        lq = LogicalQubit.for_target_error_rate(FLOQUET_CODE, qubit, 1e-9)
        back = LogicalQubit.from_dict(json.loads(json.dumps(lq.to_dict())), qubit)
        assert back == lq
        assert back.physical_qubits == lq.physical_qubits
        assert back.cycle_time_ns == lq.cycle_time_ns

    def test_t_factory_with_physical_first_round(self):
        qubit = qubit_params("qubit_gate_ns_e4")
        factory = design_t_factory(qubit, SURFACE_CODE_GATE_BASED, 1e-9)
        back = TFactory.from_dict(json.loads(json.dumps(factory.to_dict())))
        assert back == factory
        assert back.input_t_states == factory.input_t_states

    def test_t_factory_with_custom_unit(self):
        compact = T15_RM_PREP.customized(
            name="15-to-1 compact",
            logical_spec=LogicalUnitSpec(num_logical_qubits=16, duration_in_cycles=21),
        )
        designer = TFactoryDesigner(units=(compact, T15_SPACE_EFFICIENT))
        qubit = qubit_params("qubit_maj_ns_e4")
        factory = designer.design(qubit, FLOQUET_CODE, 1e-8)
        back = TFactory.from_dict(json.loads(json.dumps(factory.to_dict())))
        assert back == factory

    def test_distillation_unit(self):
        for unit in (T15_RM_PREP, T15_SPACE_EFFICIENT):
            back = DistillationUnit.from_dict(
                json.loads(json.dumps(unit.to_dict()))
            )
            assert back == unit

    def test_unit_specs(self):
        physical = T15_RM_PREP.physical_spec
        assert physical is not None
        assert PhysicalUnitSpec.from_dict(physical.to_dict()) == physical
        logical = T15_RM_PREP.logical_spec
        assert logical is not None
        assert LogicalUnitSpec.from_dict(logical.to_dict()) == logical

    def test_error_budget_partition(self):
        part = ErrorBudgetPartition(logical=1e-4, t_states=2e-4, rotations=3e-4)
        assert ErrorBudgetPartition.from_dict(part.to_dict()) == part

    def test_error_budget(self):
        total = ErrorBudget(total=1e-3)
        assert ErrorBudget.from_dict(total.to_dict()) == total
        assert ErrorBudget.from_dict(1e-3) == total
        explicit = ErrorBudget.explicit(logical=1e-4, t_states=2e-4, rotations=3e-4)
        assert ErrorBudget.from_dict(explicit.to_dict()) == explicit

    def test_constraints(self):
        constraints = Constraints(
            max_t_factories=3,
            logical_depth_factor=2.0,
            max_duration_ns=1e12,
            max_physical_qubits=10**9,
        )
        assert Constraints.from_dict(constraints.to_dict()) == constraints
        assert Constraints.from_dict({}) == Constraints()

    def test_rotation_synthesis(self):
        model = RotationSynthesis(a=0.61, b=8.0)
        assert RotationSynthesis.from_dict(model.to_dict()) == model
