"""Benchmark of the persistent execution engine (``estimator/engine.py``).

The acceptance floor for the engine layer, on a chunked sweep of cheap
points (where pool lifecycle overhead — spawn, interpreter state, cold
worker memo tables — dominates the actual estimation work):

* a warm persistent pool sustains **>= 2x** the points/sec of per-call
  pools over the same chunk schedule (a local run measures far more —
  per-call pays a full pool spawn per chunk), and
* every pass — per-call cold/warm, persistent cold/warm — produces
  **bit-for-bit identical** outcomes; the engine only changes where
  processes are spawned, never what is computed.

Measured numbers are emitted to ``BENCH_sweep_engine.json`` next to the
repository root for trend tracking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import LogicalCounts, Registry
from repro.estimator.batch import EstimateCache
from repro.estimator.engine import ExecutionEngine
from repro.estimator.spec import EstimateSpec, run_specs

#: Cheap, distinct points: a small program over a geometric budget
#: ladder, so per-point estimation is milliseconds and the pool
#: lifecycle is the measured quantity.
COUNTS = LogicalCounts(num_qubits=30, t_count=10_000, measurement_count=100)
BUDGETS = [1e-2 * (0.7**i) for i in range(24)]

CHUNK_SIZE = 3
WORKERS = 2
SPEEDUP_FLOOR = 2.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep_engine.json"


def _specs() -> list[EstimateSpec]:
    return [
        EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", budget=budget)
        for budget in BUDGETS
    ]


def _run_chunked(
    registry: Registry, engine: ExecutionEngine | None
) -> tuple[list, float, int]:
    """One pass over the ladder in fixed chunks, timing the whole drive.

    A fresh default-designer cache per pass keeps parent-side memo
    tables cold, so worker-resident warmth (the engine's whole point)
    is the only difference between the modes.
    """
    specs = _specs()
    cache = EstimateCache()
    outcomes: list = []
    chunks = 0
    start = time.perf_counter()
    for position in range(0, len(specs), CHUNK_SIZE):
        outcomes.extend(
            run_specs(
                specs[position : position + CHUNK_SIZE],
                registry=registry,
                cache=cache,
                max_workers=WORKERS,
                engine=engine,
            )
        )
        chunks += 1
    return outcomes, max(time.perf_counter() - start, 1e-9), chunks


def _portable(outcomes: list) -> list:
    return [
        outcome.result.to_dict() if outcome.result is not None else outcome.error
        for outcome in outcomes
    ]


def test_persistent_pool_at_least_2x_per_call_with_equal_results():
    registry = Registry()
    passes: dict[str, dict[str, dict[str, float]]] = {}
    baseline: list | None = None

    def record(mode: str, phase: str, engine: ExecutionEngine | None) -> None:
        nonlocal baseline
        outcomes, seconds, chunks = _run_chunked(registry, engine)
        passes.setdefault(mode, {})[phase] = {
            "time_s": round(seconds, 4),
            "points_per_s": round(len(BUDGETS) / seconds, 1),
            "chunks_per_s": round(chunks / seconds, 2),
        }
        if baseline is None:
            baseline = _portable(outcomes)
        else:
            assert _portable(outcomes) == baseline, f"{mode}/{phase} diverged"

    record("perCall", "cold", None)
    record("perCall", "warm", None)
    with ExecutionEngine(max_workers=WORKERS) as engine:
        record("persistent", "cold", engine)
        record("persistent", "warm", engine)
        stats = engine.stats()

    assert stats["poolSpawns"] == 1, stats
    assert stats["rebuilds"] == 0, stats

    speedup = (
        passes["persistent"]["warm"]["points_per_s"]
        / passes["perCall"]["warm"]["points_per_s"]
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm persistent pool reached only {speedup:.1f}x the per-call "
        f"throughput ({passes}); floor is {SPEEDUP_FLOOR}x"
    )

    print(
        f"\nengine: persistent warm {passes['persistent']['warm']['points_per_s']} "
        f"pts/s vs per-call warm {passes['perCall']['warm']['points_per_s']} "
        f"pts/s ({speedup:.1f}x)"
    )
    BENCH_PATH.write_text(
        json.dumps(
            {
                "points": len(BUDGETS),
                "chunkSize": CHUNK_SIZE,
                "workers": WORKERS,
                "perCall": passes["perCall"],
                "persistent": passes["persistent"],
                "warmSpeedup": round(speedup, 1),
                "resultsEqual": True,
                "engineStats": stats,
            },
            indent=2,
        )
        + "\n"
    )
