"""Reproduction drivers for every figure and in-text result of the paper.

* :mod:`repro.experiments.fig3` — Fig. 3: physical qubits and runtime of
  the three multipliers vs input size (32..16384 bits) on
  ``qubit_maj_ns_e4`` with the floquet code at budget 1e-4.
* :mod:`repro.experiments.fig4` — Fig. 4: physical qubits and runtime of
  the three multipliers at 2048 bits across all six hardware profiles.
* :mod:`repro.experiments.claims` — the Sec. V in-text numbers: logical
  operations / logical qubits of 2048-bit windowed multiplication, the
  runtime span, the rQOPS span, and the qualitative findings.

``python -m repro.experiments [fig3|fig4|claims|all]`` prints the tables.
"""

from .runner import EstimateRow, run_estimate_row, run_estimate_rows
from .fig3 import FIG3_BIT_SIZES, run_fig3
from .fig4 import FIG4_PROFILES, run_fig4
from .claims import evaluate_claims

__all__ = [
    "EstimateRow",
    "FIG3_BIT_SIZES",
    "FIG4_PROFILES",
    "evaluate_claims",
    "run_estimate_row",
    "run_estimate_rows",
    "run_fig3",
    "run_fig4",
]
