"""Standard long multiplication (paper Sec. V, "standard multiplication").

``acc += x * k`` one bit of ``x`` at a time: for bit ``i``, conditionally
add ``k << i`` into the accumulator window ``acc[i : i+n+1]`` (the window
bound is exact: after ``i`` partial additions the running sum is below
``2^(n+i+1)``, so carries never escape the window). Each controlled
constant addition costs ``n`` ANDs via the shared-scratch imprint trick,
for ``n^2`` ANDs total — the Omega(n^2) complexity the paper quotes.
"""

from __future__ import annotations

from typing import Sequence

from ...ir import Builder
from ..adders import (
    add_constant_controlled,
    add_constant_controlled_counts,
    add_into,
    add_into_counts,
)
from ..tally import GateTally
from .base import Multiplier


class SchoolbookMultiplier(Multiplier):
    """Theta(n^2) ANDs, Theta(n) workspace."""

    name = "schoolbook"

    def emit(
        self, builder: Builder, x: Sequence[int], acc: Sequence[int]
    ) -> None:
        emit_schoolbook(builder, x, acc, self.constant)

    def tally(self) -> GateTally:
        n = self.bits
        body = schoolbook_tally(n, 2 * n, self.constant)
        return body + GateTally(measurements=2 * n)  # final readout

    def num_qubits(self) -> int:
        n = self.bits
        return 3 * n + schoolbook_peak_workspace(n, 2 * n, self.constant)


def emit_schoolbook(
    builder: Builder,
    x: Sequence[int],
    acc: Sequence[int],
    constant: int,
) -> None:
    """``acc += x * constant`` into an accumulator window of any length.

    Used directly by the multiplier and as the Karatsuba recursion base.
    """
    n = len(x)
    m = len(acc)
    if constant == 0 or n == 0:
        return
    scratch = builder.allocate_register(min(n, m))
    for i in range(n):
        if i >= m:
            break
        window = acc[i : i + n + 1]
        add_constant_controlled(builder, x[i], constant, window, scratch)
    builder.release_register(scratch)


def schoolbook_tally(n: int, acc_len: int, constant: int) -> GateTally:
    """Mirror of :func:`emit_schoolbook`."""
    total = GateTally()
    if constant == 0 or n == 0:
        return total
    for i in range(min(n, acc_len)):
        window_len = min(n + 1, acc_len - i)
        total = total + add_constant_controlled_counts(constant, window_len)
    return total


def schoolbook_peak_workspace(n: int, acc_len: int, constant: int) -> int:
    """Peak ancillas of :func:`emit_schoolbook` beyond x and acc."""
    if constant == 0 or n == 0:
        return 0
    scratch = min(n, acc_len)
    peak_carries = 0
    for i in range(min(n, acc_len)):
        window_len = min(n + 1, acc_len - i)
        masked = constant & ((1 << window_len) - 1)
        if masked == 0 or window_len < 2:
            continue
        peak_carries = max(peak_carries, window_len - 1)
    return scratch + peak_carries


def schoolbook_multiply_qq(
    builder: Builder,
    x: Sequence[int],
    y: Sequence[int],
    acc: Sequence[int],
) -> None:
    """Quantum-by-quantum ``acc += x * y`` (library extra, not benchmarked).

    For each bit of ``x``, the partial product ``x_i AND y`` is computed
    into a temporary register with temporary ANDs, added into the window,
    and uncomputed for free: ``2 n^2`` ANDs, ``Theta(n)`` workspace.
    """
    n = len(x)
    if len(acc) < len(x) + len(y):
        raise ValueError(
            f"accumulator ({len(acc)} qubits) too small for a "
            f"{len(x)}x{len(y)}-bit product"
        )
    for i in range(n):
        partial = [builder.and_compute(x[i], yq) for yq in y]
        window = acc[i : i + len(y) + 1]
        add_into(builder, partial, window)
        for yq, pq in zip(reversed(y), reversed(partial)):
            builder.and_uncompute(x[i], yq, pq)


def schoolbook_multiply_qq_tally(x_len: int, y_len: int, acc_len: int) -> GateTally:
    """Mirror of :func:`schoolbook_multiply_qq`."""
    total = GateTally()
    for i in range(x_len):
        window_len = min(y_len + 1, acc_len - i)
        total = total + GateTally(ccix=y_len, measurements=y_len)
        total = total + add_into_counts(y_len, window_len)
    return total
