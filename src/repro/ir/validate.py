"""Structural validation of IR circuits.

The builder already enforces most invariants during construction; this
pass re-checks a finished (or externally produced) instruction stream so
that serialized/generated circuits get the same guarantees:

* every gate acts on currently-allocated, pairwise-distinct qubits;
* ALLOC/RELEASE are balanced and never double-allocate/release;
* AND targets are fresh ancillas that are uncomputed before release
  (the measurement-based uncompute contract);
* ACCOUNT indices point into the estimates table.
"""

from __future__ import annotations

from .circuit import Circuit, CircuitError
from .ops import (
    ONE_QUBIT_OPS,
    THREE_QUBIT_OPS,
    TWO_QUBIT_OPS,
    Op,
)


def validate(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` on the first malformed instruction."""
    active: set[int] = set()
    pending_and: set[int] = set()  # AND targets awaiting uncompute

    for index, (op, q0, q1, q2, param) in enumerate(circuit.instructions):
        where = f"instruction {index} ({Op(op).name})"
        if op == Op.ALLOC:
            if q0 in active:
                raise CircuitError(f"{where}: qubit {q0} already allocated")
            active.add(q0)
            continue
        if op == Op.RELEASE:
            if q0 not in active:
                raise CircuitError(f"{where}: qubit {q0} not allocated")
            if q0 in pending_and:
                raise CircuitError(
                    f"{where}: AND target {q0} released without uncompute"
                )
            active.discard(q0)
            continue
        if op == Op.ACCOUNT:
            idx = int(param)
            if not 0 <= idx < len(circuit.estimates):
                raise CircuitError(f"{where}: estimates index {idx} out of range")
            continue

        if op in ONE_QUBIT_OPS:
            qubits = (q0,)
        elif op in TWO_QUBIT_OPS:
            qubits = (q0, q1)
        elif op in THREE_QUBIT_OPS:
            qubits = (q0, q1, q2)
        else:
            raise CircuitError(f"{where}: unknown opcode {op}")

        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"{where}: repeated qubit in {qubits}")
        for q in qubits:
            if q not in active:
                raise CircuitError(f"{where}: qubit {q} not allocated")

        if op == Op.AND:
            if q2 in pending_and:
                raise CircuitError(f"{where}: AND target {q2} already pending")
            pending_and.add(q2)
        elif op == Op.AND_UNCOMPUTE:
            if q2 not in pending_and:
                raise CircuitError(
                    f"{where}: AND_UNCOMPUTE on {q2} without matching AND"
                )
            pending_and.discard(q2)

    if pending_and:
        raise CircuitError(
            f"circuit ends with un-uncomputed AND targets: {sorted(pending_and)}"
        )
