"""Tests for the estimation service (HTTP API + client).

The load-bearing assertion: a result served over HTTP is **bit-for-bit**
equal to the in-process ``estimate()`` / ``estimate_batch()`` result —
the JSON transport is lossless. The CI ``service-smoke`` job re-asserts
this against a real ``repro serve`` process.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time

import pytest

from repro import (
    EstimateSpec,
    LogicalCounts,
    ProgramRef,
    ResultStore,
    estimate,
    estimate_batch,
    qubit_params,
)
from repro.estimator.batch import EstimateRequest
from repro.registry import Registry
from repro.service import (
    EstimationService,
    ServiceClient,
    ServiceError,
    make_server,
)

COUNTS = LogicalCounts(num_qubits=50, t_count=100_000, measurement_count=1_000)

CUSTOM_QUBIT = {
    "name": "service_test_qubit",
    "instruction_set": "gate_based",
    "one_qubit_measurement_time_ns": 80.0,
    "one_qubit_measurement_error_rate": 5e-4,
    "one_qubit_gate_time_ns": 40.0,
    "one_qubit_gate_error_rate": 5e-4,
    "two_qubit_gate_time_ns": 40.0,
    "two_qubit_gate_error_rate": 5e-4,
    "t_gate_time_ns": 40.0,
    "t_gate_error_rate": 5e-4,
}


@pytest.fixture()
def service(tmp_path):
    registry = Registry()
    registry.load_scenario({"qubitParams": [CUSTOM_QUBIT]})
    return EstimationService(registry=registry, store=ResultStore(tmp_path))


@pytest.fixture()
def client(service):
    with service_server(service) as served:
        yield served


@contextlib.contextmanager
def service_server(service=None, **server_kwargs):
    """A live server (on a free port) wrapped in a ServiceClient."""
    service = (
        service
        if service is not None
        else EstimationService(registry=Registry(), store=None)
    )
    server = make_server("127.0.0.1", 0, service=service, **server_kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield ServiceClient(f"http://127.0.0.1:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestSubmit:
    def test_single_spec_matches_in_process_bit_for_bit(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3", label="one")
        record = client.submit(spec)
        assert record["ok"] is True
        assert record["label"] == "one"
        # The service addresses results by the *resolved* hash (profile
        # names inlined via its registry), not the client's syntactic one.
        assert record["specHash"] == spec.content_hash(Registry())
        expected = estimate(COUNTS, qubit_params("qubit_gate_ns_e3"))
        # Bit-for-bit: the HTTP JSON equals the local report dict exactly.
        assert record["result"] == json.loads(json.dumps(expected.to_dict()))
        assert record["result"] == expected.to_dict()

    def test_batch_matches_estimate_batch(self, client):
        specs = [
            EstimateSpec(program=COUNTS, qubit=profile, budget=1e-4, label=profile)
            for profile in ("qubit_gate_ns_e3", "qubit_maj_ns_e4")
        ]
        records = client.submit_batch(specs)
        assert [r["label"] for r in records] == [s.label for s in specs]
        outcomes = estimate_batch(
            [
                EstimateRequest(
                    program=COUNTS, qubit=qubit_params(profile), budget=1e-4
                )
                for profile in ("qubit_gate_ns_e3", "qubit_maj_ns_e4")
            ]
        )
        for record, outcome in zip(records, outcomes):
            assert record["ok"]
            assert record["result"] == outcome.unwrap().to_dict()

    def test_program_ref_spec(self, client):
        spec = EstimateSpec(
            program=ProgramRef(kind="multiplier", algorithm="windowed", bits=64),
            qubit="qubit_maj_ns_e4",
            budget=1e-4,
        )
        record = client.submit(spec)
        assert record["ok"], record["error"]
        assert record["result"]["physicalCounts"]["physicalQubits"] > 0

    def test_second_submission_served_from_store(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e4")
        first = client.submit(spec)
        second = client.submit(spec)
        assert first["fromStore"] is False
        assert second["fromStore"] is True
        assert second["result"] == first["result"]

    def test_scenario_qubit_flows_through_service(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="service_test_qubit")
        record = client.submit(spec)
        assert record["ok"], record["error"]
        assert (
            record["result"]["physicalQubitParameters"]["name"]
            == "service_test_qubit"
        )

    def test_infeasible_spec_reports_error_record(self, client):
        from repro import Constraints

        spec = EstimateSpec(
            program=COUNTS,
            qubit="qubit_gate_ns_e3",
            constraints=Constraints(max_physical_qubits=10),
        )
        record = client.submit(spec)
        assert record["ok"] is False
        assert "exceed" in record["error"]

    def test_bad_spec_in_batch_fails_per_record(self, client):
        good = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        records = client.submit_batch(
            [good, {"program": {"counts": COUNTS.to_dict()}}]  # missing qubit
        )
        assert records[0]["ok"] is True
        assert records[1]["ok"] is False
        assert "qubit" in records[1]["error"]

    def test_unknown_profile_fails_per_record(self, client):
        record = client.submit(EstimateSpec(program=COUNTS, qubit="bogus"))
        assert record["ok"] is False
        assert "bogus" in record["error"]

    def test_partial_budget_fails_per_record_not_batch(self, client):
        # Regression: a budget object missing a field used to raise
        # KeyError past the per-spec handler and 500 the whole batch.
        good = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        records = client.submit_batch(
            [
                good,
                {
                    "program": {"counts": COUNTS.to_dict()},
                    "qubit": {"profile": "qubit_gate_ns_e3"},
                    "budget": {"logical": 1e-4, "tStates": 1e-4},
                },
            ]
        )
        assert records[0]["ok"] is True
        assert records[1]["ok"] is False
        assert "rotations" in records[1]["error"]


class TestResultsEndpoint:
    def test_get_by_hash_round_trips(self, client):
        spec = EstimateSpec(program=COUNTS, qubit="qubit_maj_ns_e4", budget=1e-4)
        record = client.submit(spec)
        document = client.result(record["specHash"])
        assert document is not None
        assert document["result"] == record["result"]
        assert document["spec"] == spec.to_dict()

    def test_unknown_hash_is_none(self, client):
        assert client.result("ab" + "0" * 62) is None


class TestIntrospection:
    def test_registry_endpoint_includes_scenario_entries(self, client):
        description = client.registry()
        assert "service_test_qubit" in description["qubitParams"]
        assert "surface_code" in description["qecSchemes"]

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["store"] is not None


class TestProtocolErrors:
    def test_bad_json_body_is_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/v1/estimate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_empty_specs_list_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/estimate", {"specs": []})
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/bogus")
        assert excinfo.value.status == 404

    def test_oversized_body_is_413_and_closes_connection(self, client):
        # Regression: an early rejection leaves the (unread) body on the
        # socket; on keep-alive the server must close the connection so
        # the leftover bytes are never parsed as the next request.
        import http.client
        from repro.service import MAX_BODY_BYTES

        host = client.base_url.split("//")[1]
        connection = http.client.HTTPConnection(host, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/estimate",
                body=b"x" * 16,
                headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
            )
            response = connection.getresponse()
            assert response.status == 413
            assert response.headers.get("Connection") == "close"
        finally:
            connection.close()

    def test_body_limit_is_configurable(self):
        with service_server(max_body_bytes=64) as client:
            # Under the configured limit: handled normally (the invalid
            # envelope fails at parse time, not at the size gate).
            with pytest.raises(ServiceError) as excinfo:
                client._request("/v1/estimate", ["not-a-spec"])
            assert excinfo.value.status == 400
            # Over it: 413 before the body is even read.
            oversized = {"label": "x" * 200}
            with pytest.raises(ServiceError) as excinfo:
                client._request("/v1/estimate", oversized)
            assert excinfo.value.status == 413
            assert "exceeds" in str(excinfo.value)

    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2, backoff=0.001)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestClientRetries:
    """ServiceClient retry policy: transient failures only, bounded, jittered.

    Attempts are counted by stubbing ``_open`` (the single-HTTP-attempt
    seam); no server is needed.
    """

    @staticmethod
    def _client(**kwargs):
        kwargs.setdefault("backoff", 0.001)  # keep the suite fast
        return ServiceClient("http://stub.invalid", **kwargs)

    @staticmethod
    def _http_error(code: int):
        import io
        import urllib.error

        return urllib.error.HTTPError(
            "http://stub.invalid/v1/estimate",
            code,
            "boom",
            hdrs=None,
            fp=io.BytesIO(json.dumps({"error": f"status {code}"}).encode()),
        )

    def _stub(self, client, failures):
        """Make ``_open`` raise each exception in ``failures`` in turn,
        then succeed; returns the attempt log."""
        attempts = []

        def fake_open(request):
            attempts.append(request.full_url)
            if len(attempts) <= len(failures):
                raise failures[len(attempts) - 1]
            return {"ok": True}

        client._open = fake_open
        return attempts

    def test_connection_errors_are_retried_until_success(self):
        import urllib.error

        client = self._client(retries=3)
        attempts = self._stub(client, [urllib.error.URLError("refused")] * 2)
        assert client._request("/v1/healthz") == {"ok": True}
        assert len(attempts) == 3

    def test_5xx_is_retried_until_success(self):
        client = self._client(retries=2)
        attempts = self._stub(client, [self._http_error(503)])
        assert client._request("/v1/healthz") == {"ok": True}
        assert len(attempts) == 2

    def test_4xx_is_never_retried(self):
        client = self._client(retries=5)
        attempts = self._stub(client, [self._http_error(404) for _ in range(6)])
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/healthz")
        assert excinfo.value.status == 404
        assert len(attempts) == 1

    def test_exhausted_retries_raise_the_last_error(self):
        client = self._client(retries=2)
        attempts = self._stub(client, [self._http_error(500) for _ in range(3)])
        with pytest.raises(ServiceError) as excinfo:
            client._request("/v1/healthz")
        assert excinfo.value.status == 500
        assert "status 500" in str(excinfo.value)
        assert len(attempts) == 3  # 1 + retries

    def test_retries_zero_opts_out(self):
        import urllib.error

        client = self._client(retries=0)
        attempts = self._stub(client, [urllib.error.URLError("refused")])
        with pytest.raises(ServiceError, match="cannot reach"):
            client._request("/v1/healthz")
        assert len(attempts) == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("http://stub.invalid", retries=-1)

    def test_backoff_grows_exponentially_with_jitter_and_cap(self):
        client = self._client(backoff=0.1, max_backoff=0.4)
        for attempt, ceiling in ((0, 0.1), (1, 0.2), (2, 0.4), (5, 0.4)):
            delays = {client._retry_delay(attempt) for _ in range(50)}
            assert all(ceiling / 2 <= delay < ceiling for delay in delays)
            assert len(delays) > 1  # jittered, not constant


class TestServiceWithoutStore:
    def test_submit_recomputes_and_results_miss(self):
        service = EstimationService(registry=Registry(), store=None)
        spec = EstimateSpec(program=COUNTS, qubit="qubit_gate_ns_e3")
        record = service.submit(spec.to_dict())
        assert record["ok"] and record["fromStore"] is False
        again = service.submit(spec.to_dict())
        assert again["fromStore"] is False
        assert service.result_document(record["specHash"]) is None


class TestConcurrentSubmissions:
    """N threads POSTing overlapping specs/batches over one shared store.

    Every concurrent response must be bit-for-bit equal to what a serial
    service computes for the same spec, and the shared store directory
    must hold only whole, digest-valid documents — no torn files.
    """

    PROFILES = ("qubit_gate_ns_e3", "qubit_gate_ns_e4", "qubit_maj_ns_e4")
    BUDGETS = (1e-4, 1e-3)

    def _specs(self):
        return [
            EstimateSpec(
                program=COUNTS,
                qubit=profile,
                budget=budget,
                label=f"{profile}/{budget}",
            )
            for profile in self.PROFILES
            for budget in self.BUDGETS
        ]

    def test_concurrent_matches_serial_and_no_torn_files(self, tmp_path):
        specs = self._specs()

        # Serial baseline: a fresh service + store, one request at a time.
        serial = EstimationService(
            registry=Registry(), store=ResultStore(tmp_path / "serial")
        )
        baseline = {
            record["label"]: record
            for record in serial.submit({"specs": [s.to_dict() for s in specs]})[
                "results"
            ]
        }
        serial.close()

        # Concurrent: 8 threads POST overlapping batches over HTTP
        # against one service sharing one store.
        shared_store = ResultStore(tmp_path / "shared")
        service = EstimationService(registry=Registry(), store=shared_store)
        server = make_server("127.0.0.1", 0, service=service)
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        client_url = f"http://127.0.0.1:{server.server_address[1]}"

        # Overlapping batches: each thread submits a rotation of the same
        # specs, so every spec is computed by several threads at once.
        batches = [
            specs[offset % len(specs) :] + specs[: offset % len(specs)]
            for offset in range(8)
        ]
        responses: list[list[dict] | Exception] = [None] * len(batches)

        def worker(index: int) -> None:
            try:
                client = ServiceClient(client_url)
                responses[index] = client.submit_batch(batches[index])
            except Exception as exc:  # surfaced by the assertions below
                responses[index] = exc

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(batches))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        try:
            for batch, records in zip(batches, responses):
                assert not isinstance(records, Exception), records
                for spec, record in zip(batch, records):
                    expected = baseline[spec.label]
                    assert record["ok"], record["error"]
                    assert record["specHash"] == expected["specHash"]
                    assert record["result"] == expected["result"]

            # No torn store files: every document on disk parses and
            # passes the integrity check.
            files = list((tmp_path / "shared").rglob("*.json"))
            assert len(files) == len(specs)
            for path in files:
                json.loads(path.read_text())  # whole JSON
                assert shared_store.get_raw(path.stem) is not None, path
            leftovers = [p for p in (tmp_path / "shared").rglob("*.tmp")]
            assert leftovers == []
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=5)
            service.close()


SWEEP_DOC = {
    "base": {"program": {"counts": None}},  # counts filled in below
    "axes": [
        {"field": "budget", "values": [1e-4, 1e-3]},
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]},
    ],
    "frontier": {"objective": "qubits-runtime", "groupBy": ["qubit"]},
}
SWEEP_DOC["base"]["program"]["counts"] = COUNTS.to_dict()


class TestSweepJobs:
    def test_job_lifecycle_over_http(self, client):
        record = client.submit_sweep(SWEEP_DOC)
        assert record["status"] in ("queued", "running", "done")
        assert record["total"] == 4
        job_id = record["jobId"]

        document = client.wait_for_sweep(job_id, timeout=120)
        assert document["sweepHash"] == job_id
        assert document["counts"] == {"total": 4, "ok": 4, "failed": 0}
        assert len(document["frontiers"]) == 2

        status = client.job(job_id)
        assert status["status"] == "done"
        assert status["completed"] == status["total"] == 4
        assert status["resultUrl"] == f"/v1/sweeps/{job_id}/result"

    def test_resubmission_joins_the_finished_job(self, client):
        first = client.submit_sweep(SWEEP_DOC)
        client.wait_for_sweep(first["jobId"], timeout=120)
        again = client.submit_sweep(SWEEP_DOC)
        assert again["jobId"] == first["jobId"]
        assert again["status"] == "done"
        assert again["completed"] == again["total"]

    def test_unknown_job_is_404(self, client):
        assert client.job("ab" * 32) is None
        assert client.sweep_result("ab" * 32) is None

    def test_result_while_running_is_409(self, service, client):
        from repro.service import SweepJob

        job_id = "ef" * 32
        with service._jobs_lock:
            service._jobs[job_id] = SweepJob(job_id=job_id, status="running", total=4)
        with pytest.raises(ServiceError) as excinfo:
            client.sweep_result(job_id)
        assert excinfo.value.status == 409

    def test_malformed_sweep_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_sweep({"axes": []})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit_sweep({"axes": [{"field": "budget", "values": [1]}], "bogus": 1})
        assert excinfo.value.status == 400

    def test_restarted_server_reserves_finished_sweeps(self, tmp_path):
        """Job state survives via the store across service processes."""
        store_root = tmp_path / "store"
        first = EstimationService(registry=Registry(), store=ResultStore(store_root))
        record = first.submit_sweep(SWEEP_DOC)
        job_id = record["jobId"]
        deadline = time.monotonic() + 120
        while first.job_record(job_id)["status"] not in ("done", "failed"):
            assert time.monotonic() < deadline, "sweep job did not finish"
            time.sleep(0.02)
        document, status = first.sweep_result_document(job_id)
        assert status == "done"
        first.close()

        # A brand-new service over the same store re-serves the sweep —
        # both the result document and an immediately-done resubmission.
        second = EstimationService(registry=Registry(), store=ResultStore(store_root))
        try:
            redocument, restatus = second.sweep_result_document(job_id)
            assert restatus == "done"
            assert redocument == document
            assert second.job_record(job_id)["status"] == "done"
            resubmitted = second.submit_sweep(SWEEP_DOC)
            assert resubmitted["jobId"] == job_id
            assert resubmitted["status"] == "done"
        finally:
            second.close()

    def test_storeless_service_keeps_results_in_memory(self):
        service = EstimationService(registry=Registry(), store=None)
        try:
            record = service.submit_sweep(SWEEP_DOC)
            job_id = record["jobId"]
            deadline = time.monotonic() + 120
            while service.job_record(job_id)["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            document, status = service.sweep_result_document(job_id)
            assert status == "done"
            assert document["counts"]["ok"] == 4
        finally:
            service.close()

    def test_failed_job_is_retried_on_resubmission(self, monkeypatch, tmp_path):
        # A transient worker failure must not poison the job id forever.
        import repro.service as service_module

        real_run_sweep = service_module.run_sweep
        calls = {"count": 0}

        def flaky(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient worker failure")
            return real_run_sweep(*args, **kwargs)

        monkeypatch.setattr(service_module, "run_sweep", flaky)
        service = EstimationService(
            registry=Registry(), store=ResultStore(tmp_path)
        )
        try:
            record = service.submit_sweep(SWEEP_DOC)
            job_id = record["jobId"]
            deadline = time.monotonic() + 60
            while service.job_record(job_id)["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            failed = service.job_record(job_id)
            assert failed["status"] == "failed"
            assert "transient worker failure" in failed["error"]

            retried = service.submit_sweep(SWEEP_DOC)
            assert retried["jobId"] == job_id
            assert retried["status"] in ("queued", "running")
            while service.job_record(job_id)["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert service.job_record(job_id)["status"] == "done"
        finally:
            service.close()

    def test_persisted_results_are_not_pinned_in_memory(self, tmp_path):
        # With a store attached, a finished job releases its in-memory
        # result document; reads fall back to the stored copy.
        service = EstimationService(
            registry=Registry(), store=ResultStore(tmp_path)
        )
        try:
            record = service.submit_sweep(SWEEP_DOC)
            job_id = record["jobId"]
            deadline = time.monotonic() + 120
            while service.job_record(job_id)["status"] != "done":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            with service._jobs_lock:
                assert service._jobs[job_id].result_doc is None
            document, status = service.sweep_result_document(job_id)
            assert status == "done" and document["counts"]["ok"] == 4
        finally:
            service.close()

    def test_vanished_sweep_document_requeues_on_resubmission(self, tmp_path):
        # A done job whose stored document was corrupted or deleted must
        # heal by recomputation, not answer 409/"done" forever.
        store = ResultStore(tmp_path)
        service = EstimationService(registry=Registry(), store=store)
        try:
            record = service.submit_sweep(SWEEP_DOC)
            job_id = record["jobId"]
            deadline = time.monotonic() + 120
            while service.job_record(job_id)["status"] != "done":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            store.sweep_path_for(job_id).unlink()

            retried = service.submit_sweep(SWEEP_DOC)
            assert retried["jobId"] == job_id
            assert retried["status"] in ("queued", "running")
            while service.job_record(job_id)["status"] != "done":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            document, status = service.sweep_result_document(job_id)
            assert status == "done" and document["counts"]["ok"] == 4
        finally:
            service.close()

    def test_close_aborts_jobs_at_the_next_chunk_boundary(self, tmp_path):
        # A closing service must not keep grinding through a long sweep;
        # the aborted job reports a failed status, and its persisted
        # chunks resume after a restart.
        service = EstimationService(registry=Registry(), store=ResultStore(tmp_path))
        try:
            service._stopping.set()
            record = service.submit_sweep(SWEEP_DOC)
            job_id = record["jobId"]
            deadline = time.monotonic() + 60
            while service.job_record(job_id)["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            status = service.job_record(job_id)
            assert status["status"] == "failed"
            assert "shutting down" in status["error"]
        finally:
            service.close()

    def test_failed_estimation_points_do_not_fail_the_job(self, client):
        doc = json.loads(json.dumps(SWEEP_DOC))
        doc["axes"][1]["values"] = ["qubit_gate_ns_e3", "no_such_profile"]
        record = client.submit_sweep(doc)
        document = client.wait_for_sweep(record["jobId"], timeout=120)
        assert document["counts"] == {"total": 4, "ok": 2, "failed": 2}
        errors = [p["error"] for p in document["points"] if not p["ok"]]
        assert all("no_such_profile" in e for e in errors)


class TestKernelByteIdentity:
    """A sweep served with either estimation kernel persists identically.

    The ``kernel=`` choice is an execution hint: results, spec hashes,
    and therefore every byte the store writes (result documents, the
    sweep document, the counts cache) must not depend on it. The job
    status document's ``cacheStats.kernel`` counters are where the
    choice *is* allowed to show.
    """

    def _run_sweep_service(self, store_root, kernel):
        service = EstimationService(
            registry=Registry(), store=ResultStore(store_root), kernel=kernel
        )
        try:
            job_id = service.submit_sweep(SWEEP_DOC)["jobId"]
            deadline = time.monotonic() + 120
            while service.job_record(job_id)["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline, "sweep job did not finish"
                time.sleep(0.02)
            status = service.job_record(job_id)
            assert status["status"] == "done", status.get("error")
            return status
        finally:
            service.close()

    def test_store_entries_byte_identical_across_kernels(self, tmp_path):
        scalar_root = tmp_path / "scalar"
        vector_root = tmp_path / "vectorized"
        scalar_status = self._run_sweep_service(scalar_root, "scalar")
        vector_status = self._run_sweep_service(vector_root, "vectorized")

        scalar_files = {
            path.relative_to(scalar_root): path.read_bytes()
            for path in scalar_root.rglob("*.json")
        }
        vector_files = {
            path.relative_to(vector_root): path.read_bytes()
            for path in vector_root.rglob("*.json")
        }
        assert scalar_files.keys() == vector_files.keys()
        assert scalar_files == vector_files
        assert len(scalar_files) > 0

        # The kernel counters on the job status tell the two runs apart.
        assert scalar_status["cacheStats"]["kernel"]["vectorized"] == 0
        assert scalar_status["cacheStats"]["kernel"]["scalar"] == 4
        vector_kernel = vector_status["cacheStats"]["kernel"]
        assert vector_kernel["scalar"] == 0
        assert vector_kernel["vectorized"] + vector_kernel["scalarFallback"] == 4


OPTIMIZE_DOC = {
    "base": {
        "program": {"counts": None},  # counts filled in below
        "qubit": {"profile": "qubit_gate_ns_e3"},
        "constraints": {"maxTFactories": 1},
    },
    "axes": [
        {"field": "budget", "geom": {"start": 1e-9, "factor": 1.7, "count": 24}}
    ],
    "objective": "min-qubits",
    "constraints": {"maxPhysicalQubits": 2_000_000},
}
OPTIMIZE_DOC["base"]["program"]["counts"] = COUNTS.to_dict()


class TestOptimizeJobs:
    def test_job_lifecycle_over_http(self, client):
        record = client.submit_optimize(OPTIMIZE_DOC)
        assert record["kind"] == "optimize"
        assert record["total"] == 24
        job_id = record["jobId"]

        document = client.wait_for_optimize(job_id, timeout=120)
        assert document["optimizeHash"] == job_id
        assert document["answer"]["objective"] == "min-qubits"
        assert document["answer"]["points"]
        assert document["counts"]["probes"] < 24, "the search must be adaptive"

        status = client.job(job_id)
        assert status["status"] == "done"
        assert status["kind"] == "optimize"
        assert status["evaluations"] <= document["counts"]["probes"]
        assert status["resultUrl"] == f"/v1/optimize/{job_id}/result"

    def test_resubmission_joins_and_reserves_the_answer(self, client):
        first = client.submit_optimize(OPTIMIZE_DOC)
        document = client.wait_for_optimize(first["jobId"], timeout=120)
        again = client.submit_optimize(OPTIMIZE_DOC)
        assert again["jobId"] == first["jobId"]
        assert again["status"] == "done"
        assert client.optimize_result(first["jobId"]) == document

    def test_unknown_job_is_404(self, client):
        assert client.optimize_result("ab" * 32) is None

    def test_result_while_running_is_409(self, service, client):
        from repro.service import SweepJob

        job_id = "0d" * 32
        with service._jobs_lock:
            service._jobs[job_id] = SweepJob(
                job_id=job_id, status="running", total=24, kind="optimize"
            )
        with pytest.raises(ServiceError) as excinfo:
            client.optimize_result(job_id)
        assert excinfo.value.status == 409

    def test_malformed_optimize_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_optimize({"axes": []})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit_optimize({**OPTIMIZE_DOC, "bogus": 1})
        assert excinfo.value.status == 400

    def test_restarted_server_reserves_finished_optimize(self, tmp_path):
        """The probe trace survives via the store across processes."""
        store_root = tmp_path / "store"
        first = EstimationService(registry=Registry(), store=ResultStore(store_root))
        record = first.submit_optimize(OPTIMIZE_DOC)
        job_id = record["jobId"]
        deadline = time.monotonic() + 120
        while first.job_record(job_id)["status"] not in ("done", "failed"):
            assert time.monotonic() < deadline, "optimize job did not finish"
            time.sleep(0.02)
        document, status = first.optimize_result_document(job_id)
        assert status == "done"
        first.close()

        second = EstimationService(registry=Registry(), store=ResultStore(store_root))
        try:
            redocument, restatus = second.optimize_result_document(job_id)
            assert restatus == "done"
            assert redocument == document
            assert second.job_record(job_id)["status"] == "done"
            resubmitted = second.submit_optimize(OPTIMIZE_DOC)
            assert resubmitted["jobId"] == job_id
            assert resubmitted["status"] == "done"
            assert resubmitted["evaluations"] == 0, "answered from the store"
        finally:
            second.close()

    def test_observability_counters(self, service, client):
        # Before any job: the full cacheStats block is on /v1/healthz.
        health = client.health()
        stats = health["cacheStats"]
        for key in ("kernel", "optimize", "queueDepth", "storeMemory"):
            assert key in stats, key
        assert stats["optimize"] == {"probes": 0, "evaluations": 0}
        assert stats["queueDepth"] == 0
        assert set(stats["storeMemory"]) == {"capacity", "results", "counts"}

        record = client.submit_optimize(OPTIMIZE_DOC)
        client.wait_for_optimize(record["jobId"], timeout=120)
        after = client.health()["cacheStats"]["optimize"]
        assert after["probes"] > 0
        assert 0 < after["evaluations"] <= after["probes"]
        # The job status document carries the same counters.
        job_stats = client.job(record["jobId"])["cacheStats"]
        assert job_stats["optimize"] == after
