"""Physical qubit parameter models (paper Sec. IV-C.1).

Two instruction sets are supported, mirroring the tool:

* **gate-based** — characterized by one-/two-qubit gate, T-gate, and
  single-qubit measurement times and error rates;
* **Majorana** — characterized by one-/two-qubit *measurement* times and
  error rates plus the T-gate (non-Clifford measurement) error rate.

Six predefined profiles are provided (three platforms x two regimes),
matching the names used by the tool and the paper's figures. Profiles can
be partially customized with :func:`qubit_params` /
``PhysicalQubitParams.customized``.
"""

from .params import InstructionSet, PhysicalQubitParams
from .profiles import (
    PREDEFINED_PROFILES,
    QUBIT_GATE_NS_E3,
    QUBIT_GATE_NS_E4,
    QUBIT_GATE_US_E3,
    QUBIT_GATE_US_E4,
    QUBIT_MAJ_NS_E4,
    QUBIT_MAJ_NS_E6,
    qubit_params,
)

__all__ = [
    "InstructionSet",
    "PhysicalQubitParams",
    "PREDEFINED_PROFILES",
    "QUBIT_GATE_NS_E3",
    "QUBIT_GATE_NS_E4",
    "QUBIT_GATE_US_E3",
    "QUBIT_GATE_US_E4",
    "QUBIT_MAJ_NS_E4",
    "QUBIT_MAJ_NS_E6",
    "qubit_params",
]
