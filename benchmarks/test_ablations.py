"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but sensitivity studies a user of the tool
would run: window-size sweeps, Karatsuba cutoff/cleanup choices, error
budget sensitivity, and the T-factory constraint trade-off.
"""

from __future__ import annotations

import pytest

from repro import Constraints, estimate, estimate_frontier, qubit_params
from repro.arithmetic import (
    KaratsubaMultiplier,
    SchoolbookMultiplier,
    WindowedMultiplier,
    default_window_size,
)

MAJ = qubit_params("qubit_maj_ns_e4")
BITS = 1024


def test_ablation_window_size(benchmark, capsys):
    """The default window is within a few percent of the best window."""
    def sweep():
        results = {}
        for window in range(2, 11):
            counts = WindowedMultiplier(BITS, window=window).logical_counts()
            results[window] = estimate(counts, MAJ, budget=1e-4).runtime_seconds
        return results

    runtimes = benchmark(sweep)
    best_window = min(runtimes, key=runtimes.get)
    default = default_window_size(BITS)
    assert runtimes[default] <= runtimes[best_window] * 1.15
    with capsys.disabled():
        print(f"\nwindow sweep @ {BITS} bits: best w={best_window}, default w={default}")
        for w, t in sorted(runtimes.items()):
            print(f"  w={w:2d}: {t:8.3f} s")


def test_ablation_karatsuba_cutoff(benchmark):
    """Larger cutoffs trade AND count for workspace (and vice versa)."""
    def sweep():
        return {
            cutoff: KaratsubaMultiplier(2048, cutoff=cutoff).logical_counts()
            for cutoff in (64, 128, 256, 512, 1024)
        }

    by_cutoff = benchmark(sweep)
    ands = [c.ccix_count for _, c in sorted(by_cutoff.items())]
    widths = [c.num_qubits for _, c in sorted(by_cutoff.items())]
    # Small cutoffs recurse deeper: fewer ANDs, more workspace.
    assert ands == sorted(ands)
    assert widths == sorted(widths, reverse=True)


def test_ablation_karatsuba_bennett_cleanup(benchmark):
    """Bennett cleanup roughly doubles ANDs but frees all workspace."""
    def both():
        return (
            KaratsubaMultiplier(BITS, clean=True).logical_counts(),
            KaratsubaMultiplier(BITS, clean=False).logical_counts(),
        )

    clean, dirty = benchmark(both)
    assert clean.ccix_count > 1.7 * dirty.ccix_count
    assert clean.ccix_count < 2.3 * dirty.ccix_count


def test_ablation_error_budget_sensitivity(benchmark, capsys):
    """Code distance and footprint vs total error budget (decade sweep)."""
    counts = SchoolbookMultiplier(BITS).logical_counts()

    def sweep():
        return {
            budget: estimate(counts, MAJ, budget=budget)
            for budget in (1e-2, 1e-3, 1e-4, 1e-5, 1e-6)
        }

    results = benchmark(sweep)
    budgets = sorted(results, reverse=True)  # loosest first
    distances = [results[b].code_distance for b in budgets]
    qubits = [results[b].physical_qubits for b in budgets]
    assert distances == sorted(distances)
    assert qubits == sorted(qubits)
    with capsys.disabled():
        print(f"\nbudget sweep @ {BITS} bits on {MAJ.name}:")
        for b in budgets:
            r = results[b]
            print(
                f"  budget {b:7.0e}: d={r.code_distance:2d}, "
                f"{r.physical_qubits:>11,} qubits, {r.runtime_seconds:7.2f} s"
            )


def test_ablation_t_factory_cap(benchmark):
    """Capping T factories monotonically shrinks qubits, stretches runtime."""
    counts = WindowedMultiplier(BITS).logical_counts()

    def sweep():
        uncapped = estimate(counts, MAJ, budget=1e-4)
        capped = {
            cap: estimate(
                counts, MAJ, budget=1e-4, constraints=Constraints(max_t_factories=cap)
            )
            for cap in (8, 4, 2, 1)
        }
        return uncapped, capped

    uncapped, capped = benchmark(sweep)
    assert uncapped.t_factory is not None
    previous_factory_qubits = uncapped.breakdown.physical_qubits_for_t_factories
    previous_runtime = uncapped.runtime_seconds
    for cap in (8, 4, 2, 1):
        r = capped[cap]
        assert r.t_factory is not None and r.t_factory.copies <= cap
        # The factory footprint shrinks monotonically with the cap; total
        # qubits need not (stretching the program can raise the code
        # distance, growing the algorithm's own footprint — the very
        # trade-off the frontier sweep exists to explore).
        assert (
            r.breakdown.physical_qubits_for_t_factories <= previous_factory_qubits
        )
        assert r.runtime_seconds >= previous_runtime
        previous_factory_qubits = r.breakdown.physical_qubits_for_t_factories
        previous_runtime = r.runtime_seconds


def test_ablation_frontier_consistency(benchmark):
    """The frontier endpoints agree with direct constrained estimates."""
    counts = SchoolbookMultiplier(256).logical_counts()

    def run():
        return estimate_frontier(counts, MAJ, budget=1e-4)

    points = benchmark(run)
    assert points
    direct = estimate(counts, MAJ, budget=1e-4)
    fastest = points[0]
    assert fastest.runtime_seconds <= direct.runtime_seconds * 1.001
