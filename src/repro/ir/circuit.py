"""Circuit container and builder front end.

``CircuitBuilder`` is the library's authoring API — the stand-in for the
Q#/Qiskit front ends of the tool. Qubits are plain integer ids managed by
an allocator with a free list, so releasing temporary ancillas and
re-allocating them reuses ids, exactly like the qubit-tracking pass the
tool runs over QIR (paper Sec. IV-B.1: "track qubit allocation, qubit
release, gate application, and measurement events").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..counts import LogicalCounts
from .ops import Op

#: Qubits are plain ints; the alias documents intent in signatures.
QubitHandle = int

Instruction = tuple[int, int, int, int, float]


class CircuitError(RuntimeError):
    """Raised for misuse of the builder or malformed circuits."""


class Circuit:
    """An immutable instruction stream plus its injected estimates table."""

    __slots__ = ("_instructions", "_estimates", "_counts_cache", "name")

    def __init__(
        self,
        instructions: list[Instruction],
        estimates: tuple[LogicalCounts, ...] = (),
        name: str = "circuit",
    ) -> None:
        self._instructions = instructions
        self._estimates = estimates
        self._counts_cache: LogicalCounts | None = None
        self.name = name

    @property
    def instructions(self) -> Sequence[Instruction]:
        return self._instructions

    @property
    def estimates(self) -> tuple[LogicalCounts, ...]:
        """Estimates injected via ``account_for_estimates``."""
        return self._estimates

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def logical_counts(self) -> LogicalCounts:
        """Pre-layout logical counts of this circuit (cached)."""
        if self._counts_cache is None:
            from .tracer import trace

            self._counts_cache = trace(self)
        return self._counts_cache

    def __repr__(self) -> str:
        return f"Circuit({self.name!r}, {len(self)} instructions)"


class CircuitBuilder:
    """Authoring API for IR circuits.

    Example
    -------
    >>> b = CircuitBuilder("bell-measure")
    >>> a, c = b.allocate(), b.allocate()
    >>> b.h(a); b.cx(a, c); b.t(c)
    >>> b.measure(a); b.measure(c)
    >>> circuit = b.finish()
    >>> circuit.logical_counts().t_count
    1
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._free: list[int] = []
        self._next_id = 0
        self._active: set[int] = set()
        self._estimates: list[LogicalCounts] = []
        self._finished = False
        self._recording_starts: list[int] = []

    # -- qubit management --------------------------------------------------

    def allocate(self) -> QubitHandle:
        """Allocate one qubit in |0>, reusing released ids."""
        self._check_open()
        q = -1
        # The free list holds only inactive ids (emit_adjoint removes ids
        # it resurrects), but scan defensively: a still-active entry is
        # retained for later reuse, never silently discarded.
        retained: list[int] = []
        while self._free:
            candidate = self._free.pop()
            if candidate in self._active:
                retained.append(candidate)
                continue
            q = candidate
            break
        if retained:
            self._free.extend(reversed(retained))
        if q == -1:
            q = self._next_id
            self._next_id += 1
        self._active.add(q)
        self._instructions.append((Op.ALLOC, q, -1, -1, 0.0))
        return q

    def allocate_register(self, size: int) -> list[QubitHandle]:
        """Allocate ``size`` qubits (little-endian registers by convention)."""
        if size < 1:
            raise CircuitError(f"register size must be >= 1, got {size}")
        return [self.allocate() for _ in range(size)]

    def release(self, qubit: QubitHandle) -> None:
        """Release a qubit (caller guarantees it is back in |0>)."""
        self._require_active(qubit)
        self._active.discard(qubit)
        self._free.append(qubit)
        self._instructions.append((Op.RELEASE, qubit, -1, -1, 0.0))

    def release_register(self, qubits: Iterable[QubitHandle]) -> None:
        for q in qubits:
            self.release(q)

    @property
    def num_active_qubits(self) -> int:
        return len(self._active)

    # -- Clifford gates ----------------------------------------------------

    def x(self, q: QubitHandle) -> None:
        self._one(Op.X, q)

    def y(self, q: QubitHandle) -> None:
        self._one(Op.Y, q)

    def z(self, q: QubitHandle) -> None:
        self._one(Op.Z, q)

    def h(self, q: QubitHandle) -> None:
        self._one(Op.H, q)

    def s(self, q: QubitHandle) -> None:
        self._one(Op.S, q)

    def s_adj(self, q: QubitHandle) -> None:
        self._one(Op.S_ADJ, q)

    def cx(self, control: QubitHandle, target: QubitHandle) -> None:
        self._two(Op.CX, control, target)

    def cz(self, a: QubitHandle, b: QubitHandle) -> None:
        self._two(Op.CZ, a, b)

    def swap(self, a: QubitHandle, b: QubitHandle) -> None:
        self._two(Op.SWAP, a, b)

    # -- non-Clifford gates --------------------------------------------------

    def t(self, q: QubitHandle) -> None:
        self._one(Op.T, q)

    def t_adj(self, q: QubitHandle) -> None:
        self._one(Op.T_ADJ, q)

    def rx(self, angle: float, q: QubitHandle) -> None:
        self._rotation(Op.RX, angle, q)

    def ry(self, angle: float, q: QubitHandle) -> None:
        self._rotation(Op.RY, angle, q)

    def rz(self, angle: float, q: QubitHandle) -> None:
        self._rotation(Op.RZ, angle, q)

    def ccz(self, a: QubitHandle, b: QubitHandle, c: QubitHandle) -> None:
        self._three(Op.CCZ, a, b, c)

    def ccx(self, control1: QubitHandle, control2: QubitHandle, target: QubitHandle) -> None:
        """Toffoli gate (counts as one CCZ plus Cliffords)."""
        self._three(Op.CCX, control1, control2, target)

    def ccix(self, control1: QubitHandle, control2: QubitHandle, target: QubitHandle) -> None:
        self._three(Op.CCIX, control1, control2, target)

    def and_compute(self, a: QubitHandle, b: QubitHandle) -> QubitHandle:
        """Gidney temporary AND: allocate and return a target holding a AND b.

        Costs one CCiX (4 T states). Must be undone with
        :meth:`and_uncompute`, which costs only a measurement.
        """
        target = self.allocate()
        self._three(Op.AND, a, b, target)
        return target

    def and_uncompute(self, a: QubitHandle, b: QubitHandle, target: QubitHandle) -> None:
        """Measurement-based uncompute of :meth:`and_compute`; releases target."""
        self._three(Op.AND_UNCOMPUTE, a, b, target)
        self._active.discard(target)
        self._free.append(target)
        self._instructions.append((Op.RELEASE, target, -1, -1, 0.0))

    # -- measurement and injection -------------------------------------------

    def measure(self, q: QubitHandle) -> None:
        self._one(Op.MEASURE, q)

    def reset(self, q: QubitHandle) -> None:
        self._one(Op.RESET, q)

    def account_for_estimates(self, counts: LogicalCounts) -> None:
        """Inject known logical estimates of an un-emitted subroutine.

        The subroutine's auxiliary qubits are assumed included in
        ``counts.num_qubits`` *in addition to* the qubits currently live
        (matching ``AccountForEstimates``, which receives the qubits it
        acts on plus an aux count).
        """
        self._check_open()
        index = len(self._estimates)
        self._estimates.append(counts)
        self._instructions.append((Op.ACCOUNT, -1, -1, -1, float(index)))

    # -- recording and adjoints ------------------------------------------------

    def start_recording(self) -> None:
        """Begin capturing emitted instructions (nestable).

        Use with :meth:`stop_recording` and :meth:`emit_adjoint` to undo a
        reversible subroutine mechanically (Bennett-style cleanup). Only
        reversible instructions may be recorded.
        """
        self._check_open()
        self._recording_starts.append(len(self._instructions))

    def stop_recording(self) -> list[Instruction]:
        """End the innermost recording; return the captured tape."""
        self._check_open()
        if not self._recording_starts:
            raise CircuitError("stop_recording without start_recording")
        start = self._recording_starts.pop()
        return self._instructions[start:]

    #: Opcode inversion map for adjoint replay. AND flips to its
    #: measurement-based uncompute (and vice versa), which is what makes
    #: Bennett cleanup free of T states in this cost model.
    _ADJOINT = {
        Op.ALLOC: Op.RELEASE,
        Op.RELEASE: Op.ALLOC,
        Op.X: Op.X,
        Op.Y: Op.Y,
        Op.Z: Op.Z,
        Op.H: Op.H,
        Op.S: Op.S_ADJ,
        Op.S_ADJ: Op.S,
        Op.CX: Op.CX,
        Op.CZ: Op.CZ,
        Op.SWAP: Op.SWAP,
        Op.T: Op.T_ADJ,
        Op.T_ADJ: Op.T,
        Op.RX: Op.RX,  # angle negated at replay
        Op.RY: Op.RY,
        Op.RZ: Op.RZ,
        Op.CCZ: Op.CCZ,
        Op.CCX: Op.CCX,
        Op.CCIX: Op.CCIX,
        Op.AND: Op.AND_UNCOMPUTE,
        Op.AND_UNCOMPUTE: Op.AND,
    }

    def emit_adjoint(self, tape: list[Instruction]) -> None:
        """Replay a recorded tape in reverse with each instruction inverted.

        Qubits the tape allocated are released and vice versa; ids are
        re-activated directly (not via the free list) so the adjoint acts
        on exactly the qubits the forward pass used. Irreversible
        instructions (measure, reset, account) cannot be undone and raise.
        """
        self._check_open()
        for op, q0, q1, q2, param in reversed(tape):
            inverse = self._ADJOINT.get(Op(op))
            if inverse is None:
                raise CircuitError(
                    f"cannot take the adjoint of irreversible instruction "
                    f"{Op(op).name}"
                )
            if inverse == Op.ALLOC:
                # Undoing a RELEASE: bring the same id back into service.
                # Remove it from the free list (it is active again) so the
                # list never accumulates stale duplicates across repeated
                # record/adjoint cycles and allocate() never has to skip.
                if q0 in self._active:
                    raise CircuitError(
                        f"adjoint re-allocates qubit {q0}, which is still active"
                    )
                if q0 in self._free:
                    self._free.remove(q0)
                self._active.add(q0)
                self._instructions.append((Op.ALLOC, q0, -1, -1, 0.0))
            elif inverse == Op.RELEASE:
                self.release(q0)
            elif inverse in (Op.RX, Op.RY, Op.RZ):
                self._rotation(inverse, -param, q0)
            elif q2 != -1:
                self._three(inverse, q0, q1, q2)
            elif q1 != -1:
                self._two(inverse, q0, q1)
            else:
                self._one(inverse, q0)

    # -- finishing -----------------------------------------------------------

    def finish(self) -> Circuit:
        """Freeze into a :class:`Circuit`. The builder becomes unusable."""
        self._check_open()
        self._finished = True
        return Circuit(self._instructions, tuple(self._estimates), self.name)

    # -- helpers ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self._finished:
            raise CircuitError("builder already finished")

    def _require_active(self, *qubits: int) -> None:
        for q in qubits:
            if q not in self._active:
                raise CircuitError(f"qubit {q} is not allocated")

    def _one(self, op: int, q: int) -> None:
        self._check_open()
        self._require_active(q)
        self._instructions.append((op, q, -1, -1, 0.0))

    def _two(self, op: int, a: int, b: int) -> None:
        self._check_open()
        self._require_active(a, b)
        if a == b:
            raise CircuitError(f"two-qubit gate needs distinct qubits, got {a} twice")
        self._instructions.append((op, a, b, -1, 0.0))

    def _three(self, op: int, a: int, b: int, c: int) -> None:
        self._check_open()
        self._require_active(a, b, c)
        if len({a, b, c}) != 3:
            raise CircuitError(f"three-qubit gate needs distinct qubits, got {(a, b, c)}")
        self._instructions.append((op, a, b, c, 0.0))

    def _rotation(self, op: int, angle: float, q: int) -> None:
        self._check_open()
        self._require_active(q)
        self._instructions.append((op, q, -1, -1, float(angle)))
