"""Distillation unit definitions (paper Sec. IV-C.5).

The predefined units implement 15-to-1 Reed–Muller distillation, the
workhorse protocol of the tool, in the variants described by Beverland et
al. (arXiv:2211.07629, Appendix C):

* ``15-to-1 RM prep`` — runs on bare physical qubits (31 physical qubits,
  duration ~23 measurement steps) or on logical qubits (31 logical qubits,
  13 logical cycles).
* ``15-to-1 space-efficient`` — logical-level only; trades time for space
  (20 logical qubits, 17 logical cycles).

Both share the 15-to-1 error model: failure probability
``15 * e_in + 356 * e_clifford`` and output error
``35 * e_in^3 + 7.1 * e_clifford``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from ..formulas import Formula


class DistillationUnitError(ValueError):
    """Raised for invalid distillation unit definitions."""


@dataclass(frozen=True)
class PhysicalUnitSpec:
    """Footprint of a unit applied directly to physical qubits.

    ``duration`` is a formula over the physical-qubit parameters (ns).
    """

    num_qubits: int
    duration: Formula

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise DistillationUnitError(
                f"physical unit needs at least 1 qubit, got {self.num_qubits}"
            )
        object.__setattr__(self, "duration", Formula(self.duration))

    def to_dict(self) -> dict[str, Any]:
        return {"numQubits": self.num_qubits, "duration": self.duration.source}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PhysicalUnitSpec":
        known = {"numQubits", "duration"}
        unknown = set(data) - known
        if unknown:
            raise DistillationUnitError(
                f"unknown physical unit spec fields: {sorted(unknown)}"
            )
        missing = known - set(data)
        if missing:
            raise DistillationUnitError(
                f"physical unit spec missing fields: {sorted(missing)}"
            )
        return cls(num_qubits=data["numQubits"], duration=Formula(data["duration"]))


@dataclass(frozen=True)
class LogicalUnitSpec:
    """Footprint of a unit applied to logical qubits of the QEC code."""

    num_logical_qubits: int
    duration_in_cycles: int

    def __post_init__(self) -> None:
        if self.num_logical_qubits < 1:
            raise DistillationUnitError(
                f"logical unit needs at least 1 logical qubit, got {self.num_logical_qubits}"
            )
        if self.duration_in_cycles < 1:
            raise DistillationUnitError(
                f"logical unit duration must be >= 1 cycle, got {self.duration_in_cycles}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "numLogicalQubits": self.num_logical_qubits,
            "durationInCycles": self.duration_in_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LogicalUnitSpec":
        known = {"numLogicalQubits", "durationInCycles"}
        unknown = set(data) - known
        if unknown:
            raise DistillationUnitError(
                f"unknown logical unit spec fields: {sorted(unknown)}"
            )
        missing = known - set(data)
        if missing:
            raise DistillationUnitError(
                f"logical unit spec missing fields: {sorted(missing)}"
            )
        return cls(
            num_logical_qubits=data["numLogicalQubits"],
            duration_in_cycles=data["durationInCycles"],
        )


@dataclass(frozen=True)
class DistillationUnit:
    """A T-state distillation protocol step.

    Parameters
    ----------
    name:
        Protocol name shown in reports.
    num_input_ts, num_output_ts:
        T states consumed / produced per successful run.
    failure_probability:
        Formula over ``inputErrorRate`` and ``cliffordErrorRate`` giving
        the probability that a run must be discarded.
    output_error_rate:
        Formula over the same variables giving the error rate of each
        output T state of a successful run.
    physical_spec / logical_spec:
        Footprints at the physical / logical level; at least one must be
        given. Units with only a ``physical_spec`` can only appear in the
        first round of a pipeline.
    """

    name: str
    num_input_ts: int
    num_output_ts: int
    failure_probability: Formula
    output_error_rate: Formula
    physical_spec: PhysicalUnitSpec | None = None
    logical_spec: LogicalUnitSpec | None = None

    _ALLOWED_VARIABLES = frozenset({"inputErrorRate", "cliffordErrorRate"})

    def __post_init__(self) -> None:
        if self.num_input_ts < 1 or self.num_output_ts < 1:
            raise DistillationUnitError(
                f"unit {self.name!r}: input/output T counts must be >= 1"
            )
        if self.num_output_ts >= self.num_input_ts:
            raise DistillationUnitError(
                f"unit {self.name!r}: distillation must consume more T states "
                f"than it produces ({self.num_input_ts} -> {self.num_output_ts})"
            )
        if self.physical_spec is None and self.logical_spec is None:
            raise DistillationUnitError(
                f"unit {self.name!r} needs a physical and/or logical spec"
            )
        object.__setattr__(self, "failure_probability", Formula(self.failure_probability))
        object.__setattr__(self, "output_error_rate", Formula(self.output_error_rate))
        for formula_name in ("failure_probability", "output_error_rate"):
            formula: Formula = getattr(self, formula_name)
            extra = formula.free_variables - self._ALLOWED_VARIABLES
            if extra:
                raise DistillationUnitError(
                    f"unit {self.name!r}: {formula_name} formula may only use "
                    f"{sorted(self._ALLOWED_VARIABLES)}, found {sorted(extra)}"
                )

    def evaluate(
        self, input_error_rate: float, clifford_error_rate: float
    ) -> tuple[float, float]:
        """Return ``(failure_probability, output_error_rate)`` for a run.

        Failure probability is clamped into [0, 1]; a clamp to 1 means the
        unit can never succeed at these error rates, which the pipeline
        evaluator treats as infeasible.
        """
        env = {
            "inputErrorRate": input_error_rate,
            "cliffordErrorRate": clifford_error_rate,
        }
        failure = self.failure_probability.evaluate(env)
        output = self.output_error_rate.evaluate(env)
        if output < 0:
            raise DistillationUnitError(
                f"unit {self.name!r}: output error formula produced {output}"
            )
        return min(max(failure, 0.0), 1.0), output

    def customized(self, **overrides: Any) -> "DistillationUnit":
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise DistillationUnitError(
                f"unknown distillation unit parameters: {sorted(unknown)}"
            )
        if "name" not in overrides:
            overrides["name"] = f"{self.name} (customized)"
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "numInputTs": self.num_input_ts,
            "numOutputTs": self.num_output_ts,
            "failureProbability": self.failure_probability.source,
            "outputErrorRate": self.output_error_rate.source,
            "physicalSpec": self.physical_spec.to_dict() if self.physical_spec else None,
            "logicalSpec": self.logical_spec.to_dict() if self.logical_spec else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DistillationUnit":
        """Inverse of :meth:`to_dict` (formulas re-parsed from source)."""
        known = {
            "name",
            "numInputTs",
            "numOutputTs",
            "failureProbability",
            "outputErrorRate",
            "physicalSpec",
            "logicalSpec",
        }
        unknown = set(data) - known
        if unknown:
            raise DistillationUnitError(
                f"unknown distillation unit fields: {sorted(unknown)}"
            )
        missing = (known - {"physicalSpec", "logicalSpec"}) - set(data)
        if missing:
            raise DistillationUnitError(
                f"distillation unit definition missing: {sorted(missing)}"
            )
        physical = data.get("physicalSpec")
        logical = data.get("logicalSpec")
        return cls(
            name=data["name"],
            num_input_ts=data["numInputTs"],
            num_output_ts=data["numOutputTs"],
            failure_probability=Formula(data["failureProbability"]),
            output_error_rate=Formula(data["outputErrorRate"]),
            physical_spec=PhysicalUnitSpec.from_dict(physical) if physical else None,
            logical_spec=LogicalUnitSpec.from_dict(logical) if logical else None,
        )


_FAIL_15_TO_1 = "15 * inputErrorRate + 356 * cliffordErrorRate"
_OUT_15_TO_1 = "35 * inputErrorRate^3 + 7.1 * cliffordErrorRate"

T15_RM_PREP = DistillationUnit(
    name="15-to-1 RM prep",
    num_input_ts=15,
    num_output_ts=1,
    failure_probability=Formula(_FAIL_15_TO_1),
    output_error_rate=Formula(_OUT_15_TO_1),
    physical_spec=PhysicalUnitSpec(
        num_qubits=31, duration=Formula("23 * oneQubitMeasurementTime")
    ),
    logical_spec=LogicalUnitSpec(num_logical_qubits=31, duration_in_cycles=13),
)

T15_SPACE_EFFICIENT = DistillationUnit(
    name="15-to-1 space-efficient",
    num_input_ts=15,
    num_output_ts=1,
    failure_probability=Formula(_FAIL_15_TO_1),
    output_error_rate=Formula(_OUT_15_TO_1),
    logical_spec=LogicalUnitSpec(num_logical_qubits=20, duration_in_cycles=17),
)

PREDEFINED_UNITS: dict[str, DistillationUnit] = {
    T15_RM_PREP.name: T15_RM_PREP,
    T15_SPACE_EFFICIENT.name: T15_SPACE_EFFICIENT,
}
