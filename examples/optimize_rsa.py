"""Inverse design: what machine factors RSA-2048 within a runtime budget?

Instead of sweeping a grid and eyeballing the table, ``OptimizeSpec``
states the *question* — search axes, an objective from the frontier
vocabulary, and answer-level constraints — and ``run_optimize`` probes
the grid adaptively, exploiting the estimator's monotonicity structure
(bisecting constrained axes to their feasibility boundary) instead of
evaluating every point. Every probe lands in the content-addressed
store (``repro-optimize-v1`` namespace), so re-asking the same question
answers instantly with zero engine evaluations.

Run:  PYTHONPATH=src python examples/optimize_rsa.py
"""

import tempfile

from repro import ResultStore
from repro.estimator.optimize import OptimizeSpec, run_optimize

# The search space: two hardware profiles x a 64-rung error-budget
# ladder. Runtime is monotone in the budget (with free T-factory
# parallelism), which is the structure the optimizer bisects on.
AXES = [
    {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e6"]},
    {"field": "budget", "geom": {"start": 1e-9, "factor": 1.3, "count": 64}},
]


def ask(question, store):
    spec = OptimizeSpec.from_dict(question)
    result = run_optimize(spec, store=store)
    print(f"  {result.num_evaluations}/{spec.num_points()} grid points "
          "evaluated")
    if not result.answer:
        print("  -> infeasible: no machine in the search space qualifies")
    for probe in result.answer_probes():
        est = probe.result
        coords = dict(probe.coords)
        print(f"  -> {coords['qubit']}  budget={coords['budget']:.2e}  "
              f"d={est.code_distance}  {est.physical_qubits:,} qubits  "
              f"{est.runtime_seconds / 86_400:.1f} days")
    return result


with tempfile.TemporaryDirectory() as root:
    store = ResultStore(root)

    # Can any machine here do it in a day? No — and proving that takes
    # a handful of probes (bisect each profile's fastest point), not a
    # 128-point sweep.
    print("RSA-2048 in one day?")
    ask({"base": {"program": {"name": "rsa_2048"}}, "axes": AXES,
         "objective": "min-runtime",
         "constraints": {"maxRuntime_s": 86_400.0}}, store)

    # Relax to a month and ask for the smallest qualifying machine.
    print("smallest machine that factors RSA-2048 within a month:")
    month = {"base": {"program": {"name": "rsa_2048"}}, "axes": AXES,
             "objective": "min-qubits",
             "constraints": {"maxRuntime_s": 30 * 86_400.0}}
    result = ask(month, store)

    # Ask again: the stored probe trace answers without the engine.
    warm = run_optimize(OptimizeSpec.from_dict(month), store=store)
    assert warm.from_trace and warm.num_evaluations == 0
    assert warm.to_dict() == result.to_dict()
    print("warm re-ask: 0 evaluations, bit-for-bit the same answer")
