"""Typed server configuration with CLI > scenario > default precedence.

``repro serve`` grew one ad-hoc flag per PR (``--sweep-workers``,
``--kernel``, ``--executor``, ``--lease-ttl``, ``--max-body-bytes``,
...), each hand-plumbed from argparse into
:class:`~repro.service.EstimationService` and ``make_server``. This
module replaces that plumbing with one frozen dataclass,
:class:`ServerSettings`, that can also be configured from a scenario
file's ``server`` section::

    {
      "schema": "repro-scenario-v1",
      "server": {"port": 9000, "sweepWorkers": 4, "storeMaxBytes": 1073741824}
    }

Precedence is strict and layered: **CLI flag > scenario file > built-in
default**. Scenario files apply in the order given (later files win),
and a CLI flag the user actually typed beats any scenario — argparse
defaults are ``None`` precisely so "typed" is distinguishable from
"defaulted". :func:`load_server_settings` implements the layering; the
``server`` section accepts both camelCase (scenario-file house style)
and snake_case keys, and unknown keys are errors, not typos silently
shipped to production.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "ServerSettings",
    "load_server_settings",
]

#: Default cap on request body size (a batch of ~10k inline-counts
#: specs). Oversized bodies are rejected with 413 before a single body
#: byte is read.
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_KERNELS = ("auto", "scalar", "vectorized")
_EXECUTORS = ("auto", "local", "queue")
_POOLS = ("keep", "per-call")


def _camel(name: str) -> str:
    head, *rest = name.split("_")
    return head + "".join(part.capitalize() for part in rest)


@dataclass(frozen=True)
class ServerSettings:
    """Everything ``repro serve`` is configured by, in one place.

    Field semantics match the flags they absorbed (see
    ``repro serve --help``); ``store_max_bytes`` bounds the result
    store's disk use via LRU document eviction
    (:meth:`~repro.estimator.store.ResultStore.evict`) and
    ``metrics_ttl`` is the refresh interval for the expensive
    (disk-touching) gauges behind ``GET /v1/metrics``.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    workers: int = 1
    sweep_workers: int = 2
    kernel: str = "auto"
    executor: str = "auto"
    lease_ttl: float | None = None
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    store_max_bytes: int | None = None
    metrics_ttl: float = 10.0
    verbose: bool = False
    pool: str = "keep"
    chunk_target_s: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ValueError("host must be a non-empty string")
        if not isinstance(self.port, int) or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be 0..65535, got {self.port!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if not isinstance(self.sweep_workers, int) or self.sweep_workers < 1:
            raise ValueError(
                f"sweep_workers must be >= 1, got {self.sweep_workers!r}"
            )
        if self.kernel not in _KERNELS:
            raise ValueError(
                f"kernel must be one of {_KERNELS}, got {self.kernel!r}"
            )
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.lease_ttl is not None and (
            not isinstance(self.lease_ttl, (int, float)) or self.lease_ttl <= 0
        ):
            raise ValueError(f"lease_ttl must be > 0, got {self.lease_ttl!r}")
        if not isinstance(self.max_body_bytes, int) or self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes!r}"
            )
        if self.store_max_bytes is not None and (
            not isinstance(self.store_max_bytes, int) or self.store_max_bytes < 0
        ):
            raise ValueError(
                f"store_max_bytes must be >= 0, got {self.store_max_bytes!r}"
            )
        if (
            not isinstance(self.metrics_ttl, (int, float))
            or self.metrics_ttl < 0
        ):
            raise ValueError(f"metrics_ttl must be >= 0, got {self.metrics_ttl!r}")
        if not isinstance(self.verbose, bool):
            raise ValueError(f"verbose must be a bool, got {self.verbose!r}")
        if self.pool not in _POOLS:
            raise ValueError(f"pool must be one of {_POOLS}, got {self.pool!r}")
        if self.chunk_target_s is not None and (
            not isinstance(self.chunk_target_s, (int, float))
            or self.chunk_target_s <= 0
        ):
            raise ValueError(
                f"chunk_target_s must be > 0, got {self.chunk_target_s!r}"
            )

    # -- layering ----------------------------------------------------------

    def overridden(self, **overrides: Any) -> "ServerSettings":
        """A copy with every non-``None`` override applied (CLI layer).

        ``None`` means "the user did not say" — the argparse defaults
        for absorbed flags are ``None`` so this distinction survives
        parsing. Values are validated by the replacement's
        ``__post_init__``.
        """
        known = {field.name for field in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(
                f"unknown server settings {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        applied = {
            key: value for key, value in overrides.items() if value is not None
        }
        return replace(self, **applied) if applied else self

    def updated_from_dict(self, data: Any) -> "ServerSettings":
        """A copy updated from a scenario ``server`` section.

        Keys may be camelCase (``sweepWorkers`` — scenario-file house
        style) or snake_case; unknown keys raise :class:`ValueError`.
        Explicit ``null`` values are ignored (meaning "not configured
        here", same as the CLI's untyped flags).
        """
        if not isinstance(data, dict):
            raise ValueError("the 'server' section must be a JSON object")
        by_key: dict[str, str] = {}
        for field in fields(self):
            by_key[field.name] = field.name
            by_key[_camel(field.name)] = field.name
        overrides: dict[str, Any] = {}
        unknown: list[str] = []
        for key, value in data.items():
            name = by_key.get(key)
            if name is None:
                unknown.append(key)
            elif value is not None:
                overrides[name] = value
        if unknown:
            raise ValueError(
                f"unknown server settings {sorted(unknown)}; known: "
                f"{sorted(_camel(field.name) for field in fields(self))}"
            )
        return replace(self, **overrides) if overrides else self

    def to_dict(self) -> dict[str, Any]:
        """The settings as a camelCase document (healthz/debugging)."""
        return {
            _camel(field.name): getattr(self, field.name)
            for field in fields(self)
        }


def load_server_settings(
    scenarios: Iterable[str | Path] = (),
    **cli_overrides: Any,
) -> ServerSettings:
    """Layer defaults, scenario ``server`` sections, and CLI overrides.

    ``scenarios`` are file paths applied in order (later wins); files
    without a ``server`` section contribute nothing. ``cli_overrides``
    are keyword settings where ``None`` means "flag not given". This is
    the whole precedence rule: default < each scenario < CLI.
    """
    settings = ServerSettings()
    for source in scenarios:
        path = Path(source)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read scenario file {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"scenario file {path} must be a JSON object")
        section = data.get("server")
        if section is not None:
            try:
                settings = settings.updated_from_dict(section)
            except ValueError as exc:
                raise ValueError(f"invalid server settings in {path}: {exc}") from exc
    return settings.overridden(**cli_overrides)
