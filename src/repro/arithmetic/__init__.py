"""Quantum arithmetic library — the paper's case-study workload (Sec. V).

Everything is built from the Clifford + temporary-AND gate set (1 CCiX per
AND compute, one measurement per uncompute), the construction style of
Gidney's adder/multiplier papers (arXiv:1709.06648, 1904.07356,
1905.07682). Each building block ships in two mirrored forms:

* an **emitter** producing a real IR circuit, verified bit-exactly by the
  reversible simulator; and
* a **count function** giving the identical gate tallies in closed form,
  used for the largest experiment sizes where tracing a multi-hundred-
  million-gate stream would be wasteful. Tests assert ``counts == trace``
  across a range of sizes, so the closed forms are validated, not assumed.

Multiplication algorithms (``repro.arithmetic.multipliers``): schoolbook,
Karatsuba, and windowed, multiplying an n-bit quantum integer by an n-bit
classical constant (the modular-arithmetic setting of Gidney's papers); a
quantum-by-quantum schoolbook variant is also provided.
"""

from .tally import GateTally
from .registers import copy_register, write_constant, xor_constant
from .adders import (
    add_constant_controlled,
    add_constant_controlled_counts,
    add_into,
    add_into_counts,
    subtract_into,
    subtract_into_counts,
)
from .comparator import (
    add_constant,
    compare_greater_equal_constant,
    compare_less_than,
    compare_less_than_constant,
    increment,
    subtract_constant,
)
from .lookahead import add_lookahead, add_lookahead_counts
from .lookup import lookup, lookup_counts, unlookup_adjoint
from .modexp import (
    emit_modexp,
    mod_mul_inplace,
    modexp_circuit,
    modexp_counting_counts,
    modexp_logical_counts,
)
from .modular import (
    ModularMultiplier,
    mod_add,
    mod_add_constant_controlled,
    mod_add_counts,
)
from .multipliers import (
    COUNT_BACKENDS,
    MULTIPLIER_ALGORITHMS,
    KaratsubaMultiplier,
    Multiplier,
    SchoolbookMultiplier,
    WindowedMultiplier,
    default_window_size,
    multiplier_by_name,
    schoolbook_multiply_qq,
)

__all__ = [
    "COUNT_BACKENDS",
    "MULTIPLIER_ALGORITHMS",
    "GateTally",
    "KaratsubaMultiplier",
    "ModularMultiplier",
    "Multiplier",
    "SchoolbookMultiplier",
    "WindowedMultiplier",
    "add_constant",
    "add_constant_controlled",
    "add_constant_controlled_counts",
    "add_into",
    "add_into_counts",
    "add_lookahead",
    "add_lookahead_counts",
    "compare_greater_equal_constant",
    "compare_less_than",
    "compare_less_than_constant",
    "copy_register",
    "default_window_size",
    "emit_modexp",
    "increment",
    "lookup",
    "lookup_counts",
    "mod_add",
    "mod_add_constant_controlled",
    "mod_add_counts",
    "mod_mul_inplace",
    "modexp_circuit",
    "modexp_counting_counts",
    "modexp_logical_counts",
    "multiplier_by_name",
    "schoolbook_multiply_qq",
    "subtract_constant",
    "subtract_into",
    "subtract_into_counts",
    "unlookup_adjoint",
    "write_constant",
    "xor_constant",
]
