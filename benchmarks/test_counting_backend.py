"""Counting-backend benchmarks: the RSA-scale acceptance numbers.

Two perf changes land together and are pinned here:

* **Materialized ``trace()`` micro-optimization** — binding opcodes as
  plain ints (the old loop compared stream ints against ``Op`` enum
  members) and replacing the per-qubit dict layer counters with a flat
  list indexed by qubit id. Recorded before/after (best of 3, same
  machine, identical counts):

  ========================  ============  =========  ========  ========
  stream                    instructions  old trace  new trace  speedup
  ========================  ============  =========  ========  ========
  schoolbook multiplier 192      406,272     1.27 s    0.089 s    14.2x
  modexp n=128, 1 exp. bit       654,339     2.03 s    0.157 s    13.0x
  ========================  ============  =========  ========  ========

* **Streaming counting backend** — ``CountingBuilder`` plus subcircuit
  memoization never materializes the stream at all. Measured against the
  (already optimized) materialized path, modexp with one exponent bit,
  time and peak traced memory (``tracemalloc``):

  ======  ============  ===========  ==========  =========
  n       materialized  counting     time ratio  mem ratio
  ======  ============  ===========  ==========  =========
  128     4.3 s/58 MB   0.07 s/97 kB      ~60x      ~590x
  256     18 s/225 MB   0.17 s/226 kB    ~110x      ~990x
  512     99 s/866 MB   0.37 s/293 kB    ~270x     ~2950x
  ======  ============  ===========  ==========  =========

  Full modular exponentiations (2n exponent bits) through the counting
  backend alone — the materialized path would need the above times a
  further ~2n: n=512 in 0.4 s, n=2048 (RSA) in ~2 s, n=4096 in ~6 s.

The n=512 comparison below asserts the issue's floors (>= 10x time,
>= 100x memory) with a wide margin; the n=2048 test is the CI smoke
assertion (these tests, minus the slow materialized comparison, run in
CI under a hard wall-clock ceiling — see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import time
import tracemalloc

from repro.arithmetic import (
    modexp_circuit,
    modexp_counting_counts,
    modexp_logical_counts,
)


def _measure(fn):
    """(result, seconds, tracemalloc peak bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_counting_vs_materialized_n512():
    """>= 10x faster and >= 100x less memory on an n=512 modexp block.

    One exponent bit isolates a single controlled modular multiplication
    (~10M instructions materialized); the full 1024-bit-exponent circuit
    repeats it 1024 times, which only widens the gap — the streaming
    path memoizes the repeats while the materialized path stores them.
    """
    n = 512
    modulus = (1 << n) - 1

    counted, counting_s, counting_peak = _measure(
        lambda: modexp_counting_counts(2, modulus, 1)
    )
    materialized, materialize_s, materialize_peak = _measure(
        lambda: modexp_circuit(2, modulus, 1).logical_counts()
    )

    assert counted == materialized
    assert materialize_s >= 10 * counting_s, (
        f"expected >= 10x speedup, got {materialize_s / counting_s:.1f}x "
        f"({materialize_s:.2f}s vs {counting_s:.2f}s)"
    )
    assert materialize_peak >= 100 * counting_peak, (
        f"expected >= 100x memory reduction, got "
        f"{materialize_peak / counting_peak:.0f}x "
        f"({materialize_peak / 1e6:.0f}MB vs {counting_peak / 1e3:.0f}kB)"
    )


def test_counting_scale_n2048_rsa():
    """A full RSA-2048 modexp, counted *and estimated* in seconds.

    The materialized path cannot finish this point within any benchmark
    budget (~30 billion instructions, ~3 TB of tuples); the counting
    backend folds it in O(live qubits) memory. The exact-count assertion
    doubles as the CI smoke check: the streaming fold agrees with the
    independently derived closed form at a width it was never hand-tuned
    for.
    """
    from repro import ErrorBudget, estimate, qubit_params

    n = 2048
    start = time.perf_counter()
    counts = modexp_counting_counts(2, (1 << n) - 1, 2 * n)
    elapsed = time.perf_counter() - start

    assert counts == modexp_logical_counts(n)
    assert counts.num_qubits == 16_388
    assert counts.ccz_count == 8_388_608
    assert counts.ccix_count == 30_097_145_856
    assert elapsed < 60, f"n=2048 counting took {elapsed:.1f}s"

    result = estimate(
        counts, qubit_params("qubit_gate_ns_e3"), budget=ErrorBudget(total=1e-3)
    )
    assert result.physical_qubits > 1_000_000
    assert result.runtime_seconds > 0


def test_bench_counting_modexp_n512(benchmark):
    """Steady-state rate of a full n=512, 1024-exponent-bit count."""
    modulus = (1 << 512) - 1
    counts = benchmark(lambda: modexp_counting_counts(2, modulus, 1024))
    assert counts == modexp_logical_counts(512)
