"""Modular arithmetic: the workload windowed arithmetic was built for.

Gidney's windowed-arithmetic paper (the paper's ref. [14]) develops table
lookups to accelerate *modular* multiplication inside Shor-style modular
exponentiation. This module implements that stack on top of the adders,
comparators, and QROM lookup:

* :func:`mod_add` — ``b = (a + b) mod N`` for quantum ``a, b < N``;
* :func:`mod_add_constant_controlled` — ``b = (b + c*k) mod N``;
* :class:`ModularMultiplier` — ``acc = (acc + x*k) mod N`` bit-by-bit
  (schoolbook) or window-by-window via lookups of ``v * k * 2^(jw) mod N``.

All circuits are clean (ancillas return to zero) and verified bit-exactly
by the reversible simulator in the tests. The modular-add flag uncompute
uses the classic observation that after reduction the flag equals
``result >= a``, so a comparison — not a stored bit — clears it.
"""

from __future__ import annotations

from typing import Sequence

from ..ir import Builder, CircuitBuilder
from .adders import add_constant_controlled, add_into, add_into_counts
from .comparator import (
    add_constant_counts,
    compare_less_than,
    compare_less_than_counts,
    subtract_constant,
)
from .lookup import lookup_counts, lookup_recorded, unlookup_adjoint
from .tally import GateTally
from .multipliers.base import default_constant
from .multipliers.windowed import default_window_size


def _check_modulus(modulus: int, bits: int) -> None:
    if modulus < 2:
        raise ValueError(f"modulus must be >= 2, got {modulus}")
    # Values 0..modulus-1 must fit the registers; modulus == 2^bits is fine.
    if modulus > (1 << bits):
        raise ValueError(
            f"modulus {modulus} does not fit in {bits}-bit registers"
        )


def mod_add(
    builder: Builder,
    a: Sequence[int],
    b: Sequence[int],
    modulus: int,
) -> None:
    """``b = (a + b) mod modulus`` for quantum values ``a, b < modulus``.

    Both registers are ``n`` qubits with ``modulus <= 2^n``; ``a`` is
    preserved. Behaviour is undefined (though still reversible) if either
    input is ``>= modulus``, as with the standard construction.
    """
    if len(a) != len(b):
        raise ValueError(f"register lengths differ: {len(a)} vs {len(b)}")
    n = len(a)
    _check_modulus(modulus, n)

    overflow = builder.allocate()
    extended = list(b) + [overflow]
    # Sized for the subtraction's complement constant 2^(n+1) - N, which
    # can need all n+1 bits, not just bit_length(N).
    const_scratch = builder.allocate_register(n + 1)

    # extended = a + b, then tentatively subtract N.
    add_into(builder, a, extended)
    subtract_constant(builder, modulus, extended, const_scratch)
    # Top bit set <=> a + b < N <=> the subtraction must be undone.
    flag = builder.allocate()
    builder.cx(overflow, flag)
    add_constant_controlled(builder, flag, modulus, extended, const_scratch)
    # Now extended = (a+b) mod N with a clean top bit.
    # flag == (a+b < N) == (result >= a): clear it by comparison.
    builder.x(flag)
    compare_less_than(builder, b, a, flag)
    builder.release(flag)
    builder.release_register(const_scratch)
    builder.release(overflow)


def mod_add_counts(n: int, modulus: int) -> GateTally:
    """Gate tally of :func:`mod_add` (mirrors the emitter)."""
    m = n + 1
    down = (1 << m) - (modulus & ((1 << m) - 1))
    return (
        add_into_counts(n, m)
        + add_constant_counts(down, m)
        + add_constant_counts(modulus, m)
        + compare_less_than_counts(n)
    )


def mod_add_constant_controlled(
    builder: Builder,
    control: int,
    constant: int,
    b: Sequence[int],
    modulus: int,
    scratch: Sequence[int],
) -> None:
    """``b = (b + control * constant) mod modulus``.

    ``constant`` is reduced mod ``modulus`` first; ``scratch`` is a zeroed
    n-qubit register (reused across calls). If the control is off this is
    the identity: a modular addition of the zero register is a no-op on
    values ``< modulus``, which is what makes the imprint trick sound
    here.
    """
    n = len(b)
    _check_modulus(modulus, n)
    constant %= modulus
    if len(scratch) < n:
        raise ValueError(
            f"scratch register ({len(scratch)} qubits) must cover the "
            f"{n}-qubit target"
        )
    used = scratch[:n]
    for position, qubit in enumerate(used):
        if (constant >> position) & 1:
            builder.cx(control, qubit)
    mod_add(builder, used, b, modulus)
    for position, qubit in enumerate(used):
        if (constant >> position) & 1:
            builder.cx(control, qubit)


class ModularMultiplier:
    """``acc = (acc + x * k) mod N`` for an n-qubit quantum ``x``.

    Parameters
    ----------
    bits:
        Register width ``n``; the modulus must fit.
    modulus:
        The modulus ``N``.
    constant:
        The classical factor ``k`` (reduced mod N); defaults to a
        deterministic full-width value coprime-ish with the default
        modulus choice of the caller.
    window:
        Lookup window size; ``None`` picks ``floor(lg n / 2) + 1`` as in
        plain windowed multiplication, ``0`` selects the bit-at-a-time
        (schoolbook) construction.
    """

    def __init__(
        self,
        bits: int,
        modulus: int,
        constant: int | None = None,
        *,
        window: int | None = None,
    ) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        _check_modulus(modulus, bits)
        self.bits = bits
        self.modulus = modulus
        self.constant = (
            default_constant(bits) if constant is None else constant
        ) % modulus
        if window is None:
            window = default_window_size(bits)
        if window < 0 or window > bits:
            raise ValueError(f"window must be in [0, {bits}], got {window}")
        self.window = window

    # -- emission -----------------------------------------------------------

    def emit(
        self, builder: Builder, x: Sequence[int], acc: Sequence[int]
    ) -> None:
        """Emit onto caller registers; ``acc`` must hold a value < N."""
        if len(x) != self.bits or len(acc) != self.bits:
            raise ValueError(
                f"x and acc must each have {self.bits} qubits, got "
                f"{len(x)} and {len(acc)}"
            )
        if self.window == 0:
            self._emit_schoolbook(builder, x, acc)
        else:
            self._emit_windowed(builder, x, acc)

    def _emit_schoolbook(self, builder, x, acc) -> None:
        # Every bit's block runs the same full modular addition — the
        # imprint CNOTs are the only thing the addend changes, and those
        # are free Cliffords — so one subcircuit key covers all n bits
        # (and, via the shared key, every coprime constant of this
        # multiplier family). The counting backend traces one block and
        # replays the rest in O(1).
        n, modulus = self.bits, self.modulus
        scratch = builder.allocate_register(n)
        key = ("modmul-bit", n, modulus)
        for i, xq in enumerate(x):
            addend = (self.constant << i) % modulus

            def block(b, xq=xq, addend=addend):
                mod_add_constant_controlled(b, xq, addend, acc, modulus, scratch)

            builder.subcircuit(key, block)
        builder.release_register(scratch)

    def _emit_windowed(self, builder, x, acc) -> None:
        # One block per window: lookup, modular add, unlookup. Count
        # contributions depend only on (n, modulus, window width) — table
        # *contents* appear solely in Clifford data writes — so equal-width
        # windows share a key across positions and constants.
        n, w, modulus = self.bits, self.window, self.modulus
        temp = builder.allocate_register(n)
        for j in range(0, n, w):
            wj = min(w, n - j)
            address = x[j : j + wj]
            table = [(v * self.constant << j) % modulus for v in range(1 << wj)]

            def block(b, address=address, table=table):
                tape = lookup_recorded(b, address, table, temp)
                mod_add(b, temp, acc, modulus)
                unlookup_adjoint(b, tape)

            builder.subcircuit(("modmul-window", n, modulus, wj), block)
        builder.release_register(temp)

    def emit_controlled(
        self,
        builder: Builder,
        control: int,
        x: Sequence[int],
        acc: Sequence[int],
    ) -> None:
        """Controlled variant: ``acc = (acc + control * x * k) mod N``.

        Windowed mode extends each lookup address with the control qubit
        over a zero-padded double-size table (a standard controlled-QROM);
        a zero temp register makes the following modular addition the
        identity, so nothing else needs controlling. Schoolbook mode ANDs
        the control with each ``x`` bit.
        """
        if len(x) != self.bits or len(acc) != self.bits:
            raise ValueError(
                f"x and acc must each have {self.bits} qubits, got "
                f"{len(x)} and {len(acc)}"
            )
        n, modulus = self.bits, self.modulus
        if self.window == 0:
            scratch = builder.allocate_register(n)
            key = ("modmul-cbit", n, modulus)
            for i, xq in enumerate(x):
                addend = (self.constant << i) % modulus

                def block(b, xq=xq, addend=addend):
                    both = b.and_compute(control, xq)
                    mod_add_constant_controlled(
                        b, both, addend, acc, modulus, scratch
                    )
                    b.and_uncompute(control, xq, both)

                builder.subcircuit(key, block)
            builder.release_register(scratch)
            return
        w = self.window
        temp = builder.allocate_register(n)
        for j in range(0, n, w):
            wj = min(w, n - j)
            address = list(x[j : j + wj]) + [control]
            table = [0] * (1 << wj) + [
                (v * self.constant << j) % modulus for v in range(1 << wj)
            ]

            def block(b, address=address, table=table):
                tape = lookup_recorded(b, address, table, temp)
                mod_add(b, temp, acc, modulus)
                unlookup_adjoint(b, tape)

            builder.subcircuit(("modmul-cwindow", n, modulus, wj), block)
        builder.release_register(temp)

    # -- mirrors --------------------------------------------------------------

    def tally(self) -> GateTally:
        """Closed-form gate tally (validated against traces in tests)."""
        n, modulus = self.bits, self.modulus
        if self.window == 0:
            # Each bit runs a full mod_add even when its addend reduces to
            # zero (the imprint is empty but the adder still executes).
            return mod_add_counts(n, modulus) * n
        total = GateTally()
        for j in range(0, n, self.window):
            wj = min(self.window, n - j)
            fwd = lookup_counts(wj, 1 << wj)
            adjoint = GateTally(ccix=fwd.measurements, measurements=fwd.ccix)
            total = total + fwd + adjoint + mod_add_counts(n, modulus)
        return total

    def tally_controlled(self) -> GateTally:
        """Closed-form gate tally of :meth:`emit_controlled`."""
        n, modulus = self.bits, self.modulus
        if self.window == 0:
            per_bit = GateTally(ccix=1, measurements=1) + mod_add_counts(n, modulus)
            return per_bit * n
        total = GateTally()
        for j in range(0, n, self.window):
            wj = min(self.window, n - j)
            fwd = lookup_counts(wj + 1, 1 << (wj + 1))
            adjoint = GateTally(ccix=fwd.measurements, measurements=fwd.ccix)
            total = total + fwd + adjoint + mod_add_counts(n, modulus)
        return total

    def circuit(self):
        """Standalone benchmark circuit (superposed input, measured output)."""
        builder = CircuitBuilder(f"modmul-{self.bits}b")
        x = builder.allocate_register(self.bits)
        acc = builder.allocate_register(self.bits)
        for q in x:
            builder.h(q)
        self.emit(builder, x, acc)
        for q in acc:
            builder.measure(q)
        return builder.finish()
