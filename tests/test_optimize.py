"""Tests for the adaptive inverse-design layer (``repro optimize``).

The load-bearing assertions mirror the sweep suite's:

* **Answer equality** — a seeded hypothesis property asserting that on
  monotone problems (budget ladders under ``maxTFactories == 1``) the
  adaptive search returns *exactly* the point set a dense sweep plus
  :func:`reduce_answer` would, for every objective and constraint mix.
* **Kill-and-resume** — interrupting a store-backed optimize mid-run and
  re-running it produces a result document bit-for-bit equal to an
  uninterrupted run, with the finished probes answered from the store.
* **Warm re-runs** — re-submitting a finished question answers from its
  stored ``repro-optimize-v1`` probe trace with zero engine evaluations.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LogicalCounts, Registry, ResultStore
from repro.estimator.optimize import (
    EXHAUSTIVE_LIMIT,
    OptimizeConstraints,
    OptimizeResult,
    OptimizeSpec,
    reduce_answer,
    run_optimize,
)
from repro.estimator.sweep import run_sweep

COUNTS = LogicalCounts(
    num_qubits=40, t_count=20_000, ccz_count=5_000, measurement_count=500
)

#: Base spec fragment shared by every monotone problem: one workload,
#: one profile, T-factory parallelism pinned (the qubit-monotonicity
#: precondition asserted in tests/test_invariants.py).
BASE = {
    "program": {"counts": COUNTS.to_dict()},
    "qubit": {"profile": "qubit_gate_ns_e3"},
    "constraints": {"maxTFactories": 1},
}

#: A small reference question used by the resume/CLI/executor tests:
#: 24 budgets under a runtime cap. Geom ladders must stay below 1.0
#: (the error-budget domain); 1e-9 * 1.7**23 ~= 2e-4.
OPTIMIZE_DOC = {
    "base": BASE,
    "axes": [
        {"field": "budget", "geom": {"start": 1e-9, "factor": 1.7, "count": 24}}
    ],
    "objective": "min-qubits",
    "constraints": {"maxRuntime_s": 10},
}


def small_optimize() -> OptimizeSpec:
    return OptimizeSpec.from_dict(json.loads(json.dumps(OPTIMIZE_DOC)))


def geom_values(start: float, factor: float, count: int) -> list[float]:
    """The geom ladder's exact floats (iterative, like the expansion)."""
    values, value = [], start
    for _ in range(count):
        values.append(value)
        value *= factor
    return values


def dense_answer(spec: OptimizeSpec) -> tuple[int, ...]:
    """The reference answer: full dense sweep + shared reduction."""
    dense = run_sweep(spec.sweep_spec())
    return reduce_answer(
        spec.objective,
        spec.constraints,
        [(point.index, point.result) for point in dense.points],
    )


class TestOptimizeSpecParsing:
    def test_round_trip(self):
        spec = small_optimize()
        again = OptimizeSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown optimize fields"):
            OptimizeSpec.from_dict({**OPTIMIZE_DOC, "bogus": 1})
        with pytest.raises(ValueError, match="unknown optimize constraints"):
            OptimizeSpec.from_dict(
                {**OPTIMIZE_DOC, "constraints": {"maxDistance": 9}}
            )

    def test_objective_required_and_validated(self):
        doc = {k: v for k, v in OPTIMIZE_DOC.items() if k != "objective"}
        with pytest.raises(ValueError, match="needs an 'objective'"):
            OptimizeSpec.from_dict(doc)
        with pytest.raises(ValueError, match="unknown objective"):
            OptimizeSpec.from_dict({**OPTIMIZE_DOC, "objective": "max-qubits"})

    def test_one_or_two_axes(self):
        with pytest.raises(ValueError, match="non-empty 'axes'"):
            OptimizeSpec.from_dict({**OPTIMIZE_DOC, "axes": []})
        three = [
            {"field": "budget", "values": [1e-4]},
            {"field": "qubit", "values": ["qubit_gate_ns_e3"]},
            {"field": "scheme", "values": ["surface_code"]},
        ]
        with pytest.raises(ValueError, match="one or two axes"):
            OptimizeSpec.from_dict({**OPTIMIZE_DOC, "axes": three})

    def test_schema_tag_checked(self):
        with pytest.raises(ValueError, match="unsupported optimize schema"):
            OptimizeSpec.from_dict({**OPTIMIZE_DOC, "schema": "repro-optimize-v0"})

    def test_constraints_validated(self):
        with pytest.raises(ValueError, match="positive number"):
            OptimizeConstraints(max_runtime_s=-1)
        with pytest.raises(ValueError, match="positive number"):
            OptimizeConstraints(max_physical_qubits=0)
        with pytest.raises(ValueError, match="JSON object"):
            OptimizeConstraints.from_dict([1])

    def test_result_document_round_trips(self):
        result = run_optimize(small_optimize())
        document = result.to_dict()
        again = OptimizeResult.from_dict(json.loads(json.dumps(document)))
        assert again.to_dict() == document

    def test_result_document_schema_checked(self):
        with pytest.raises(ValueError, match="optimize result document"):
            OptimizeResult.from_dict({"schema": "repro-sweep-v1"})

    def test_bad_executor_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown executor"):
            run_optimize(small_optimize(), executor="cloud")
        with pytest.raises(ValueError, match="requires a result store"):
            run_optimize(small_optimize(), executor="queue")


class TestContentHash:
    def test_equivalent_axis_spellings_hash_identically(self):
        values = geom_values(1e-9, 1.7, 24)
        explicit = OptimizeSpec.from_dict(
            {
                **OPTIMIZE_DOC,
                "axes": [{"field": "budget", "values": values}],
            }
        )
        assert explicit.content_hash() == small_optimize().content_hash()

    def test_label_excluded_from_the_hash(self):
        labeled = OptimizeSpec.from_dict({**OPTIMIZE_DOC, "label": "anything"})
        assert labeled.content_hash() == small_optimize().content_hash()

    def test_objective_and_constraints_change_the_hash(self):
        baseline = small_optimize().content_hash()
        assert (
            OptimizeSpec.from_dict(
                {**OPTIMIZE_DOC, "objective": "min-runtime"}
            ).content_hash()
            != baseline
        )
        assert (
            OptimizeSpec.from_dict(
                {**OPTIMIZE_DOC, "constraints": {"maxRuntime_s": 20}}
            ).content_hash()
            != baseline
        )


class TestReduceAnswer:
    def test_empty_and_all_infeasible(self):
        constraints = OptimizeConstraints(max_runtime_s=1e-12)
        assert reduce_answer("min-qubits", OptimizeConstraints(), []) == ()
        result = run_optimize(small_optimize()).answer_probes()[0].result
        assert reduce_answer("min-qubits", constraints, [(0, result)]) == ()
        assert reduce_answer("min-qubits", OptimizeConstraints(), [(0, None)]) == ()

    def test_exact_ties_keep_the_lowest_index(self):
        result = run_optimize(small_optimize()).answer_probes()[0].result
        points = [(2, result), (5, result), (9, result)]
        assert reduce_answer("min-qubits", OptimizeConstraints(), points) == (2,)
        assert reduce_answer("min-runtime", OptimizeConstraints(), points) == (2,)
        assert reduce_answer("qubits-runtime", OptimizeConstraints(), points) == (2,)


#: Free-parallelism variant of BASE: the regime where *runtime* is the
#: proven-monotone metric (the engine adds T-factory copies to hold the
#: algorithm-bound runtime; total qubits are not monotone here).
BASE_FREE = {
    "program": {"counts": COUNTS.to_dict()},
    "qubit": {"profile": "qubit_gate_ns_e3"},
}

#: (factor, count) pairs whose geom ladder from 1e-9/1e-8 stays < 1.0.
LADDERS = ((1.3, 48), (1.7, 30), (2.0, 25))


def _budget_spec(base, start, factor, count, objective, constraints):
    return OptimizeSpec.from_dict(
        {
            "base": base,
            "axes": [
                {
                    "field": "budget",
                    "geom": {"start": start, "factor": factor, "count": count},
                }
            ],
            "objective": objective,
            "constraints": constraints,
        }
    )


class TestAnswerEqualsDense:
    """The adaptive contract: exact answer equality on monotone grids.

    The two proven budget-axis structures are mutually exclusive — qubits
    monotone under ``maxTFactories == 1``, runtime monotone with free
    parallelism — so each property runs in its own regime.
    """

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        start=st.sampled_from((1e-9, 1e-8)),
        ladder=st.sampled_from(LADDERS),
        constraints=st.sampled_from(
            ({}, {"maxPhysicalQubits": 400_000}, {"maxPhysicalQubits": 120_000})
        ),
    )
    def test_min_qubits_matches_dense_under_pinned_factories(
        self, start, ladder, constraints
    ):
        factor, count = ladder
        spec = _budget_spec(BASE, start, factor, count, "min-qubits", constraints)
        result = run_optimize(spec)
        assert result.answer == dense_answer(spec), (start, ladder, constraints)
        # Adaptive means adaptive: well under half the grid was probed.
        assert result.num_evaluations < spec.num_points() / 2

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        start=st.sampled_from((1e-9, 1e-8)),
        ladder=st.sampled_from(LADDERS),
        constraints=st.sampled_from(
            ({}, {"maxRuntime_s": 2}, {"maxRuntime_s": 10})
        ),
    )
    def test_min_runtime_matches_dense_under_free_factories(
        self, start, ladder, constraints
    ):
        factor, count = ladder
        spec = _budget_spec(
            BASE_FREE, start, factor, count, "min-runtime", constraints
        )
        result = run_optimize(spec)
        assert result.answer == dense_answer(spec), (start, ladder, constraints)
        assert result.num_evaluations < spec.num_points() / 2

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(
        start=st.sampled_from((1e-9, 1e-8)),
        constraints=st.sampled_from(({}, {"maxRuntime_s": 10})),
    )
    def test_frontier_objective_matches_dense(self, start, constraints):
        spec = _budget_spec(
            BASE, start, 1.7, 30, "qubits-runtime", constraints
        )
        result = run_optimize(spec)
        assert result.answer == dense_answer(spec)

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(
        start=st.sampled_from((1e-9, 1e-8)),
        cap=st.sampled_from((5, 10)),
    )
    def test_mixed_structure_falls_back_to_a_feasible_answer(self, start, cap):
        # A runtime cap under pinned factories has no proven runtime
        # direction -> bounded refinement. The answer must still be a
        # probed, feasible point (refinement never fabricates one).
        spec = _budget_spec(
            BASE, start, 1.7, 30, "min-qubits", {"maxRuntime_s": cap}
        )
        result = run_optimize(spec)
        probed = {probe.index for probe in result.probes}
        for index in result.answer:
            assert index in probed
        for probe in result.answer_probes():
            assert probe.feasible
            assert probe.result.runtime_seconds <= cap

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(
        objective=st.sampled_from(("min-qubits", "qubits-runtime")),
        constraints=st.sampled_from(({}, {"maxPhysicalQubits": 400_000})),
    )
    def test_two_axis_profile_times_budget_matches_dense(
        self, objective, constraints
    ):
        spec = OptimizeSpec.from_dict(
            {
                "base": {
                    "program": {"counts": COUNTS.to_dict()},
                    "constraints": {"maxTFactories": 1},
                },
                "axes": [
                    {
                        "field": "qubit",
                        "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"],
                    },
                    {
                        "field": "budget",
                        "geom": {"start": 1e-9, "factor": 1.7, "count": 24},
                    },
                ],
                "objective": objective,
                "constraints": constraints,
            }
        )
        result = run_optimize(spec)
        assert result.answer == dense_answer(spec)
        assert result.num_evaluations < spec.num_points()

    def test_short_fallback_axis_is_probed_exhaustively_and_exact(self):
        # maxTFactories has no proven monotone structure -> the search
        # falls back; at <= EXHAUSTIVE_LIMIT values it probes the whole
        # column, so the answer is exact regardless of structure.
        spec = OptimizeSpec.from_dict(
            {
                "base": {
                    "program": {"counts": COUNTS.to_dict()},
                    "qubit": {"profile": "qubit_gate_ns_e3"},
                    "budget": 1e-4,
                },
                "axes": [
                    {
                        "field": "constraints.maxTFactories",
                        "range": {"start": 1, "stop": 12},
                    }
                ],
                "objective": "min-runtime",
                "constraints": {"maxPhysicalQubits": 1_000_000},
            }
        )
        assert spec.num_points() <= EXHAUSTIVE_LIMIT
        result = run_optimize(spec)
        assert result.answer == dense_answer(spec)
        assert len(result.probes) == spec.num_points()

    def test_long_fallback_axis_answer_is_on_the_dense_frontier(self):
        # Above EXHAUSTIVE_LIMIT an unproven axis gets bounded local
        # refinement. logicalDepthFactor trades runtime for qubits
        # smoothly, so refinement must still land on the dense answer.
        spec = OptimizeSpec.from_dict(
            {
                "base": {
                    "program": {"counts": COUNTS.to_dict()},
                    "qubit": {"profile": "qubit_gate_ns_e3"},
                    "budget": 1e-3,
                },
                "axes": [
                    {
                        "field": "constraints.logicalDepthFactor",
                        "geom": {"start": 1, "factor": 1.3, "count": 24},
                    }
                ],
                "objective": "min-qubits",
                "constraints": {},
            }
        )
        result = run_optimize(spec)
        assert result.answer == dense_answer(spec)

    def test_infeasible_question_returns_empty_answer_quickly(self):
        spec = _budget_spec(
            BASE, 1e-9, 1.7, 30, "min-qubits", {"maxPhysicalQubits": 10}
        )
        result = run_optimize(spec)
        assert result.answer == ()
        assert result.num_feasible == 0
        # Monotone infeasibility is *proven* from the endpoints, not
        # discovered by scanning.
        assert result.num_evaluations <= 4
        assert dense_answer(spec) == ()


class Kill(Exception):
    """Raised by a progress hook to simulate an operator interrupt."""


class TestStoreBackedResume:
    def test_warm_rerun_answers_from_the_stored_trace(self, tmp_path):
        spec = small_optimize()
        store = ResultStore(tmp_path)
        cold = run_optimize(spec, store=store)
        assert cold.from_trace is False and cold.num_evaluations > 0
        warm = run_optimize(spec, store=store)
        assert warm.from_trace is True
        assert warm.num_evaluations == 0
        assert warm.to_dict() == cold.to_dict()

    def test_equivalent_respelling_answers_from_the_stored_trace(self, tmp_path):
        store = ResultStore(tmp_path)
        run_optimize(small_optimize(), store=store)
        values = geom_values(1e-9, 1.7, 24)
        respelled = OptimizeSpec.from_dict(
            {**OPTIMIZE_DOC, "axes": [{"field": "budget", "values": values}]}
        )
        warm = run_optimize(respelled, store=store)
        assert warm.from_trace is True

    def test_kill_and_resume_is_bit_for_bit(self, tmp_path):
        """The acceptance test: interrupt mid-search, resume, compare."""
        spec = small_optimize()
        reference = run_optimize(spec, store=ResultStore(tmp_path / "ref"))

        store = ResultStore(tmp_path / "killed")

        def kill_mid_search(event):
            if event.round >= 2:
                raise Kill

        with pytest.raises(Kill):
            run_optimize(spec, store=store, progress=kill_mid_search)
        trace = store.get_optimize(reference.optimize_hash)
        assert trace is not None and trace["status"] == "running"
        assert len(trace["probes"]) > 0, "finished rounds must be persisted"

        resumed = run_optimize(spec, store=store)
        assert resumed.from_trace is False  # recomputed, not the warm path
        probes_from_store = sum(1 for p in resumed.probes if p.from_store)
        assert probes_from_store >= len(trace["probes"])
        assert resumed.to_dict() == reference.to_dict()

    def test_corrupt_trace_is_recomputed_and_healed(self, tmp_path):
        spec = small_optimize()
        store = ResultStore(tmp_path)
        cold = run_optimize(spec, store=store)
        path = store.optimize_path_for(cold.optimize_hash)
        path.write_text("{not json")
        healed = run_optimize(spec, store=store)
        assert healed.from_trace is False
        assert healed.to_dict() == cold.to_dict()
        # The trace was overwritten: a third run is warm again.
        assert run_optimize(spec, store=store).from_trace is True

    def test_progress_events_accumulate(self, tmp_path):
        events = []
        result = run_optimize(
            small_optimize(), store=ResultStore(tmp_path), progress=events.append
        )
        assert [e.round for e in events] == list(range(1, len(events) + 1))
        assert events[-1].probes == len(result.probes)
        assert events[-1].feasible == result.num_feasible
        cumulative = [e.evaluations for e in events]
        assert cumulative == sorted(cumulative)  # running total
        assert cumulative[-1] == result.num_evaluations


class TestQueueExecutor:
    def test_queue_matches_local_bit_for_bit(self, tmp_path):
        spec = small_optimize()
        local = run_optimize(spec, store=ResultStore(tmp_path / "local"))
        queued = run_optimize(
            spec, store=ResultStore(tmp_path / "queue"), executor="queue"
        )
        assert queued.to_dict() == local.to_dict()
        assert queued.num_evaluations == local.num_evaluations


class TestOptimizeCLI:
    def _write(self, tmp_path, doc=None):
        path = tmp_path / "optimize.json"
        path.write_text(json.dumps(doc if doc is not None else OPTIMIZE_DOC))
        return path

    def test_table_output_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["optimize", str(self._write(tmp_path)), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "objective min-qubits" in out
        assert "phys qubits" in out

    def test_json_output_is_the_result_document(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path)
        assert main(["optimize", str(path), "--quiet", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["grid"] == 24
        assert document["answer"]["objective"] == "min-qubits"
        assert document["answer"]["points"]

    def test_warm_resume_answers_from_trace_and_matches_cold(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = self._write(tmp_path)
        store_dir = tmp_path / "store"
        assert (
            main(["optimize", str(path), "--store", str(store_dir), "--json"])
            == 0
        )
        cold = json.loads(capsys.readouterr().out)
        args = [
            "optimize",
            str(path),
            "--store",
            str(store_dir),
            "--resume",
            "--json",
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "resume: stored trace is 'done'" in captured.err
        assert "answered from stored trace (0 evaluations)" in captured.err
        assert json.loads(captured.out) == cold

    def test_resume_without_prior_trace_says_so(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path)
        args = ["optimize", str(path), "--store", str(tmp_path / "s"), "--resume"]
        assert main(args + ["--quiet"]) == 0
        assert "resume: no stored probe trace" in capsys.readouterr().err

    def test_infeasible_question_sets_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        doc = json.loads(json.dumps(OPTIMIZE_DOC))
        doc["constraints"] = {"maxPhysicalQubits": 10}
        assert main(["optimize", str(self._write(tmp_path, doc)), "--quiet"]) == 1
        assert "no feasible point" in capsys.readouterr().out

    def test_flag_validation(self, tmp_path):
        from repro.cli import main

        path = self._write(tmp_path)
        for args in (
            ["optimize", str(path), "--resume"],
            ["optimize", str(path), "--executor", "queue"],
            ["optimize", str(path), "--workers", "0"],
            ["optimize", str(path), "--lease-ttl", "0"],
        ):
            with pytest.raises(SystemExit):
                main(args)

    def test_malformed_optimize_file_is_a_spec_error(self, tmp_path):
        from repro.cli import main

        path = self._write(tmp_path, {"axes": []})
        with pytest.raises(SystemExit, match="invalid optimize spec"):
            main(["optimize", str(path)])

    def test_unreadable_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot read optimize file"):
            main(["optimize", str(tmp_path / "missing.json")])
