"""Predefined QEC schemes (paper Sec. IV-C.2; Beverland et al. Sec. IV).

* ``surface_code`` (gate-based): lattice-surgery surface code; one logical
  cycle is ``d`` rounds of syndrome extraction, each round 4 two-qubit
  gates + 2 measurement steps; ``2 d^2`` physical qubits per logical qubit
  (data + ancilla patches).
* ``surface_code`` (Majorana): measurement-based surface code; syndrome
  extraction via ~20 one-qubit-measurement steps per round.
* ``floquet_code`` (Majorana): Hastings–Haah honeycomb code; 3 measurement
  steps per round and ``4 d^2 + 8 (d - 1)`` physical qubits per logical
  qubit.

Crossing prefactors/thresholds follow Beverland et al.: surface code
(gate-based) a=0.03, p*=0.01; surface code (Majorana) a=0.08, p*=0.0015;
floquet code a=0.07, p*=0.01.
"""

from __future__ import annotations

from ..qubits import InstructionSet, PhysicalQubitParams
from .scheme import QECScheme

SURFACE_CODE_GATE_BASED = QECScheme(
    name="surface_code",
    crossing_prefactor=0.03,
    error_correction_threshold=0.01,
    logical_cycle_time="(4 * twoQubitGateTime + 2 * oneQubitMeasurementTime) * codeDistance",
    physical_qubits_per_logical_qubit="2 * codeDistance^2",
    instruction_set=InstructionSet.GATE_BASED,
)

SURFACE_CODE_MAJORANA = QECScheme(
    name="surface_code",
    crossing_prefactor=0.08,
    error_correction_threshold=0.0015,
    logical_cycle_time="20 * oneQubitMeasurementTime * codeDistance",
    physical_qubits_per_logical_qubit="2 * codeDistance^2",
    instruction_set=InstructionSet.MAJORANA,
)

FLOQUET_CODE = QECScheme(
    name="floquet_code",
    crossing_prefactor=0.07,
    error_correction_threshold=0.01,
    logical_cycle_time="3 * oneQubitMeasurementTime * codeDistance",
    physical_qubits_per_logical_qubit="4 * codeDistance^2 + 8 * (codeDistance - 1)",
    instruction_set=InstructionSet.MAJORANA,
)

#: Scheme lookup by (name, instruction set).
PREDEFINED_SCHEMES: dict[tuple[str, InstructionSet], QECScheme] = {
    ("surface_code", InstructionSet.GATE_BASED): SURFACE_CODE_GATE_BASED,
    ("surface_code", InstructionSet.MAJORANA): SURFACE_CODE_MAJORANA,
    ("floquet_code", InstructionSet.MAJORANA): FLOQUET_CODE,
}


def qec_scheme(name: str, qubit: PhysicalQubitParams, **overrides: object) -> QECScheme:
    """Look up a scheme by name for a qubit technology, with overrides.

    Resolves through the default :class:`~repro.registry.Registry`, so
    user-defined schemes (registered in code or loaded from scenario
    files) are found alongside the predefined ones. An unknown or
    incompatible name raises a :class:`KeyError` listing every available
    scheme together with the instruction sets it applies to.

    >>> qec_scheme("surface_code", QUBIT_GATE_NS_E3)
    >>> qec_scheme("floquet_code", QUBIT_MAJ_NS_E4, max_code_distance=31)
    """
    from ..registry import default_registry  # deferred: avoids import cycle

    return default_registry().scheme(name, qubit, **overrides)


def default_scheme_for(qubit: PhysicalQubitParams) -> QECScheme:
    """The tool's default scheme choice per technology.

    Matches the paper's Fig. 4 setup: surface code for gate-based
    hardware, floquet code for Majorana hardware.
    """
    if qubit.instruction_set is InstructionSet.GATE_BASED:
        return SURFACE_CODE_GATE_BASED
    return FLOQUET_CODE
