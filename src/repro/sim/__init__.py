"""Classical reversible-logic simulator for IR circuits.

The multiplier case study (paper Sec. V) is built entirely from classical
reversible gates (X, CNOT, Toffoli, temporary AND) plus diagonal phases.
On computational basis states such circuits act as permutations, so they
can be simulated bit-exactly with integer bit masks at any size we care
to test. This simulator is the substrate we use to *prove* the arithmetic
circuits compute the right function before trusting their resource counts
— the role the sparse simulator plays in the AQDK workflow.

Gates that create superposition (H, T on a path that matters, arbitrary
rotations) are rejected: this is a verification tool for reversible
arithmetic, not a general quantum simulator. Diagonal gates (Z, S, CZ,
CCZ, T on basis states) act trivially on basis states and are allowed.
"""

from .reversible import ReversibleSimulator, SimulationError, run_reversible

__all__ = ["ReversibleSimulator", "SimulationError", "run_reversible"]
