"""Sizing the core of Shor's algorithm with windowed modular arithmetic.

Windowed arithmetic (the paper's ref. [14]) was designed for exactly this:
the modular multiplications inside Shor-style modular exponentiation.
This example builds a verified windowed modular multiplier, scales its
counts to a full 2048-bit modular exponentiation via sequential
composition, and asks where the workload sits on the paper's
implementation levels (Sec. II).

Run:  python examples/shor_modexp.py
"""

from repro import estimate, qubit_params
from repro.advantage import assess
from repro.arithmetic import modexp_circuit, modexp_logical_counts
from repro.sim import run_reversible

# --- 1. Verify modular exponentiation at a testable size. -------------------
# |e>|1> -> |e>|7^e mod 247>; simulate the in-place multiplication chain for
# one exponent value (the circuit itself prepares a superposed exponent).
base, modulus = 7, 247  # 247 = 13 * 19, an 8-bit semiprime
from repro.arithmetic import mod_mul_inplace
from repro.ir import CircuitBuilder

exponent_value = 11
builder = CircuitBuilder()
exponent = builder.allocate_register(4)
result = builder.allocate_register(8)
builder.x(result[0])
factor = base
for bit in range(4):
    mod_mul_inplace(builder, result, factor, modulus, control=exponent[bit])
    factor = (factor * factor) % modulus
circuit = builder.finish()
sim = run_reversible(
    circuit, {q: (exponent_value >> i) & 1 for i, q in enumerate(exponent)}
)
assert sim.read_register(result) == pow(base, exponent_value, modulus)
print(
    f"verified: {base}^{exponent_value} mod {modulus} = "
    f"{sim.read_register(result)} on a {len(circuit):,}-instruction circuit"
)

# --- 2. Scale to RSA-2048 with the exact closed-form counts. -----------------
# modexp_logical_counts mirrors the verified construction instruction for
# instruction (tests prove equality with traced circuits), so these counts
# are the real cost of the circuit above at n = 2048, e = 4096 bits.
bits = 2048
modexp_counts = modexp_logical_counts(bits)
print(
    f"\n2048-bit modular exponentiation ({2 * bits:,} controlled in-place "
    f"multiplications)\n  -> {modexp_counts.ccix_count:,} CCiX gates, "
    f"{modexp_counts.ccz_count:,} CCZ gates, "
    f"{modexp_counts.num_qubits:,} logical qubits pre-layout"
)

# --- 3. Estimate and classify. -----------------------------------------------
for profile in ("qubit_gate_ns_e3", "qubit_maj_ns_e6"):
    result = estimate(modexp_counts, qubit_params(profile), budget=1e-3)
    verdict = assess(result)
    print(
        f"\n{profile}: {result.physical_qubits:,} physical qubits, "
        f"{result.runtime_seconds / 3600:.1f} h, "
        f"{result.rqops:.3g} rQOPS"
    )
    print(
        f"  implementation level: {verdict.level.name} "
        f"({'practical advantage' if verdict.practical_advantage else 'not yet practical'})"
    )
    for note in verdict.notes:
        print(f"  note: {note}")
