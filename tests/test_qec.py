"""Tests for QEC schemes, the code-distance solver, and logical qubits."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.qec import (
    FLOQUET_CODE,
    LogicalQubit,
    QECScheme,
    QECSchemeError,
    SURFACE_CODE_GATE_BASED,
    SURFACE_CODE_MAJORANA,
    default_scheme_for,
    qec_scheme,
)
from repro.qubits import (
    InstructionSet,
    QUBIT_GATE_NS_E3,
    QUBIT_GATE_NS_E4,
    QUBIT_MAJ_NS_E4,
    QUBIT_MAJ_NS_E6,
)


class TestPredefinedSchemes:
    def test_surface_code_gate_based_formulas(self):
        s = SURFACE_CODE_GATE_BASED
        # (4*50 + 2*100) * d and 2*d^2 for the ns gate-based profile
        assert s.cycle_time_ns(QUBIT_GATE_NS_E3, 9) == (4 * 50 + 2 * 100) * 9
        assert s.physical_qubits(QUBIT_GATE_NS_E3, 9) == 2 * 81

    def test_floquet_code_formulas(self):
        assert FLOQUET_CODE.cycle_time_ns(QUBIT_MAJ_NS_E4, 9) == 3 * 100 * 9
        assert FLOQUET_CODE.physical_qubits(QUBIT_MAJ_NS_E4, 9) == 4 * 81 + 8 * 8

    def test_lookup_respects_instruction_set(self):
        assert qec_scheme("surface_code", QUBIT_GATE_NS_E3) is SURFACE_CODE_GATE_BASED
        assert qec_scheme("surface_code", QUBIT_MAJ_NS_E4) is SURFACE_CODE_MAJORANA
        with pytest.raises(KeyError, match="floquet_code"):
            qec_scheme("floquet_code", QUBIT_GATE_NS_E3)

    def test_defaults_match_paper_figure_4_setup(self):
        assert default_scheme_for(QUBIT_GATE_NS_E3).name == "surface_code"
        assert default_scheme_for(QUBIT_MAJ_NS_E4).name == "floquet_code"

    def test_compatibility_check(self):
        with pytest.raises(QECSchemeError, match="majorana"):
            FLOQUET_CODE.check_compatible(QUBIT_GATE_NS_E3)


class TestLogicalErrorModel:
    def test_error_model_formula(self):
        # a * (p/p*)^((d+1)/2) with a=0.03, p=1e-3, p*=0.01 at d=5
        got = SURFACE_CODE_GATE_BASED.logical_error_rate(QUBIT_GATE_NS_E3, 5)
        assert got == pytest.approx(0.03 * (1e-3 / 0.01) ** 3)

    def test_rejects_even_distance(self):
        with pytest.raises(QECSchemeError, match="odd"):
            SURFACE_CODE_GATE_BASED.logical_error_rate(QUBIT_GATE_NS_E3, 4)

    @given(st.integers(0, 20))
    def test_property_error_rate_decreases_with_distance(self, k):
        d = 2 * k + 1
        better = SURFACE_CODE_GATE_BASED.logical_error_rate(QUBIT_GATE_NS_E3, d + 2)
        worse = SURFACE_CODE_GATE_BASED.logical_error_rate(QUBIT_GATE_NS_E3, d)
        assert better < worse


class TestDistanceSolver:
    def test_solver_returns_minimal_odd_distance(self):
        target = 1e-10
        d = SURFACE_CODE_GATE_BASED.required_code_distance(QUBIT_GATE_NS_E3, target)
        assert d % 2 == 1
        assert SURFACE_CODE_GATE_BASED.logical_error_rate(QUBIT_GATE_NS_E3, d) <= target
        if d > 1:
            assert (
                SURFACE_CODE_GATE_BASED.logical_error_rate(QUBIT_GATE_NS_E3, d - 2)
                > target
            )

    def test_above_threshold_rejected(self):
        hot = QUBIT_GATE_NS_E3.customized(
            one_qubit_gate_error_rate=0.02,
            two_qubit_gate_error_rate=0.02,
            one_qubit_measurement_error_rate=0.02,
        )
        with pytest.raises(QECSchemeError, match="threshold"):
            SURFACE_CODE_GATE_BASED.required_code_distance(hot, 1e-6)

    def test_unachievable_distance_rejected(self):
        tiny = SURFACE_CODE_GATE_BASED.customized(max_code_distance=5)
        with pytest.raises(QECSchemeError, match="maximum"):
            tiny.required_code_distance(QUBIT_GATE_NS_E3, 1e-30)

    def test_nonpositive_target_rejected(self):
        with pytest.raises(QECSchemeError, match="positive"):
            SURFACE_CODE_GATE_BASED.required_code_distance(QUBIT_GATE_NS_E3, 0.0)

    @given(st.floats(min_value=1e-25, max_value=1e-3, allow_nan=False))
    def test_property_solver_minimal_and_sufficient(self, target):
        d = FLOQUET_CODE.required_code_distance(QUBIT_MAJ_NS_E4, target)
        assert FLOQUET_CODE.logical_error_rate(QUBIT_MAJ_NS_E4, d) <= target
        assert d == 1 or (
            FLOQUET_CODE.logical_error_rate(QUBIT_MAJ_NS_E4, d - 2) > target
        )

    @given(
        st.floats(min_value=1e-25, max_value=1e-4, allow_nan=False),
        st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    )
    def test_property_tighter_target_never_smaller_distance(self, target, factor):
        d1 = FLOQUET_CODE.required_code_distance(QUBIT_MAJ_NS_E6, target)
        d2 = FLOQUET_CODE.required_code_distance(QUBIT_MAJ_NS_E6, target / factor)
        assert d2 >= d1


class TestCustomSchemes:
    def test_fully_custom_scheme(self):
        custom = QECScheme(
            name="my_code",
            crossing_prefactor=0.05,
            error_correction_threshold=0.005,
            logical_cycle_time="10 * oneQubitMeasurementTime * codeDistance",
            physical_qubits_per_logical_qubit="3 * codeDistance^2",
        )
        assert custom.cycle_time_ns(QUBIT_GATE_NS_E4, 3) == 3000
        assert custom.physical_qubits(QUBIT_GATE_NS_E4, 3) == 27

    def test_customized_override_keeps_rest(self):
        slow = FLOQUET_CODE.customized(crossing_prefactor=0.2)
        assert slow.crossing_prefactor == 0.2
        assert slow.error_correction_threshold == FLOQUET_CODE.error_correction_threshold
        assert "customized" in slow.name

    def test_custom_scheme_referencing_missing_parameter(self):
        needs_gates = QECScheme(
            name="needs_gates",
            crossing_prefactor=0.03,
            error_correction_threshold=0.01,
            logical_cycle_time="twoQubitGateTime * codeDistance",
            physical_qubits_per_logical_qubit="2 * codeDistance^2",
        )
        with pytest.raises(QECSchemeError, match="twoQubitGateTime"):
            needs_gates.check_compatible(QUBIT_MAJ_NS_E4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(QECSchemeError):
            FLOQUET_CODE.customized(crossing_prefactor=-1.0)
        with pytest.raises(QECSchemeError):
            FLOQUET_CODE.customized(error_correction_threshold=1.5)
        with pytest.raises(QECSchemeError):
            FLOQUET_CODE.customized(max_code_distance=10)  # even


class TestLogicalQubit:
    def test_for_target_error_rate(self):
        lq = LogicalQubit.for_target_error_rate(FLOQUET_CODE, QUBIT_MAJ_NS_E4, 1e-12)
        assert lq.logical_error_rate <= 1e-12
        assert lq.physical_qubits == FLOQUET_CODE.physical_qubits(
            QUBIT_MAJ_NS_E4, lq.code_distance
        )
        assert lq.logical_cycles_per_second == pytest.approx(1e9 / lq.cycle_time_ns)

    def test_to_dict_structure(self):
        lq = LogicalQubit.for_target_error_rate(FLOQUET_CODE, QUBIT_MAJ_NS_E6, 1e-9)
        d = lq.to_dict()
        assert d["codeDistance"] == lq.code_distance
        assert d["qecScheme"]["name"] == "floquet_code"
