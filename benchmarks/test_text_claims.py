"""Section V in-text claims: the paper's most precise quantitative numbers.

"For 2048-bit numbers, the windowed algorithm uses 1.12e11 logical quantum
operations and 20 597 logical qubits. The estimated runtime varies between
12 and 9e4 seconds, hence the subroutine computes at between 1.37e6 and
9.1e9 rQOPS."
"""

from __future__ import annotations

import pytest

from repro.experiments import evaluate_claims
from repro.experiments.claims import format_claims


@pytest.fixture(scope="module")
def claims():
    return {c.claim_id: c for c in evaluate_claims()}


def test_claims_logical_qubits(benchmark, claims):
    """~20,597 logical qubits for 2048-bit windowed multiplication."""
    c = benchmark(lambda: claims["logical-qubits-2048-windowed"])
    assert c.holds, f"paper {c.paper_value} vs measured {c.measured_value}"
    measured = int(c.measured_value)
    assert abs(measured - 20597) / 20597 < 0.02  # we land within 1%


def test_claims_logical_operations(benchmark, claims):
    """~1.12e11 logical operations (logical qubits x logical depth)."""
    c = benchmark(lambda: claims["logical-ops-2048-windowed"])
    assert c.holds, f"paper {c.paper_value} vs measured {c.measured_value}"
    measured = float(c.measured_value)
    assert 1.12e11 / 4 <= measured <= 1.12e11 * 4


def test_claims_runtime_span(benchmark, claims):
    c = benchmark(lambda: claims["runtime-span-2048-windowed"])
    assert c.holds, f"paper {c.paper_value} vs measured {c.measured_value}"


def test_claims_rqops_span(benchmark, claims):
    c = benchmark(lambda: claims["rqops-span-2048-windowed"])
    assert c.holds, f"paper {c.paper_value} vs measured {c.measured_value}"


def test_claims_karatsuba_conclusions(benchmark, claims):
    """The paper's two qualitative conclusions about Karatsuba."""
    def both():
        return (
            claims["karatsuba-most-qubits"],
            claims["karatsuba-not-faster-2048"],
        )

    most_qubits, not_faster = benchmark(both)
    assert most_qubits.holds
    assert not_faster.holds


def test_claims_emit_report(benchmark, claims, capsys):
    report = benchmark(format_claims, list(claims.values()))
    with capsys.disabled():
        print("\n=== Section V in-text claims ===")
        print(report)
