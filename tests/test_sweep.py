"""Tests for the declarative sweep subsystem (spec, execution, resume).

The load-bearing assertion is the kill-and-resume acceptance test:
interrupting a store-backed sweep mid-run and re-running it completes
with all previously finished points served from the store, and the final
:class:`SweepResult` — frontiers included — is bit-for-bit equal to an
uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro import LogicalCounts, Registry, ResultStore
from repro.estimator.spec import EstimateSpec, run_specs
from repro.estimator.sweep import (
    DEFAULT_CHUNK_SIZE,
    FrontierSpec,
    SweepAxis,
    SweepResult,
    SweepSpec,
    pareto_min_indices,
    run_sweep,
)

COUNTS = LogicalCounts(
    num_qubits=40, t_count=20_000, ccz_count=5_000, measurement_count=500
)

#: A small two-axis sweep used throughout: budgets x profiles, with a
#: per-profile Pareto frontier.
SWEEP_DOC = {
    "base": {"program": {"counts": COUNTS.to_dict()}},
    "axes": [
        {"field": "budget", "values": [1e-4, 1e-3, 1e-2]},
        {"field": "qubit", "values": ["qubit_gate_ns_e3", "qubit_maj_ns_e4"]},
    ],
    "frontier": {"objective": "qubits-runtime", "groupBy": ["qubit"]},
}


def small_sweep() -> SweepSpec:
    return SweepSpec.from_dict(json.loads(json.dumps(SWEEP_DOC)))


class TestSweepSpecParsing:
    def test_round_trip(self):
        sweep = small_sweep()
        again = SweepSpec.from_dict(sweep.to_dict())
        assert again.to_dict() == sweep.to_dict()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep fields"):
            SweepSpec.from_dict({**SWEEP_DOC, "bogus": 1})
        with pytest.raises(ValueError, match="unknown axis fields"):
            SweepSpec.from_dict(
                {"axes": [{"field": "budget", "values": [1], "typo": 2}]}
            )
        with pytest.raises(ValueError, match="unknown frontier fields"):
            SweepSpec.from_dict(
                {
                    "axes": [{"field": "budget", "values": [1e-3]}],
                    "frontier": {"objective": "min-qubits", "extra": 1},
                }
            )

    def test_axis_needs_exactly_one_value_source(self):
        with pytest.raises(ValueError, match="exactly one of"):
            SweepAxis.from_dict({"field": "budget"})
        with pytest.raises(ValueError, match="exactly one of"):
            SweepAxis.from_dict(
                {"field": "budget", "values": [1], "range": {"start": 1, "stop": 2}}
            )

    def test_range_axis_expands_inclusively(self):
        axis = SweepAxis.from_dict(
            {"field": "bits", "range": {"start": 8, "stop": 32, "step": 8}}
        )
        assert axis.values == (8, 16, 24, 32)
        assert all(isinstance(v, int) for v in axis.values)
        fractional = SweepAxis.from_dict(
            {"field": "budget", "range": {"start": 0.1, "stop": 0.3, "step": 0.1}}
        )
        assert fractional.values == pytest.approx((0.1, 0.2, 0.3))

    def test_geom_axis_expands_geometrically(self):
        axis = SweepAxis.from_dict(
            {"field": "bits", "geom": {"start": 32, "factor": 2, "count": 4}}
        )
        assert axis.values == (32, 64, 128, 256)
        assert all(isinstance(v, int) for v in axis.values)

    def test_bad_ranges_rejected(self):
        for body in (
            {"start": 2, "stop": 1},
            {"start": 1, "stop": 2, "step": 0},
            {"start": 1, "stop": 2, "step": -1},
            {"start": 1},
        ):
            with pytest.raises(ValueError):
                SweepAxis.from_dict({"field": "x", "range": body})
        for body in ({"start": 1, "factor": 0, "count": 3}, {"start": 1}):
            with pytest.raises(ValueError):
                SweepAxis.from_dict({"field": "x", "geom": body})

    def test_zip_mode_requires_equal_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            SweepSpec(
                axes=(
                    SweepAxis("budget", (1e-3, 1e-4)),
                    SweepAxis("qubit", ("qubit_gate_ns_e3",)),
                ),
                mode="zip",
            )

    def test_unknown_mode_and_objective(self):
        with pytest.raises(ValueError, match="unknown sweep mode"):
            SweepSpec(axes=(SweepAxis("budget", (1e-3,)),), mode="diagonal")
        with pytest.raises(ValueError, match="unknown frontier objective"):
            FrontierSpec(objective="max-qubits")

    def test_group_by_must_name_an_axis(self):
        with pytest.raises(ValueError, match="groupBy names unknown axes"):
            SweepSpec(
                axes=(SweepAxis("budget", (1e-3,)),),
                frontier=FrontierSpec(group_by=("qubit",)),
            )

    def test_duplicate_axis_fields_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis fields"):
            SweepSpec(
                axes=(SweepAxis("budget", (1e-3,)), SweepAxis("budget", (1e-4,)))
            )


class TestExpansion:
    def test_cartesian_order_is_first_axis_major(self):
        sweep = small_sweep()
        points = sweep.expand()
        assert len(points) == sweep.num_points() == 6
        coords = [dict(point.coords) for point in points]
        assert [c["budget"] for c in coords] == [1e-4, 1e-4, 1e-3, 1e-3, 1e-2, 1e-2]
        assert coords[0]["qubit"] == "qubit_gate_ns_e3"
        assert coords[1]["qubit"] == "qubit_maj_ns_e4"

    def test_zip_mode_pairs_positionally(self):
        sweep = SweepSpec(
            base={"program": {"counts": COUNTS.to_dict()}},
            axes=(
                SweepAxis("budget", (1e-3, 1e-4)),
                SweepAxis("qubit", ("qubit_gate_ns_e3", "qubit_maj_ns_e4")),
            ),
            mode="zip",
        )
        points = sweep.expand()
        assert len(points) == 2
        assert dict(points[1].coords) == {
            "budget": 1e-4,
            "qubit": "qubit_maj_ns_e4",
        }

    def test_qubit_and_scheme_string_sugar(self):
        sweep = SweepSpec(
            base={"program": {"counts": COUNTS.to_dict()}},
            axes=(
                SweepAxis("qubit", ("qubit_gate_ns_e3",)),
                SweepAxis("scheme", ("surface_code",)),
            ),
        )
        spec = sweep.expand()[0].spec
        assert spec.qubit == "qubit_gate_ns_e3"
        assert spec.scheme == "surface_code"

    def test_dotted_paths_create_nested_fragments(self):
        sweep = SweepSpec(
            base={"budget": 1e-4},
            axes=(
                SweepAxis("program.multiplier.algorithm", ("schoolbook",)),
                SweepAxis("program.multiplier.bits", (64,)),
                SweepAxis("qubit", ("qubit_maj_ns_e4",)),
            ),
        )
        spec = sweep.expand()[0].spec
        assert spec.program.kind == "multiplier"
        assert spec.program.program.bits == 64

    def test_points_get_auto_labels(self):
        point = small_sweep().expand()[0]
        assert point.spec.label == "budget=0.0001, qubit=qubit_gate_ns_e3"

    def test_base_label_wins_over_auto_label(self):
        sweep = SweepSpec(
            base={"program": {"counts": COUNTS.to_dict()}, "label": "mine"},
            axes=(SweepAxis("qubit", ("qubit_gate_ns_e3",)),),
        )
        assert sweep.expand()[0].spec.label == "mine"

    def test_malformed_point_raises_naming_the_point(self):
        sweep = SweepSpec(
            base={"program": {"counts": COUNTS.to_dict()}},
            axes=(SweepAxis("budget", (-1.0,)), SweepAxis("qubit", ("x",))),
        )
        with pytest.raises(ValueError, match="sweep point 0"):
            sweep.expand()

    def test_expansion_is_cached_and_immune_to_base_mutation(self):
        base = {"program": {"counts": COUNTS.to_dict()}}
        sweep = SweepSpec(base=base, axes=(SweepAxis("qubit", ("qubit_gate_ns_e3",)),))
        first = sweep.expand()
        base["budget"] = -1.0  # the spec owns a copy; no stale/poisoned cache
        second = sweep.expand()
        assert [p.spec for p in second] == [p.spec for p in first]
        assert second is not first  # callers get their own list

    def test_non_json_base_rejected(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            SweepSpec(base={"program": object()}, axes=(SweepAxis("qubit", ("x",)),))

    def test_axis_descending_into_scalar_raises(self):
        sweep = SweepSpec(
            base={"budget": 1e-3},
            axes=(SweepAxis("budget.total.deep", (1,)),),
        )
        with pytest.raises(ValueError, match="non-object"):
            sweep.expand()


class TestContentHash:
    def test_equivalent_axis_spellings_hash_identically(self):
        base = {**SWEEP_DOC["base"], "qubit": {"profile": "qubit_gate_ns_e3"}}
        explicit = SweepSpec.from_dict(
            {
                "base": base,
                "axes": [{"field": "budget", "values": [1e-4, 1e-3, 1e-2]}],
            }
        )
        spelled = SweepSpec.from_dict(
            {
                "base": base,
                "axes": [
                    {
                        "field": "budget",
                        "geom": {"start": 1e-4, "factor": 10, "count": 3},
                    }
                ],
            }
        )
        assert explicit.content_hash() == spelled.content_hash()

    def test_labels_and_chunk_size_do_not_affect_the_hash(self):
        sweep = small_sweep()
        relabeled = SweepSpec.from_dict(
            {**SWEEP_DOC, "label": "anything", "chunkSize": 2}
        )
        assert sweep.content_hash() == relabeled.content_hash()

    def test_frontier_config_changes_the_hash(self):
        sweep = small_sweep()
        reduced = SweepSpec.from_dict(
            {**SWEEP_DOC, "frontier": {"objective": "min-qubits"}}
        )
        assert sweep.content_hash() != reduced.content_hash()

    def test_registry_redefinition_changes_the_hash(self):
        sweep = small_sweep()
        registry = Registry()
        baseline = sweep.content_hash(registry)
        hot = Registry()
        hot.load_scenario(
            {
                "qubitParams": [
                    {
                        **hot.qubit("qubit_gate_ns_e3").to_dict(),
                        "t_gate_time_ns": 123.0,
                    }
                ]
            }
        )
        assert sweep.content_hash(hot) != baseline


class TestParetoMinIndices:
    def test_non_dominated_points_kept_in_first_coord_order(self):
        values = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (2.5, 2.5)]
        assert pareto_min_indices(values) == [1, 2, 0]

    def test_ties_keep_the_earliest_point(self):
        values = [(1.0, 2.0), (1.0, 2.0), (2.0, 2.0)]
        assert pareto_min_indices(values) == [0]

    def test_empty(self):
        assert pareto_min_indices([]) == []

    def test_duplicate_points_stable_under_permutation(self):
        # Regression: among duplicate (x, y) points exactly one survives
        # (the lowest input index), and the *value set* of the frontier
        # is identical no matter how the input is ordered.
        import itertools

        values = [(2.0, 1.0), (1.0, 2.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.5)]
        reference = None
        for perm in itertools.permutations(range(len(values))):
            permuted = [values[i] for i in perm]
            kept = pareto_min_indices(permuted)
            # Exactly one representative per duplicate group.
            assert len(kept) == len({permuted[i] for i in kept})
            # Each duplicate group is represented by its earliest copy.
            for i in kept:
                first = min(
                    j for j, v in enumerate(permuted) if v == permuted[i]
                )
                assert i == first, (perm, kept)
            frontier_values = sorted(permuted[i] for i in kept)
            if reference is None:
                reference = frontier_values
            assert frontier_values == reference, perm


class TestRunSweep:
    def test_matches_run_specs_bit_for_bit(self):
        sweep = small_sweep()
        result = run_sweep(sweep)
        direct = run_specs([point.spec for point in sweep.expand()])
        assert [p.ok for p in result.points] == [o.ok for o in direct]
        for point, outcome in zip(result.points, direct):
            assert point.spec_hash == outcome.spec_hash
            assert point.result.to_dict() == outcome.result.to_dict()

    def test_frontier_points_are_mutually_non_dominated(self):
        result = run_sweep(small_sweep())
        by_index = {point.index: point for point in result.points}
        for group in result.frontiers:
            members = [by_index[i] for i in group.indices]
            for a in members:
                for b in members:
                    if a is b:
                        continue
                    dominates = (
                        a.result.runtime_seconds <= b.result.runtime_seconds
                        and a.result.physical_qubits <= b.result.physical_qubits
                    )
                    assert not dominates, (a.index, b.index)

    def test_failed_points_are_reported_not_raised(self):
        sweep = SweepSpec(
            base={"program": {"counts": COUNTS.to_dict()}, "budget": 1e-3},
            axes=(SweepAxis("qubit", ("qubit_gate_ns_e3", "no_such_profile")),),
            frontier=FrontierSpec(objective="min-qubits"),
        )
        result = run_sweep(sweep)
        assert result.num_ok == 1 and result.num_failed == 1
        assert "no_such_profile" in result.points[1].error
        # The failed point is excluded from the frontier.
        assert result.frontiers[0].indices == (0,)

    def test_min_runtime_objective(self):
        sweep = SweepSpec.from_dict(
            {**SWEEP_DOC, "frontier": {"objective": "min-runtime", "groupBy": ["qubit"]}}
        )
        result = run_sweep(sweep)
        by_index = {point.index: point for point in result.points}
        for group in result.frontiers:
            (winner,) = group.indices
            profile = dict(group.key)["qubit"]
            rivals = [
                p
                for p in result.points
                if dict(p.coords)["qubit"] == profile
            ]
            assert by_index[winner].result.runtime_seconds == min(
                p.result.runtime_seconds for p in rivals
            )

    def test_progress_events_accumulate(self):
        events = []
        run_sweep(small_sweep(), chunk_size=2, progress=events.append)
        assert [e.chunk for e in events] == [1, 2, 3]
        assert events[-1].completed == events[-1].total == 6
        assert events[-1].ok == 6

    def test_storeless_run_defaults_to_a_single_chunk(self):
        # Chunking only buys resumability; without a store it would just
        # split one batch call into several for nothing.
        events = []
        run_sweep(small_sweep(), progress=events.append)
        assert [e.chunk for e in events] == [1]
        assert events[0].num_chunks == 1

    def test_result_document_round_trips(self):
        result = run_sweep(small_sweep())
        document = result.to_dict()
        again = SweepResult.from_dict(json.loads(json.dumps(document)))
        assert again.to_dict() == document

    def test_csv_has_one_row_per_point(self):
        result = run_sweep(small_sweep())
        lines = result.to_csv().splitlines()
        assert len(lines) == 1 + len(result.points)
        assert lines[0].startswith("budget,qubit,specHash,ok,physicalQubits")


class TestStoreBackedResume:
    def test_warm_rerun_answers_everything_from_store(self, tmp_path):
        sweep = small_sweep()
        store = ResultStore(tmp_path)
        cold = run_sweep(sweep, store=store)
        assert cold.num_from_store == 0
        warm = run_sweep(sweep, store=store)
        assert warm.num_from_store == len(warm.points)
        assert warm.to_dict() == cold.to_dict()

    def test_kill_and_resume_is_bit_for_bit(self, tmp_path):
        """The acceptance test: interrupt mid-run, resume, compare."""
        sweep = small_sweep()

        # Reference: one uninterrupted run against a pristine store.
        reference = run_sweep(sweep, store=ResultStore(tmp_path / "ref"))

        # Interrupted: kill the sweep after the first persisted chunk.
        store = ResultStore(tmp_path / "killed")

        def kill_after_first_chunk(event):
            if event.chunk == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                sweep, store=store, chunk_size=2, progress=kill_after_first_chunk
            )
        assert len(store) == 2, "the completed chunk must already be persisted"

        # Resume: the finished points answer from the store...
        resumed = run_sweep(sweep, store=store, chunk_size=2)
        assert resumed.num_from_store == 2
        assert resumed.num_ok == len(resumed.points)
        # ... and the final result — frontiers included — is bit-for-bit
        # equal to the uninterrupted run.
        assert resumed.to_dict() == reference.to_dict()

    def test_sweep_document_survives_in_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_sweep(small_sweep(), store=store)
        document = result.to_dict()
        assert store.put_sweep(result.sweep_hash, document)
        assert store.get_sweep(result.sweep_hash) == json.loads(
            json.dumps(document)
        )
        assert store.get_sweep("ab" * 32) is None


class TestFrontierStoreIntegration:
    def test_estimate_frontier_warm_start(self, tmp_path):
        from repro import estimate_frontier, qubit_params

        store = ResultStore(tmp_path)
        qubit = qubit_params("qubit_maj_ns_e4")
        factors = [1.0, 4.0, 16.0]
        cold = estimate_frontier(
            COUNTS, qubit, budget=1e-4, depth_factors=factors, store=store
        )
        warm = estimate_frontier(
            COUNTS, qubit, budget=1e-4, depth_factors=factors, store=store
        )
        assert [p.estimates.to_dict() for p in warm] == [
            p.estimates.to_dict() for p in cold
        ]
        assert len(store) == len(factors)

    def test_custom_designer_refuses_a_store(self, tmp_path):
        from repro import TFactoryDesigner, estimate_frontier, qubit_params

        with pytest.raises(ValueError, match="factory_designer"):
            estimate_frontier(
                COUNTS,
                qubit_params("qubit_maj_ns_e4"),
                factory_designer=TFactoryDesigner(),
                store=ResultStore(tmp_path),
            )


class TestSweepCLI:
    def _write_sweep(self, tmp_path, doc=None):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(doc if doc is not None else SWEEP_DOC))
        return path

    def test_table_output_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sweep(tmp_path)
        assert main(["sweep", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "phys qubits" in out
        assert "frontier [qubits-runtime]" in out

    def test_json_output_is_the_result_document(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sweep(tmp_path)
        assert main(["sweep", str(path), "--quiet", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts"] == {"total": 6, "ok": 6, "failed": 0}
        assert len(document["points"]) == 6

    def test_resume_requires_store(self, tmp_path):
        from repro.cli import main

        path = self._write_sweep(tmp_path)
        with pytest.raises(SystemExit):
            main(["sweep", str(path), "--resume"])

    def test_resume_reports_warm_points_and_matches_cold(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sweep(tmp_path)
        store_dir = tmp_path / "store"
        assert main(["sweep", str(path), "--store", str(store_dir), "--json"]) == 0
        captured = capsys.readouterr()
        cold = json.loads(captured.out)
        assert "0/6 points already stored" not in captured.err  # no --resume yet

        assert (
            main(
                [
                    "sweep",
                    str(path),
                    "--store",
                    str(store_dir),
                    "--resume",
                    "--json",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "resume: 6/6 points already stored" in captured.err
        assert "(6 from store, 0 failed)" in captured.err
        assert json.loads(captured.out) == cold

    def test_csv_output_to_file(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sweep(tmp_path)
        out_csv = tmp_path / "points.csv"
        assert main(["sweep", str(path), "--quiet", "--csv", str(out_csv)]) == 0
        lines = out_csv.read_text().splitlines()
        assert len(lines) == 7

    def test_failed_points_set_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        doc = json.loads(json.dumps(SWEEP_DOC))
        doc["axes"][1]["values"] = ["qubit_gate_ns_e3", "bogus_profile"]
        path = self._write_sweep(tmp_path, doc)
        assert main(["sweep", str(path), "--quiet"]) == 1
        captured = capsys.readouterr()
        assert "bogus_profile" in captured.out
        assert "3 of 6 points infeasible" in captured.err

    def test_malformed_sweep_file_is_a_spec_error(self, tmp_path):
        from repro.cli import main

        path = self._write_sweep(tmp_path, {"axes": []})
        with pytest.raises(SystemExit, match="invalid sweep spec"):
            main(["sweep", str(path)])

    def test_unreadable_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot read sweep file"):
            main(["sweep", str(tmp_path / "missing.json")])


class TestRunnerOnSweep:
    def test_run_estimate_rows_empty_points(self):
        from repro.experiments.runner import run_estimate_rows

        assert run_estimate_rows([]) == []

    def test_figure_rows_resume_from_store(self, tmp_path):
        from repro.experiments.runner import run_estimate_rows

        store = ResultStore(tmp_path)
        points = [("schoolbook", 16, "qubit_maj_ns_e4"), ("windowed", 16, "qubit_maj_ns_e4")]
        cold = run_estimate_rows(points, budget=1e-4, store=store)
        assert len(store) == 2
        warm = run_estimate_rows(points, budget=1e-4, store=store)
        assert warm == cold
