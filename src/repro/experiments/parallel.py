"""DEPRECATED veneer over the shared batch engine — slated for removal.

Everything this module offered lives on the one sweep surface now:

* :func:`run_rows_parallel` -> :func:`repro.experiments.runner.
  run_estimate_rows` (same signature plus ``backend``/``store``), or
  :func:`repro.estimator.batch.estimate_batch` /
  :func:`repro.estimator.spec.run_specs` for non-figure grids;
* :func:`fig3_points` / :func:`fig4_points` -> build the ``(algorithm,
  bits, profile)`` triples directly, or use :func:`repro.experiments.
  fig3.run_fig3` / :func:`repro.experiments.fig4.run_fig4`.

Importing it emits a :class:`DeprecationWarning`; the module will be
removed in a future PR once external callers have had a release to
migrate. No internal code imports it anymore.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from .runner import PAPER_ERROR_BUDGET, EstimateRow, run_estimate_rows

warnings.warn(
    "repro.experiments.parallel is deprecated and will be removed in a "
    "future release; use repro.experiments.runner.run_estimate_rows or "
    "repro.estimator.batch.estimate_batch instead",
    DeprecationWarning,
    stacklevel=2,
)

#: A sweep point: (algorithm, bits, profile).
SweepPoint = tuple[str, int, str]


def run_rows_parallel(
    points: Sequence[SweepPoint],
    *,
    budget: float = PAPER_ERROR_BUDGET,
    max_workers: int | None = None,
) -> list[EstimateRow]:
    """Estimate all sweep points, preserving input order.

    Parameters
    ----------
    points:
        ``(algorithm, bits, profile)`` triples.
    budget:
        Total error budget shared by all points.
    max_workers:
        Process count; ``1`` (or an unavailable pool) runs serially.
        ``None`` uses the executor's default worker count.
    """
    return run_estimate_rows(points, budget=budget, max_workers=max_workers)


def fig3_points(
    bit_sizes: Sequence[int],
    algorithms: Sequence[str] = ("schoolbook", "karatsuba", "windowed"),
    profile: str = "qubit_maj_ns_e4",
) -> list[SweepPoint]:
    """The Fig. 3 grid as sweep points (algorithm-major order)."""
    return [(alg, bits, profile) for alg in algorithms for bits in bit_sizes]


def fig4_points(
    profiles: Sequence[str],
    algorithms: Sequence[str] = ("schoolbook", "karatsuba", "windowed"),
    bits: int = 2048,
) -> list[SweepPoint]:
    """The Fig. 4 grid as sweep points (profile-major order)."""
    return [(alg, bits, profile) for profile in profiles for alg in algorithms]
