"""Tests for the vectorized struct-of-arrays estimation kernel.

The kernel's contract is bit-for-bit equality with the scalar pipeline
(results *and* error messages), so most coverage here is about the
dispatch machinery around it: backend validation, the ``auto`` batch-size
threshold, the per-batch kernel counters, graceful degradation when
numpy is missing, and the ``distance_table`` the kernel tabulates from.
The property-based equality sweep lives in ``test_invariants.py``.
"""

from __future__ import annotations

import sys

import pytest

from repro import Constraints, LogicalCounts, qubit_params
from repro.estimator.batch import (
    AUTO_BATCH_THRESHOLD,
    BACKEND_CHOICES,
    EstimateCache,
    EstimateRequest,
    estimate_batch,
)
from repro.qec import PREDEFINED_SCHEMES

WORKLOAD = LogicalCounts(
    num_qubits=50, t_count=50_000, ccz_count=10_000, measurement_count=2_000
)
MAJ = qubit_params("qubit_maj_ns_e4")
GATE = qubit_params("qubit_gate_ns_e3")


def request_ladder(n: int) -> list[EstimateRequest]:
    """``n`` distinct feasible points (budget ladder over two profiles)."""
    return [
        EstimateRequest(
            program=WORKLOAD,
            qubit=MAJ if i % 2 else GATE,
            budget=10.0 ** (-3 - (i % 7)),
            label=f"point-{i}",
        )
        for i in range(n)
    ]


def kernel_stats(cache: EstimateCache) -> dict[str, int]:
    return cache.stats()["kernel"]


class TestBackendDispatch:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            estimate_batch(request_ladder(1), backend="turbo")

    def test_backend_choices_exported(self):
        assert BACKEND_CHOICES == ("auto", "scalar", "vectorized")

    def test_auto_small_batch_runs_scalar(self):
        cache = EstimateCache()
        n = AUTO_BATCH_THRESHOLD - 1
        outcomes = estimate_batch(request_ladder(n), cache=cache, backend="auto")
        assert all(o.ok for o in outcomes)
        assert kernel_stats(cache) == {
            "vectorized": 0,
            "scalarFallback": 0,
            "scalar": n,
        }

    def test_auto_large_batch_runs_vectorized(self):
        cache = EstimateCache()
        n = AUTO_BATCH_THRESHOLD
        outcomes = estimate_batch(request_ladder(n), cache=cache, backend="auto")
        assert all(o.ok for o in outcomes)
        stats = kernel_stats(cache)
        assert stats["scalar"] == 0
        assert stats["vectorized"] + stats["scalarFallback"] == n

    def test_explicit_vectorized_ignores_threshold(self):
        cache = EstimateCache()
        outcomes = estimate_batch(
            request_ladder(2), cache=cache, backend="vectorized"
        )
        assert all(o.ok for o in outcomes)
        assert kernel_stats(cache)["vectorized"] == 2

    def test_explicit_scalar_ignores_threshold(self):
        cache = EstimateCache()
        n = AUTO_BATCH_THRESHOLD + 8
        estimate_batch(request_ladder(n), cache=cache, backend="scalar")
        assert kernel_stats(cache) == {
            "vectorized": 0,
            "scalarFallback": 0,
            "scalar": n,
        }

    def test_counter_accumulates_across_batches(self):
        cache = EstimateCache()
        estimate_batch(request_ladder(3), cache=cache, backend="vectorized")
        estimate_batch(request_ladder(2), cache=cache, backend="scalar")
        stats = kernel_stats(cache)
        assert stats["vectorized"] == 3
        assert stats["scalar"] == 2


class TestMissingNumpy:
    """`from . import kernel` failing must degrade exactly one way."""

    @pytest.fixture(autouse=True)
    def hide_kernel_module(self, monkeypatch):
        # A previously-imported kernel would satisfy `from . import
        # kernel` via the package attribute; drop both lookup paths.
        import repro.estimator as estimator_pkg

        monkeypatch.delattr(estimator_pkg, "kernel", raising=False)
        monkeypatch.setitem(sys.modules, "repro.estimator.kernel", None)

    def test_auto_falls_back_to_scalar(self):
        cache = EstimateCache()
        n = AUTO_BATCH_THRESHOLD
        outcomes = estimate_batch(request_ladder(n), cache=cache, backend="auto")
        assert all(o.ok for o in outcomes)
        assert kernel_stats(cache)["scalar"] == n

    def test_explicit_vectorized_raises(self):
        with pytest.raises(RuntimeError, match="requires numpy"):
            estimate_batch(request_ladder(1), backend="vectorized")


class TestDistanceTable:
    @pytest.mark.parametrize("name", sorted(PREDEFINED_SCHEMES))
    def test_matches_point_queries_and_decreases(self, name):
        scheme = PREDEFINED_SCHEMES[name]
        for qubit in (MAJ, GATE):
            table = scheme.distance_table(qubit)
            distances = [d for d, _ in table]
            assert distances == list(
                range(1, scheme.max_code_distance + 1, 2)
            )
            for d, rate in table:
                assert rate == scheme.logical_error_rate(qubit, d)
            rates = [rate for _, rate in table]
            assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestBitForBitSpotChecks:
    """Fixed mixed batches: results, errors, and order match the scalar path.

    (The randomized version of this invariant is the hypothesis suite in
    ``test_invariants.py``; these are the deliberate corner points.)
    """

    def mixed_requests(self) -> list[EstimateRequest]:
        return [
            # Plain feasible point.
            EstimateRequest(program=WORKLOAD, qubit=MAJ, budget=1e-4),
            # Budget so tight no factory reaches it -> EstimationError.
            EstimateRequest(program=WORKLOAD, qubit=GATE, budget=1e-25),
            # Capped factory copies (exercises the capped-copies branch).
            EstimateRequest(
                program=WORKLOAD,
                qubit=MAJ,
                budget=1e-4,
                constraints=Constraints(max_t_factories=1),
            ),
            # Constraint violations -> exact error strings must match.
            EstimateRequest(
                program=WORKLOAD,
                qubit=GATE,
                budget=1e-4,
                constraints=Constraints(max_physical_qubits=10),
            ),
            EstimateRequest(
                program=WORKLOAD,
                qubit=GATE,
                budget=1e-4,
                constraints=Constraints(max_duration_ns=1.0),
            ),
            # Depth stretch via the slowdown factor.
            EstimateRequest(
                program=WORKLOAD,
                qubit=MAJ,
                budget=1e-3,
                constraints=Constraints(logical_depth_factor=64.0),
            ),
        ]

    def test_scalar_and_vectorized_agree(self):
        scalar = estimate_batch(
            self.mixed_requests(), cache=EstimateCache(), backend="scalar"
        )
        vectorized = estimate_batch(
            self.mixed_requests(), cache=EstimateCache(), backend="vectorized"
        )
        assert len(scalar) == len(vectorized)
        for s, v in zip(scalar, vectorized):
            assert s.ok == v.ok
            assert s.error == v.error
            if s.ok:
                assert s.result.to_dict() == v.result.to_dict()

    def test_fallback_points_are_counted(self):
        cache = EstimateCache()
        estimate_batch(
            self.mixed_requests(), cache=cache, backend="vectorized"
        )
        stats = kernel_stats(cache)
        assert stats["vectorized"] + stats["scalarFallback"] == 6
        # The infeasible-factory point at least is replayed scalar-side.
        assert stats["scalarFallback"] >= 1
