"""Unit and property tests for the formula engine."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.formulas import (
    Formula,
    FormulaError,
    FormulaEvalError,
    FormulaParseError,
    parse,
    tokenize,
)


class TestTokenizer:
    def test_numbers_identifiers_operators(self):
        toks = tokenize("2 * codeDistance^2")
        assert [t.kind for t in toks] == ["NUMBER", "OP", "IDENT", "OP", "NUMBER"]

    def test_scientific_notation(self):
        assert tokenize("1e-4")[0].text == "1e-4"
        assert tokenize("2.5E+10")[0].text == "2.5E+10"
        assert tokenize(".5")[0].text == ".5"

    def test_rejects_unknown_characters(self):
        with pytest.raises(FormulaParseError, match="unexpected character"):
            tokenize("a @ b")

    def test_whitespace_skipped(self):
        assert len(tokenize("  1   +\t2 \n")) == 3


class TestParser:
    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("1 + 2 * 3", {}, 7),
            ("(1 + 2) * 3", {}, 9),
            ("2^3^2", {}, 512),  # right-associative
            ("-2^2", {}, -4),  # unary binds looser than power
            ("10 - 3 - 2", {}, 5),  # left-associative
            ("8 / 4 / 2", {}, 1),
            ("x + y", {"x": 2, "y": 40}, 42),
            ("log2(8)", {}, 3),
            ("sqrt(x)", {"x": 9}, 3),
            ("max(2, 3, 1)", {}, 3),
            ("ceil(2.1)", {}, 3),
            ("floor(2.9)", {}, 2),
            ("min(4, x)", {"x": 2}, 2),
            ("--3", {}, 3),
            ("+5", {}, 5),
        ],
    )
    def test_evaluation(self, text, env, expected):
        assert parse(text).evaluate(env) == expected

    def test_empty_formula_rejected(self):
        with pytest.raises(FormulaParseError, match="empty"):
            parse("")

    def test_trailing_input_rejected(self):
        with pytest.raises(FormulaParseError, match="trailing"):
            parse("1 + 2 3")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(FormulaParseError):
            parse("(1 + 2")

    def test_missing_operand_rejected(self):
        with pytest.raises(FormulaParseError):
            parse("1 +")

    def test_unknown_function_fails_at_eval(self):
        with pytest.raises(FormulaError, match="unknown function"):
            parse("frobnicate(2)").evaluate({})

    def test_unbound_variable_reports_bound_names(self):
        with pytest.raises(FormulaError, match="unbound variable 'x'"):
            parse("x + y").evaluate({"y": 1})

    def test_division_by_zero(self):
        with pytest.raises(FormulaError, match="division by zero"):
            parse("1 / x").evaluate({"x": 0})

    def test_variables_collected(self):
        node = parse("a * log2(b + c) - a")
        assert node.variables() == {"a", "b", "c"}


class TestFormula:
    def test_from_string(self):
        f = Formula("2 * d^2")
        assert f(d=5) == 50
        assert f.free_variables == {"d"}
        assert "2 * d^2" in repr(f)

    def test_from_number_is_constant(self):
        assert Formula(42)() == 42
        assert Formula(2.5)() == 2.5
        assert Formula(7).free_variables == frozenset()

    def test_copy_constructor(self):
        f = Formula("x + 1")
        g = Formula(f)
        assert g(x=1) == 2
        assert f == g

    def test_rejects_bool_and_other_types(self):
        with pytest.raises(TypeError):
            Formula(True)
        with pytest.raises(TypeError):
            Formula([1, 2])  # type: ignore[arg-type]

    def test_env_and_kwargs_merge(self):
        f = Formula("x + y")
        assert f({"x": 1}, y=2) == 3
        assert f({"x": 1, "y": 5}, y=2) == 3  # kwargs win

    def test_evaluate_positive_guards(self):
        f = Formula("x - 5")
        assert f.evaluate_positive(x=6) == 1
        with pytest.raises(FormulaEvalError, match="non-positive"):
            f.evaluate_positive(x=5)

    def test_equality_and_hash(self):
        assert Formula("1+2") == Formula("1 + 2")
        assert hash(Formula("1+2")) == hash(Formula("1 + 2"))
        assert Formula("x") != Formula("y")

    def test_azure_style_formulas(self):
        cycle = Formula(
            "(4 * twoQubitGateTime + 2 * oneQubitMeasurementTime) * codeDistance"
        )
        assert cycle(twoQubitGateTime=50, oneQubitMeasurementTime=100, codeDistance=9) == 3600
        qubits = Formula("4 * codeDistance^2 + 8 * (codeDistance - 1)")
        assert qubits(codeDistance=5) == 132


@given(st.integers(-1000, 1000), st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_property_precedence_matches_python(a, b, c):
    """a + b * c and (a + b) * c must agree with Python's arithmetic."""
    assert parse("a + b * c").evaluate({"a": a, "b": b, "c": c}) == a + b * c
    assert parse("(a + b) * c").evaluate({"a": a, "b": b, "c": c}) == (a + b) * c


@given(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
)
def test_property_division_multiplication_roundtrip(x, y):
    got = parse("x / y * y").evaluate({"x": x, "y": y})
    assert got == pytest.approx(x, rel=1e-9)


@given(st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
def test_property_log2_matches_math(x):
    assert parse("log2(x)").evaluate({"x": x}) == pytest.approx(math.log2(x))


@given(st.integers(0, 50))
def test_property_number_literal_roundtrip(n):
    assert parse(str(n)).evaluate({}) == n
