"""Persistence for experiment results: CSV and JSON writers/readers.

Figure sweeps take seconds to minutes; pipelines that post-process them
(plotting, regression tracking) should not re-run estimation. These
helpers round-trip :class:`~repro.experiments.runner.EstimateRow` tables
through plain CSV/JSON so results can be archived next to the paper data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence

from .runner import EstimateRow

#: Column order of the CSV format (stable, append-only).
CSV_FIELDS: tuple[str, ...] = (
    "algorithm",
    "bits",
    "profile",
    "physical_qubits",
    "runtime_seconds",
    "code_distance",
    "logical_qubits",
    "logical_depth",
    "num_t_states",
    "t_factory_copies",
    "rqops",
)

_INT_FIELDS = {
    "bits",
    "physical_qubits",
    "code_distance",
    "logical_qubits",
    "logical_depth",
    "num_t_states",
    "t_factory_copies",
}
_FLOAT_FIELDS = {"runtime_seconds", "rqops"}


def write_rows_csv(rows: Iterable[EstimateRow], path: str | Path) -> Path:
    """Write estimate rows as CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for row in rows:
            writer.writerow([getattr(row, field) for field in CSV_FIELDS])
    return path


def read_rows_csv(path: str | Path) -> list[EstimateRow]:
    """Read estimate rows written by :func:`write_rows_csv`."""
    path = Path(path)
    rows: list[EstimateRow] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"CSV {path} is missing columns: {sorted(missing)}")
        for record in reader:
            kwargs: dict[str, object] = {}
            for field in CSV_FIELDS:
                value: object = record[field]
                if field in _INT_FIELDS:
                    value = int(value)  # type: ignore[arg-type]
                elif field in _FLOAT_FIELDS:
                    value = float(value)  # type: ignore[arg-type]
                kwargs[field] = value
            rows.append(EstimateRow(**kwargs))  # type: ignore[arg-type]
    return rows


def write_rows_json(rows: Sequence[EstimateRow], path: str | Path) -> Path:
    """Write estimate rows as a JSON array of the tool-style dicts."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([row.to_dict() for row in rows], indent=2) + "\n")
    return path


def regenerate_all(directory: str | Path) -> dict[str, Path]:
    """Run every experiment and archive its data under ``directory``.

    Produces ``fig3.csv``/``fig3.json``, ``fig4.csv``/``fig4.json``, and
    ``claims.json``; returns the written paths by artifact name.
    """
    from .claims import evaluate_claims
    from .fig3 import run_fig3
    from .fig4 import run_fig4

    directory = Path(directory)
    fig3 = run_fig3()
    fig4 = run_fig4()
    claims = evaluate_claims()
    written = {
        "fig3.csv": write_rows_csv(fig3, directory / "fig3.csv"),
        "fig3.json": write_rows_json(fig3, directory / "fig3.json"),
        "fig4.csv": write_rows_csv(fig4, directory / "fig4.csv"),
        "fig4.json": write_rows_json(fig4, directory / "fig4.json"),
    }
    claims_path = directory / "claims.json"
    claims_path.write_text(
        json.dumps([c.to_dict() for c in claims], indent=2) + "\n"
    )
    written["claims.json"] = claims_path
    return written
