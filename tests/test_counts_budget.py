"""Tests for LogicalCounts and the error-budget partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import ErrorBudget, LogicalCounts
from repro.budget import ErrorBudgetPartition


class TestLogicalCounts:
    def test_basic_construction(self):
        c = LogicalCounts(num_qubits=10, t_count=5, ccz_count=3)
        assert c.num_qubits == 10
        assert c.non_clifford_count == 8

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError, match="at least one"):
            LogicalCounts(num_qubits=0)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            LogicalCounts(num_qubits=1, t_count=-1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            LogicalCounts(num_qubits=1, t_count=1.5)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            LogicalCounts(num_qubits=True)  # type: ignore[arg-type]

    def test_rotation_depth_consistency(self):
        with pytest.raises(ValueError, match="rotation_depth"):
            LogicalCounts(num_qubits=1, rotation_count=1, rotation_depth=2)
        with pytest.raises(ValueError, match="rotation_depth >= 1"):
            LogicalCounts(num_qubits=1, rotation_count=1, rotation_depth=0)

    def test_add_sequential_composition(self):
        a = LogicalCounts(num_qubits=5, t_count=1, rotation_count=2, rotation_depth=2)
        b = LogicalCounts(num_qubits=9, ccz_count=4, measurement_count=1)
        c = a.add(b)
        assert c.num_qubits == 9  # width is max, not sum
        assert c.t_count == 1
        assert c.ccz_count == 4
        assert c.rotation_depth == 2

    def test_scaled_repetitions(self):
        a = LogicalCounts(num_qubits=3, t_count=2, measurement_count=1)
        b = a.scaled(10)
        assert b.t_count == 20
        assert b.measurement_count == 10
        assert b.num_qubits == 3
        with pytest.raises(ValueError):
            a.scaled(0)

    def test_dict_roundtrip(self):
        a = LogicalCounts(num_qubits=7, ccix_count=11, measurement_count=2)
        assert LogicalCounts.from_dict(a.to_dict()) == a

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            LogicalCounts.from_dict({"num_qubits": 1, "bogus": 2})


@given(
    q1=st.integers(1, 100),
    q2=st.integers(1, 100),
    t1=st.integers(0, 1000),
    t2=st.integers(0, 1000),
    reps=st.integers(1, 20),
)
def test_property_add_and_scale_consistency(q1, q2, t1, t2, reps):
    a = LogicalCounts(num_qubits=q1, t_count=t1)
    b = LogicalCounts(num_qubits=q2, t_count=t2)
    assert a.add(b).t_count == t1 + t2
    assert a.add(b).num_qubits == max(q1, q2)
    # scaling = repeated addition
    repeated = a
    for _ in range(reps - 1):
        repeated = repeated.add(a)
    assert repeated == a.scaled(reps)


class TestErrorBudget:
    def test_default_split_is_thirds(self):
        p = ErrorBudget(total=3e-3).partition(has_rotations=True, has_t_states=True)
        assert p.logical == pytest.approx(1e-3)
        assert p.t_states == pytest.approx(1e-3)
        assert p.rotations == pytest.approx(1e-3)

    def test_no_rotations_redistributes(self):
        p = ErrorBudget(total=1e-3).partition(has_rotations=False, has_t_states=True)
        assert p.rotations == 0.0
        assert p.logical == pytest.approx(5e-4)
        assert p.t_states == pytest.approx(5e-4)

    def test_clifford_only_program_gets_all_logical(self):
        p = ErrorBudget(total=1e-3).partition(has_rotations=False, has_t_states=False)
        assert p.logical == pytest.approx(1e-3)
        assert p.t_states == 0.0

    def test_explicit_partition_pins_values(self):
        b = ErrorBudget.explicit(logical=1e-4, t_states=2e-4, rotations=3e-4)
        p = b.partition(has_rotations=True, has_t_states=True)
        assert (p.logical, p.t_states, p.rotations) == (1e-4, 2e-4, 3e-4)
        assert b.total == pytest.approx(6e-4)
        # explicit partition is used even for feature-less programs
        p2 = b.partition(has_rotations=False, has_t_states=False)
        assert p2 == p

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_out_of_range_total(self, bad):
        with pytest.raises(ValueError):
            ErrorBudget(total=bad)

    def test_partition_validation(self):
        with pytest.raises(ValueError, match="logical"):
            ErrorBudgetPartition(logical=0.0, t_states=0.1, rotations=0.1)
        with pytest.raises(ValueError, match="total"):
            ErrorBudgetPartition(logical=0.5, t_states=0.4, rotations=0.2)

    @given(st.floats(min_value=1e-10, max_value=0.5, allow_nan=False))
    def test_property_partition_sums_to_total(self, total):
        for has_rot, has_t in [(True, True), (False, True), (False, False)]:
            p = ErrorBudget(total=total).partition(
                has_rotations=has_rot, has_t_states=has_t
            )
            assert p.total == pytest.approx(total)
