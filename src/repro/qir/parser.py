"""Parser for the textual QIR dialect.

Handles the base-profile shape of QIR programs: a module of LLVM IR where
quantum operations appear as calls to ``__quantum__qis__<gate>__body`` /
``__quantum__qis__<gate>__adj`` intrinsics on ``%Qubit*`` SSA values, and
qubit lifetimes as ``__quantum__rt__qubit_allocate`` / ``release`` calls.
Only the instructions the resource estimator counts are interpreted;
classical LLVM instructions other than ``ret``/``br``/labels are rejected
so silent under-counting cannot happen.

Both dynamically allocated qubits (SSA names from ``qubit_allocate``) and
the static base-profile style (``inttoptr``-style literals such as
``%Qubit* null`` / ``%Qubit* inttoptr (i64 3 to %Qubit*)``) are accepted.
"""

from __future__ import annotations

import re

from ..ir import Circuit, CircuitBuilder

_ALLOC_RE = re.compile(
    r"^(?P<name>%[\w.]+)\s*=\s*call\s+%Qubit\*\s+@__quantum__rt__qubit_allocate\(\)\s*$"
)
_RELEASE_RE = re.compile(
    r"^call\s+void\s+@__quantum__rt__qubit_release\(%Qubit\*\s+(?P<arg>.+?)\)\s*$"
)
_GATE_RE = re.compile(
    r"^(?:(?P<result>%[\w.]+)\s*=\s*)?call\s+(?:void|%Result\*)\s+"
    r"@__quantum__qis__(?P<gate>\w+?)__(?P<variant>body|adj)\((?P<args>.*)\)\s*$"
)
_QUBIT_ARG_RE = re.compile(
    r"%Qubit\*\s+(?:(?P<ssa>%[\w.]+)|(?P<null>null)|"
    r"inttoptr\s*\(\s*i64\s+(?P<lit>\d+)\s+to\s+%Qubit\*\s*\))"
)
_DOUBLE_ARG_RE = re.compile(r"double\s+(?P<value>[-+0-9.eE]+)")

#: Lines safely ignored: module/function scaffolding and classical noise
#: explicitly allowed by the base profile.
_IGNORABLE_RE = re.compile(
    r"^($|;|declare\b|define\b|}|entry:|\w+:|ret\s|br\s|attributes\b|source_filename\b|"
    r"target\s|!|%Result\b)"
)
_RESULT_RE = re.compile(
    r"^(?:%[\w.]+\s*=\s*)?call\s+[^@]*@__quantum__rt__(?:result|array|tuple|string|message|read_result)\w*\("
)


class QIRParseError(ValueError):
    """Raised for QIR text the estimator front end cannot interpret."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


#: gate name -> (builder method, qubit arity, double arity)
_GATE_TABLE: dict[str, tuple[str, int, int]] = {
    "x": ("x", 1, 0),
    "y": ("y", 1, 0),
    "z": ("z", 1, 0),
    "h": ("h", 1, 0),
    "s": ("s", 1, 0),
    "t": ("t", 1, 0),
    "rx": ("rx", 1, 1),
    "ry": ("ry", 1, 1),
    "rz": ("rz", 1, 1),
    "cnot": ("cx", 2, 0),
    "cx": ("cx", 2, 0),
    "cz": ("cz", 2, 0),
    "swap": ("swap", 2, 0),
    "ccx": ("ccx", 3, 0),
    "toffoli": ("ccx", 3, 0),
    "ccz": ("ccz", 3, 0),
    "ccix": ("ccix", 3, 0),
    "m": ("measure", 1, 0),
    "mz": ("measure", 1, 0),
    "measure": ("measure", 1, 0),
    "reset": ("reset", 1, 0),
}

#: Gates whose __adj variant differs from __body.
_ADJOINTABLE = {"s": "s_adj", "t": "t_adj"}


class _QubitTable:
    """Maps QIR qubit operands (SSA names or static literals) to builder ids."""

    def __init__(self, builder: CircuitBuilder) -> None:
        self._builder = builder
        self._by_name: dict[str, int] = {}
        self._by_literal: dict[int, int] = {}

    def allocate(self, name: str, line: int) -> None:
        if name in self._by_name:
            raise QIRParseError(f"SSA name {name} assigned twice", line)
        self._by_name[name] = self._builder.allocate()

    def release(self, operand_match: re.Match[str], line: int) -> None:
        qubit = self.resolve(operand_match, line)
        name = operand_match.group("ssa")
        self._builder.release(qubit)
        if name is not None:
            del self._by_name[name]

    def resolve(self, match: re.Match[str], line: int) -> int:
        ssa = match.group("ssa")
        if ssa is not None:
            try:
                return self._by_name[ssa]
            except KeyError:
                raise QIRParseError(f"use of unallocated qubit {ssa}", line) from None
        literal = 0 if match.group("null") is not None else int(match.group("lit"))
        # Static qubits (base profile) are live for the whole program.
        if literal not in self._by_literal:
            self._by_literal[literal] = self._builder.allocate()
        return self._by_literal[literal]


def parse_qir(text: str, name: str = "qir-program") -> Circuit:
    """Parse QIR text into an IR :class:`~repro.ir.Circuit`.

    Raises :class:`QIRParseError` on any instruction the estimator cannot
    account for (silent skipping would corrupt the counts).
    """
    builder = CircuitBuilder(name)
    qubits = _QubitTable(builder)

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if _IGNORABLE_RE.match(line) or _RESULT_RE.match(line):
            continue

        if m := _ALLOC_RE.match(line):
            qubits.allocate(m.group("name"), line_number)
            continue

        if m := _RELEASE_RE.match(line):
            arg = _QUBIT_ARG_RE.match("%Qubit* " + m.group("arg"))
            if arg is None:
                raise QIRParseError(f"cannot parse release operand {m.group('arg')!r}", line_number)
            qubits.release(arg, line_number)
            continue

        if m := _GATE_RE.match(line):
            _apply_gate(builder, qubits, m, line_number)
            continue

        raise QIRParseError(f"unsupported instruction {line!r}", line_number)

    return builder.finish()


def _apply_gate(
    builder: CircuitBuilder,
    qubits: _QubitTable,
    match: re.Match[str],
    line: int,
) -> None:
    gate = match.group("gate").lower()
    variant = match.group("variant")
    entry = _GATE_TABLE.get(gate)
    if entry is None:
        raise QIRParseError(
            f"unknown quantum intrinsic __quantum__qis__{gate}__{variant}", line
        )
    method_name, qubit_arity, double_arity = entry
    if variant == "adj":
        if gate in _ADJOINTABLE:
            method_name = _ADJOINTABLE[gate]
        elif double_arity == 1:
            pass  # rotations: adjoint negates the angle below
        elif gate not in ("x", "y", "z", "h", "cnot", "cx", "cz", "swap", "ccx", "ccz", "toffoli"):
            raise QIRParseError(f"no adjoint defined for {gate}", line)

    args = match.group("args")
    qubit_args = [qubits.resolve(m, line) for m in _QUBIT_ARG_RE.finditer(args)]
    double_args = [float(m.group("value")) for m in _DOUBLE_ARG_RE.finditer(args)]
    if len(qubit_args) != qubit_arity:
        raise QIRParseError(
            f"{gate} expects {qubit_arity} qubit argument(s), got {len(qubit_args)}",
            line,
        )
    if len(double_args) != double_arity:
        raise QIRParseError(
            f"{gate} expects {double_arity} double argument(s), got {len(double_args)}",
            line,
        )

    method = getattr(builder, method_name)
    if double_arity == 1:
        angle = double_args[0]
        if variant == "adj":
            angle = -angle
        method(angle, *qubit_args)
    else:
        method(*qubit_args)
