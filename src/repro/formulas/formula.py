"""User-facing ``Formula`` wrapper: parse once, evaluate many times.

A ``Formula`` may be constructed from a string, a number (constant
formula), or another ``Formula`` (copy). It reports its free variables so
model code can validate a custom scheme up front instead of failing deep
inside an estimation run.
"""

from __future__ import annotations

from typing import Mapping, Union

from .ast import FormulaError, FormulaNode, Number
from .parser import parse

FormulaLike = Union[str, int, float, "Formula"]


class FormulaEvalError(FormulaError):
    """Raised when a formula evaluates to an invalid value for its use."""


class Formula:
    """A compiled arithmetic formula over named variables.

    Parameters
    ----------
    source:
        Formula string (e.g. ``"2 * codeDistance^2"``), a plain number for
        a constant formula, or an existing :class:`Formula` to copy.

    Examples
    --------
    >>> Formula("2 * d^2")(d=5)
    50
    >>> Formula(42.0)()
    42.0
    """

    __slots__ = ("_node", "_source", "_vars")

    def __init__(self, source: FormulaLike) -> None:
        if isinstance(source, Formula):
            self._node: FormulaNode = source._node
            self._source: str = source._source
        elif isinstance(source, (int, float)) and not isinstance(source, bool):
            self._node = Number(source)
            self._source = repr(source)
        elif isinstance(source, str):
            self._node = parse(source)
            self._source = source
        else:
            raise TypeError(
                f"Formula source must be str, number, or Formula, got {type(source).__name__}"
            )
        self._vars = self._node.variables()

    @property
    def source(self) -> str:
        """The original formula text."""
        return self._source

    @property
    def free_variables(self) -> frozenset[str]:
        """Names that must be bound when evaluating."""
        return self._vars

    def evaluate(self, env: Mapping[str, float] | None = None, /, **kwargs: float) -> float:
        """Evaluate with variables from ``env`` and/or keyword arguments."""
        merged: dict[str, float] = dict(env) if env else {}
        merged.update(kwargs)
        return self._node.evaluate(merged)

    __call__ = evaluate

    def evaluate_positive(
        self, env: Mapping[str, float] | None = None, /, **kwargs: float
    ) -> float:
        """Evaluate and require a strictly positive result.

        Model quantities (durations, qubit counts) must be positive; a
        custom formula producing zero or a negative value is a user error
        we want to surface with context.
        """
        value = self.evaluate(env, **kwargs)
        if not value > 0:
            raise FormulaEvalError(
                f"formula {self._source!r} evaluated to non-positive value {value!r}"
            )
        return value

    def __repr__(self) -> str:
        return f"Formula({self._source!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Formula):
            return self._node == other._node
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._node)
