"""The end-to-end estimation algorithm (paper Sec. III-A through III-E).

Steps, in the paper's order:

A. *Pre-layout estimation* — obtain :class:`LogicalCounts` (done by the
   tracer or given directly by the user).
B. *Algorithmic logical estimation* — planar-ISA layout: post-layout
   logical qubits, algorithmic depth, T-state count
   (:mod:`repro.layout`).
C. *Error correction* — pick the code distance from the logical error
   budget, derive cycle time and physical qubits per logical qubit.
D. *T factories* — design the cheapest factory meeting the distillation
   budget, decide copies/runs, apply T-factory constraints. Because
   slowing the program to fit factories changes the cycle count, which
   changes the required per-cycle error rate and possibly the distance,
   steps C and D iterate to a fixed point.
E. *rQOPS* — combine logical qubits with the logical clock rate.
"""

from __future__ import annotations

import math

from ..budget import ErrorBudget
from ..counts import LogicalCounts
from ..distillation import TFactoryDesigner, TFactoryError
from ..layout import layout_resources
from ..qec import LogicalQubit, QECScheme, default_scheme_for
from ..qubits import PhysicalQubitParams
from ..synthesis import RotationSynthesis
from .constraints import Constraints
from .result import (
    PhysicalCounts,
    PhysicalResourceEstimates,
    ResourceBreakdown,
    TFactoryUsage,
)

_ASSUMPTIONS: tuple[str, ...] = (
    "Logical qubits are laid out on a 2D nearest-neighbor grid with "
    "interleaved auxiliary rows for multi-qubit Pauli measurements "
    "(Q_alg = 2Q + ceil(sqrt(8Q)) + 1); program connectivity is not analyzed.",
    "Logical error rate per qubit per cycle follows "
    "a * (p / p_threshold)^((d+1)/2).",
    "Arbitrary rotations are synthesized into Clifford+T with "
    "ceil(0.53 log2(R/eps) + 5.3) T states per rotation.",
    "Each CCZ/CCiX gate takes 3 logical cycles and consumes 4 T states.",
    "T factories run in parallel with the algorithm and are "
    "over-provisioned per round to absorb distillation failures.",
    "Uniform physical error rates; no correlated noise, leakage, or "
    "qubit loss are modeled.",
)


class EstimationError(RuntimeError):
    """Raised when no feasible estimate exists for the given inputs."""


#: Shared default designer so parameter sweeps reuse its factory catalog.
_DEFAULT_DESIGNER = TFactoryDesigner()


def _resolve_counts(program: object) -> LogicalCounts:
    """Accept LogicalCounts or anything exposing ``logical_counts()``."""
    if isinstance(program, LogicalCounts):
        return program
    counts_method = getattr(program, "logical_counts", None)
    if callable(counts_method):
        counts = counts_method()
        if isinstance(counts, LogicalCounts):
            return counts
    raise TypeError(
        "program must be LogicalCounts or provide a logical_counts() method "
        f"returning LogicalCounts; got {type(program).__name__}"
    )


def estimate(
    program: object,
    qubit: PhysicalQubitParams,
    *,
    scheme: QECScheme | None = None,
    budget: ErrorBudget | float = 1e-3,
    constraints: Constraints | None = None,
    synthesis: RotationSynthesis | None = None,
    factory_designer: TFactoryDesigner | None = None,
) -> PhysicalResourceEstimates:
    """Estimate physical resources for running ``program`` fault-tolerantly.

    Parameters
    ----------
    program:
        :class:`LogicalCounts` (the "known logical estimates" input path)
        or an object with a ``logical_counts()`` method (e.g. a traced
        circuit from :mod:`repro.ir`).
    qubit:
        Physical qubit parameters (see :mod:`repro.qubits`).
    scheme:
        QEC scheme; defaults to the tool's choice for the technology
        (surface code for gate-based, floquet code for Majorana).
    budget:
        Total error budget, or an :class:`ErrorBudget` for explicit
        partitioning.
    constraints:
        Optional T-factory and resource constraints.
    synthesis:
        Rotation synthesis cost model override.
    factory_designer:
        T-factory search configuration override.

    Raises
    ------
    EstimationError
        If the physical error rate is above the QEC threshold, no factory
        design meets the budget, or a resource constraint is violated.
    """
    counts = _resolve_counts(program)
    scheme = scheme or default_scheme_for(qubit)
    if isinstance(budget, (int, float)):
        budget = ErrorBudget(total=float(budget))
    constraints = constraints or Constraints()
    factory_designer = factory_designer or _DEFAULT_DESIGNER

    try:
        scheme.check_compatible(qubit)
    except Exception as exc:  # re-tag for a single caller-facing error type
        raise EstimationError(str(exc)) from exc

    # Step B: budget partition and layout.
    partition = budget.partition(
        has_rotations=counts.rotation_count > 0,
        has_t_states=counts.non_clifford_count > 0,
    )
    alg = layout_resources(counts, partition.rotations, synthesis)
    num_t_states = alg.t_states

    # Step D (factory design is independent of the code distance choice):
    factory = None
    if num_t_states > 0:
        required_t_error = partition.t_states / num_t_states
        try:
            factory = factory_designer.design(qubit, scheme, required_t_error)
        except TFactoryError as exc:
            raise EstimationError(str(exc)) from exc

    # Steps C+D fixed point: depth stretch <-> code distance.
    base_depth = math.ceil(alg.logical_depth * constraints.logical_depth_factor)
    depth = base_depth
    for _ in range(64):
        required_logical_error = partition.logical / (alg.logical_qubits * depth)
        try:
            logical_qubit = LogicalQubit.for_target_error_rate(
                scheme, qubit, required_logical_error
            )
        except Exception as exc:
            raise EstimationError(str(exc)) from exc
        cycle_ns = logical_qubit.cycle_time_ns
        runtime_ns = depth * cycle_ns

        if factory is None:
            copies = 0
            runs_per_copy = 0
            total_runs = 0
            break

        total_runs = factory.runs_required(num_t_states)
        runs_per_copy = int(runtime_ns // factory.duration_ns)
        if runs_per_copy == 0:
            # Algorithm finishes before one distillation completes: stretch
            # the program so at least one factory run fits.
            depth = math.ceil(factory.duration_ns / cycle_ns)
            continue
        copies = math.ceil(total_runs / runs_per_copy)
        if constraints.max_t_factories is not None and copies > constraints.max_t_factories:
            copies = constraints.max_t_factories
            needed_runs_per_copy = math.ceil(total_runs / copies)
            needed_depth = math.ceil(
                needed_runs_per_copy * factory.duration_ns / cycle_ns
            )
            if needed_depth > depth:
                depth = needed_depth
                continue
        break
    else:
        raise EstimationError(
            "estimation did not converge: T-factory constraints and code "
            "distance selection kept invalidating each other"
        )

    # Step E: assemble outputs.
    physical_per_logical = logical_qubit.physical_qubits
    qubits_algorithm = alg.logical_qubits * physical_per_logical
    qubits_factories = copies * factory.physical_qubits if factory else 0
    total_qubits = qubits_algorithm + qubits_factories
    rqops = alg.logical_qubits * logical_qubit.logical_cycles_per_second

    if constraints.max_duration_ns is not None and runtime_ns > constraints.max_duration_ns:
        raise EstimationError(
            f"estimated runtime {runtime_ns:.3g} ns exceeds the constraint "
            f"{constraints.max_duration_ns:.3g} ns"
        )
    if (
        constraints.max_physical_qubits is not None
        and total_qubits > constraints.max_physical_qubits
    ):
        raise EstimationError(
            f"estimated {total_qubits} physical qubits exceed the constraint "
            f"{constraints.max_physical_qubits}"
        )

    t_factory_usage = None
    if factory is not None:
        t_factory_usage = TFactoryUsage(
            factory=factory,
            copies=copies,
            total_runs=total_runs,
            runs_per_copy=runs_per_copy,
            physical_qubits=qubits_factories,
            required_output_error_rate=partition.t_states / num_t_states,
        )

    return PhysicalResourceEstimates(
        physical_counts=PhysicalCounts(
            physical_qubits=total_qubits, runtime_ns=runtime_ns, rqops=rqops
        ),
        breakdown=ResourceBreakdown(
            algorithmic_logical_qubits=alg.logical_qubits,
            algorithmic_logical_depth=alg.logical_depth,
            logical_depth=depth,
            num_t_states=num_t_states,
            clock_frequency_hz=logical_qubit.logical_cycles_per_second,
            physical_qubits_for_algorithm=qubits_algorithm,
            physical_qubits_for_t_factories=qubits_factories,
            required_logical_error_rate=partition.logical
            / (alg.logical_qubits * depth),
        ),
        logical_qubit=logical_qubit,
        t_factory=t_factory_usage,
        algorithmic_resources=alg,
        error_budget=partition,
        qubit_params=qubit,
        assumptions=_ASSUMPTIONS,
    )
