"""Vectorized struct-of-arrays batch kernel for dense sweeps.

The staged pipeline (:mod:`repro.estimator.stages`) walks one point at a
time through scalar Python arithmetic. Dense sweeps — thousands of
near-identical points over (profile x scheme x budget x size) grids —
spend almost all of that time on work that is either identical across
points or expressible as one array operation:

* **Code-distance selection** (stage C): the logical error rate
  ``a (p/p*)^((d+1)/2)`` is monotone decreasing in the distance, so the
  required-error -> distance lookup collapses into one
  :func:`numpy.searchsorted` against a per-(scheme, qubit) table of
  scalar-computed rates (:meth:`QECScheme.distance_table`). Derived
  per-distance attributes (cycle time, footprint) are tabulated once per
  batch instead of re-evaluating the scheme formulas per point.
* **T-factory design** (stage D): the designer's per-(qubit, scheme)
  catalog is sorted once by the scalar tie-break key ``(physical_qubits,
  duration_ns, catalog index)``; the running minimum of output error
  rates along that order is non-increasing, so "first feasible candidate
  in preference order" — provably the same factory the linear scan in
  :meth:`TFactoryDesigner.design` keeps — is again one ``searchsorted``.
* **The C<->D fixed point** (the genuinely iterative part): each sweep of
  the loop runs as array ops over the *not-yet-converged* subset (masked
  convergence). The depth only ever grows, so points leave the active set
  monotonically; most converge within one or two iterations.

Bit-for-bit equality with the scalar path is the invariant, not a
best-effort goal. Everything here sticks to IEEE-754 basic operations
(add, subtract, multiply, divide, compare, ``sqrt``, ``fmod``, ``floor``,
``ceil``), which NumPy and CPython evaluate identically; transcendental
steps (``log2`` in rotation synthesis, ``pow`` in the error model, the
formula-driven cycle times) are computed by the *scalar* code once per
unique input and broadcast. Python's exact big-int semantics are
preserved by magnitude guards: any point whose intermediate quantities
could leave the 2**53 exact-float range is routed to the scalar path.
The same per-point fallback covers every input the kernel does not model
(physical error rates at/above threshold, infeasible distances or
factories — whose error messages come from the scalar code and must
match verbatim), so a batch evaluated through this kernel can never fail
where the scalar engine succeeded.

This is the only module in the package that imports :mod:`numpy`;
callers reach it through ``estimate_batch(..., backend=...)``, which
falls back to the scalar engine when numpy is unavailable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..budget import ErrorBudgetPartition
from ..counts import LogicalCounts
from ..layout import AlgorithmicLogicalResources, logical_qubits_after_layout
from ..qec import LogicalQubit, QECScheme
from ..qubits import PhysicalQubitParams
from ..synthesis import RotationSynthesis
from .batch import BatchOutcome, EstimateCache, EstimateRequest, _run_request
from .result import (
    PhysicalCounts,
    PhysicalResourceEstimates,
    ResourceBreakdown,
    TFactoryUsage,
)
from .stages import (
    ASSUMPTIONS,
    MAX_FIXED_POINT_ITERATIONS,
    EstimationContext,
    EstimationError,
    build_context,
)

__all__ = ["run_batch_vectorized"]

#: Smallest integer magnitude at which int -> float64 conversion can
#: round. Points whose integer quantities could reach this leave
#: IEEE-exact territory and take the scalar path, which computes them
#: with Python's arbitrary-precision ints.
_EXACT_INT_LIMIT = 2**53

#: The scalar fixed point's non-convergence message, verbatim (it is a
#: constant in stages.py, so no scalar replay is needed to reproduce it).
_NON_CONVERGED = (
    "estimation did not converge: T-factory constraints and code "
    "distance selection kept invalidating each other"
)


@dataclass(eq=False)
class _Point:
    """Scalar per-point state carried from prep into assembly."""

    index: int  # position in the original request list
    ctx: EstimationContext
    partition: ErrorBudgetPartition
    counts: LogicalCounts
    logical_qubits: int
    logical_depth: int  # laid-out depth, before any stretching
    t_states: int
    t_rot: int
    base_depth: int


@dataclass(eq=False)
class _Group:
    """All prepped points sharing one (scheme, qubit) value pair."""

    scheme: QECScheme
    qubit: PhysicalQubitParams
    points: list[_Point]


def run_batch_vectorized(
    requests: "list[EstimateRequest]", cache: EstimateCache
) -> list[BatchOutcome]:
    """Evaluate a batch through the struct-of-arrays kernel.

    Outcomes are bit-for-bit identical to ``[_run_request(r, cache) for r
    in requests]`` — including the error messages of infeasible points,
    which (like every kernel-unsupported point) come from running the
    scalar path on exactly those points, and including the request-order
    propagation of input-validation errors (``ValueError``/``TypeError``),
    which the prep loop below raises at the same request the serial scalar
    walk would have reached first.
    """
    outcomes: list[BatchOutcome | None] = [None] * len(requests)
    fallback: list[int] = []
    groups: dict[tuple[QECScheme, PhysicalQubitParams], _Group] = {}

    # -- prep: scalar per-point stages A+B (cheap, exact) -----------------
    # Rotation-synthesis T counts involve log2, so they are computed by
    # the scalar model once per unique (model, rotations, budget) input
    # and broadcast.
    t_rot_memo: dict[tuple, int] = {}
    for index, request in enumerate(requests):
        counts = cache.resolve_counts(request.program, key=request.program_key)
        try:
            ctx = build_context(
                request.program,
                request.qubit,
                scheme=request.scheme,
                budget=request.budget,
                constraints=request.constraints,
                synthesis=request.synthesis,
                factory_designer=cache.designer,
                counts=counts,
            )
        except EstimationError as exc:
            outcomes[index] = BatchOutcome(
                request=request, result=None, error=str(exc)
            )
            continue
        partition = ctx.budget.partition(
            has_rotations=counts.rotation_count > 0,
            has_t_states=counts.non_clifford_count > 0,
        )
        synthesis = ctx.synthesis or RotationSynthesis()
        memo_key = (synthesis, counts.rotation_count, partition.rotations)
        t_rot = t_rot_memo.get(memo_key)
        if t_rot is None:
            # A ValueError (rotations without a rotations budget) raises
            # out of the batch here, exactly like the scalar engine.
            t_rot = synthesis.t_states_per_rotation(
                counts.rotation_count, partition.rotations
            )
            t_rot_memo[memo_key] = t_rot
        # layout_resources validates the qubit count after the synthesis
        # model runs; preserve that error order.
        logical_qubits = logical_qubits_after_layout(counts.num_qubits)

        # Depth/T-state sums stay Python ints: the scalar path computes
        # them with arbitrary precision, which float64 (or int64) columns
        # cannot match past 2**53. They are per-point O(1) either way.
        depth = (
            counts.measurement_count
            + counts.rotation_count
            + counts.t_count
            + 3 * (counts.ccz_count + counts.ccix_count)
            + t_rot * counts.rotation_depth
        )
        t_states = (
            counts.t_count
            + 4 * (counts.ccz_count + counts.ccix_count)
            + t_rot * counts.rotation_count
        )
        if depth == 0:
            depth = 1
        base_depth = math.ceil(depth * ctx.constraints.logical_depth_factor)
        if (
            base_depth >= _EXACT_INT_LIMIT
            or t_states >= _EXACT_INT_LIMIT
            or logical_qubits * base_depth >= _EXACT_INT_LIMIT
        ):
            fallback.append(index)
            continue
        point = _Point(
            index=index,
            ctx=ctx,
            partition=partition,
            counts=counts,
            logical_qubits=logical_qubits,
            logical_depth=depth,
            t_states=t_states,
            t_rot=t_rot,
            base_depth=base_depth,
        )
        key = (ctx.scheme, ctx.qubit)
        group = groups.get(key)
        if group is None:
            group = groups[key] = _Group(
                scheme=ctx.scheme, qubit=ctx.qubit, points=[]
            )
        group.points.append(point)

    # -- per-(scheme, qubit) array stages ---------------------------------
    for group in groups.values():
        fallback.extend(_run_group(group, requests, outcomes))

    # -- scalar fallback, in request order --------------------------------
    for index in sorted(fallback):
        outcomes[index] = _run_request(requests[index], cache)
    cache.record_kernel_points(
        vectorized=len(requests) - len(fallback), fallback=len(fallback)
    )
    return outcomes  # type: ignore[return-value]


def _run_group(
    group: _Group,
    requests: "list[EstimateRequest]",
    outcomes: "list[BatchOutcome | None]",
) -> list[int]:
    """Run one (scheme, qubit) group; returns request indices that need
    the scalar fallback instead of a kernel outcome."""
    scheme, qubit, points = group.scheme, group.qubit, group.points
    n = len(points)

    # Distance table: scalar-computed logical error rates per supported
    # odd distance. The searchsorted selection below needs the rates to be
    # monotone non-increasing — mathematically guaranteed below threshold
    # (the ratio is < 1), and verified here so any pathological formula
    # degrades to the scalar path instead of to a wrong distance.
    if qubit.clifford_error_rate >= scheme.error_correction_threshold:
        return [p.index for p in points]  # scalar raises per point
    table = scheme.distance_table(qubit)
    distances = [d for d, _ in table]
    rates = [rate for _, rate in table]
    if any(a < b for a, b in zip(rates, rates[1:])):
        return [p.index for p in points]
    neg_rates = np.array([-rate for rate in rates])  # non-decreasing
    cycle_tab = np.array([scheme.cycle_time_ns(qubit, d) for d in distances])
    ppl_tab = [scheme.physical_qubits(qubit, d) for d in distances]

    # Factory candidates, sorted by the designer's preference key. The
    # scalar scan keeps the first feasible candidate in (physical_qubits,
    # duration_ns, catalog index) order — its replacement test is a strict
    # ``<`` on (qubits, duration), so earlier catalog entries win ties.
    # Along this order the prefix minimum of output error rates is
    # non-increasing, which turns "first feasible" into a searchsorted.
    catalog = group.points[0].ctx.factory_designer._catalog(qubit, scheme)
    order = sorted(
        range(len(catalog)),
        key=lambda k: (catalog[k].physical_qubits, catalog[k].duration_ns, k),
    )
    err_sorted = np.array([catalog[k].output_error_rate for k in order])
    neg_prefix_min = (
        -np.minimum.accumulate(err_sorted) if order else np.empty(0)
    )  # non-decreasing
    dur_sorted = np.array([float(catalog[k].duration_ns) for k in order])
    out_sorted = np.array([float(catalog[k].output_t_states) for k in order])

    # Struct-of-arrays columns over the group's points (stage B). All
    # integer-valued columns are exact: prep guarded their magnitudes.
    nq = np.array([float(p.counts.num_qubits) for p in points])
    # Layout formula 2Q + ceil(sqrt(8Q)) + 1: sqrt is correctly rounded in
    # both numpy and math, so this matches the scalar integers exactly.
    q_col = 2.0 * nq + np.ceil(np.sqrt(8.0 * nq)) + 1.0
    logical_budget = np.array([p.partition.logical for p in points])
    t_budget = np.array([p.partition.t_states for p in points])
    nts = np.array([float(p.t_states) for p in points])
    depth = np.array([float(p.base_depth) for p in points])
    cap = np.array(
        [
            float(p.ctx.constraints.max_t_factories)
            if p.ctx.constraints.max_t_factories is not None
            else math.inf
            for p in points
        ]
    )

    alive = np.ones(n, dtype=bool)  # still owned by the kernel
    active = np.ones(n, dtype=bool)  # alive and not yet converged
    deferred: list[int] = []

    def defer(indices: np.ndarray) -> None:
        """Send the given group-local points to the scalar path."""
        for i in indices:
            deferred.append(points[i].index)
        alive[indices] = False
        active[indices] = False

    # Stage D (design): one factory per T-consuming point, chosen before
    # the fixed point (the design is independent of the code distance).
    has_factory = nts > 0.0
    req_t_err = np.zeros(n)
    np.divide(t_budget, nts, out=req_t_err, where=has_factory)
    fac_pos = np.zeros(n, dtype=np.intp)
    total_runs = np.zeros(n)
    fidx = np.nonzero(has_factory)[0]
    if fidx.size:
        # The scalar designer raises for a non-positive requirement (an
        # explicit partition can starve T states); replay those there.
        bad = req_t_err[fidx] <= 0.0
        defer(fidx[bad])
        fidx = fidx[~bad]
    if fidx.size:
        pos = np.searchsorted(neg_prefix_min, -req_t_err[fidx], side="left")
        infeasible = pos >= len(order)  # scalar raises the exact message
        defer(fidx[infeasible])
        fidx, pos = fidx[~infeasible], pos[~infeasible]
        fac_pos[fidx] = pos
        # runs_required: a ceil of an exact division (every operand is an
        # exact integer-valued float under the 2**53 prep guard).
        total_runs[fidx] = np.ceil(nts[fidx] / out_sorted[pos])

    # Stages C+D fixed point with masked convergence. One pass of this
    # loop performs exactly one scalar iteration for every active point.
    out_didx = np.zeros(n, dtype=np.intp)
    out_runtime = np.zeros(n)
    out_rpc = np.zeros(n)
    out_copies = np.zeros(n)
    for _ in range(MAX_FIXED_POINT_ITERATIONS):
        act = np.nonzero(active)[0]
        if not act.size:
            break
        qd = q_col[act] * depth[act]
        # Stretched depths are exact floats (they come from float ceils),
        # but route anything at 2**53 to the scalar big-int path anyway.
        big = qd >= float(_EXACT_INT_LIMIT)
        if big.any():
            defer(act[big])
            act, qd = act[~big], qd[~big]
            if not act.size:
                break
        required_error = logical_budget[act] / qd
        didx = np.searchsorted(neg_rates, -required_error, side="left")
        over = didx >= len(distances)
        if over.any():
            defer(act[over])  # scalar raises the exact distance message
            act, didx = act[~over], didx[~over]
            if not act.size:
                break
        cyc = cycle_tab[didx]
        runtime = depth[act] * cyc

        fmask = has_factory[act]
        # Points without a factory converge on their first pass.
        nof = act[~fmask]
        out_didx[nof] = didx[~fmask]
        out_runtime[nof] = runtime[~fmask]
        active[nof] = False

        fa = act[fmask]  # group-local indices of active factory points
        if not fa.size:
            continue
        cyc_f = cyc[fmask]
        runtime_f = runtime[fmask]
        didx_f = didx[fmask]
        dur = dur_sorted[fac_pos[fa]]
        # CPython's float floor-division, replicated op for op (operands
        # are positive): fmod, exact subtraction, divide, floor, and the
        # half-ulp correction float_divmod applies.
        mod = np.fmod(runtime_f, dur)
        div = (runtime_f - mod) / dur
        rpc = np.floor(div)
        rpc += (div - rpc) > 0.5
        # Stretch 1: algorithm finishes before one distillation run does.
        zero = rpc == 0.0
        depth[fa[zero]] = np.ceil(dur[zero] / cyc_f[zero])
        fit = ~zero
        fg = fa[fit]
        if not fg.size:
            continue
        rpc_fit = rpc[fit]
        copies = np.ceil(total_runs[fg] / rpc_fit)
        capped = copies > cap[fg]
        grow = np.zeros(fg.size, dtype=bool)
        if capped.any():
            cg = fg[capped]
            needed_rpc = np.ceil(total_runs[cg] / cap[cg])
            needed_depth = np.ceil(
                needed_rpc * dur_sorted[fac_pos[cg]] / cyc_f[fit][capped]
            )
            # Stretch 2: the capped copies need a longer runtime. A capped
            # point that already fits converges with copies == cap but
            # keeps this iteration's (uncapped) runs_per_copy, exactly as
            # the scalar solver returns it.
            g = needed_depth > depth[cg]
            depth[cg[g]] = needed_depth[g]
            grow[capped] = g
            copies[capped] = cap[fg][capped]
        done = ~grow
        dg = fg[done]
        out_didx[dg] = didx_f[fit][done]
        out_runtime[dg] = runtime_f[fit][done]
        out_rpc[dg] = rpc_fit[done]
        out_copies[dg] = copies[done]
        active[dg] = False
    else:
        # Iteration cap exhausted with points still active: the scalar
        # solver raises a constant message, captured per point.
        for i in np.nonzero(active)[0]:
            outcomes[points[i].index] = BatchOutcome(
                request=requests[points[i].index],
                result=None,
                error=_NON_CONVERGED,
            )
            alive[i] = False
            active[i] = False

    # -- stage E: assembly (plain Python, one object graph per point) -----
    lq_memo: dict[int, LogicalQubit] = {}
    for i in np.nonzero(alive & ~active)[0]:
        point = points[i]
        outcomes[point.index] = _assemble(
            point,
            requests[point.index],
            scheme,
            qubit,
            distance=distances[out_didx[i]],
            cycle_ns=float(cycle_tab[out_didx[i]]),
            physical_per_logical=ppl_tab[out_didx[i]],
            depth=int(depth[i]),
            runtime_ns=float(out_runtime[i]),
            factory=catalog[order[fac_pos[i]]] if has_factory[i] else None,
            copies=int(out_copies[i]),
            runs_per_copy=int(out_rpc[i]),
            total_runs=int(total_runs[i]),
            required_t_error=float(req_t_err[i]),
            lq_memo=lq_memo,
        )
    return deferred


def _assemble(
    point: _Point,
    request: EstimateRequest,
    scheme: QECScheme,
    qubit: PhysicalQubitParams,
    *,
    distance: int,
    cycle_ns: float,
    physical_per_logical: int,
    depth: int,
    runtime_ns: float,
    factory,
    copies: int,
    runs_per_copy: int,
    total_runs: int,
    required_t_error: float,
    lq_memo: dict[int, LogicalQubit],
) -> BatchOutcome:
    """Stage E for one point — the same object graph stage_assemble builds.

    Every numpy scalar is converted back to a Python int/float before it
    reaches a result object (np.int64 is not an ``int`` subclass, which
    would break JSON serialization and equality with scalar results).
    """
    partition = point.partition
    alg = AlgorithmicLogicalResources(
        logical_qubits=point.logical_qubits,
        logical_depth=point.logical_depth,
        t_states=point.t_states,
        t_states_per_rotation=point.t_rot,
        pre_layout=point.counts,
    )
    logical_qubit = lq_memo.get(distance)
    if logical_qubit is None:
        logical_qubit = lq_memo[distance] = LogicalQubit(
            scheme=scheme, qubit=qubit, code_distance=distance
        )

    qubits_algorithm = alg.logical_qubits * physical_per_logical
    qubits_factories = copies * factory.physical_qubits if factory else 0
    total_qubits = qubits_algorithm + qubits_factories
    cycles_per_second = 1e9 / cycle_ns
    rqops = alg.logical_qubits * cycles_per_second

    constraints = point.ctx.constraints
    if (
        constraints.max_duration_ns is not None
        and runtime_ns > constraints.max_duration_ns
    ):
        return BatchOutcome(
            request=request,
            result=None,
            error=(
                f"estimated runtime {runtime_ns:.3g} ns exceeds the constraint "
                f"{constraints.max_duration_ns:.3g} ns"
            ),
        )
    if (
        constraints.max_physical_qubits is not None
        and total_qubits > constraints.max_physical_qubits
    ):
        return BatchOutcome(
            request=request,
            result=None,
            error=(
                f"estimated {total_qubits} physical qubits exceed the constraint "
                f"{constraints.max_physical_qubits}"
            ),
        )

    t_factory_usage = None
    if factory is not None:
        t_factory_usage = TFactoryUsage(
            factory=factory,
            copies=copies,
            total_runs=total_runs,
            runs_per_copy=runs_per_copy,
            physical_qubits=qubits_factories,
            required_output_error_rate=required_t_error,
        )

    result = PhysicalResourceEstimates(
        physical_counts=PhysicalCounts(
            physical_qubits=total_qubits, runtime_ns=runtime_ns, rqops=rqops
        ),
        breakdown=ResourceBreakdown(
            algorithmic_logical_qubits=alg.logical_qubits,
            algorithmic_logical_depth=alg.logical_depth,
            logical_depth=depth,
            num_t_states=alg.t_states,
            clock_frequency_hz=cycles_per_second,
            physical_qubits_for_algorithm=qubits_algorithm,
            physical_qubits_for_t_factories=qubits_factories,
            # Exact big-int product, as in the scalar stage (guarded to
            # stay below 2**53, so the float division matches too).
            required_logical_error_rate=partition.logical
            / (alg.logical_qubits * depth),
        ),
        logical_qubit=logical_qubit,
        t_factory=t_factory_usage,
        algorithmic_resources=alg,
        error_budget=partition,
        qubit_params=qubit,
        assumptions=ASSUMPTIONS,
    )
    return BatchOutcome(request=request, result=result, error=None)
