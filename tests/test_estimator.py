"""Tests for the end-to-end estimation pipeline, constraints, and frontier."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Constraints,
    ErrorBudget,
    EstimationError,
    LogicalCounts,
    estimate,
    estimate_frontier,
    qubit_params,
)
from repro.ir import CircuitBuilder
from repro.qec import FLOQUET_CODE, SURFACE_CODE_GATE_BASED

MAJ = qubit_params("qubit_maj_ns_e4")
GATE = qubit_params("qubit_gate_ns_e3")

WORKLOAD = LogicalCounts(
    num_qubits=100, t_count=10**5, ccz_count=10**5, measurement_count=10**4
)


class TestPipelineBasics:
    def test_estimate_from_counts(self):
        r = estimate(WORKLOAD, MAJ, budget=1e-3)
        assert r.physical_qubits > 0
        assert r.runtime_seconds > 0
        assert r.code_distance % 2 == 1
        assert r.rqops > 0

    def test_estimate_from_circuit(self):
        b = CircuitBuilder()
        q = b.allocate_register(4)
        b.ccx(q[0], q[1], q[2])
        b.t(q[3])
        b.measure(q[3])
        circuit = b.finish()
        r = estimate(circuit, MAJ, budget=1e-3)
        assert r.pre_layout.ccz_count == 1
        assert r.pre_layout.t_count == 1

    def test_rejects_wrong_program_type(self):
        with pytest.raises(TypeError, match="logical_counts"):
            estimate("not a program", MAJ)

    def test_incompatible_scheme_rejected(self):
        with pytest.raises(EstimationError, match="majorana"):
            estimate(WORKLOAD, GATE, scheme=FLOQUET_CODE)

    def test_default_scheme_follows_technology(self):
        r_gate = estimate(WORKLOAD, GATE, budget=1e-3)
        assert r_gate.logical_qubit.scheme.name == "surface_code"
        r_maj = estimate(WORKLOAD, MAJ, budget=1e-3)
        assert r_maj.logical_qubit.scheme.name == "floquet_code"

    def test_breakdown_consistency(self):
        r = estimate(WORKLOAD, MAJ, budget=1e-3)
        bd = r.breakdown
        lq = r.logical_qubit
        assert r.physical_qubits == (
            bd.physical_qubits_for_algorithm + bd.physical_qubits_for_t_factories
        )
        assert bd.physical_qubits_for_algorithm == (
            bd.algorithmic_logical_qubits * lq.physical_qubits
        )
        assert r.physical_counts.runtime_ns == pytest.approx(
            bd.logical_depth * lq.cycle_time_ns
        )
        assert r.rqops == pytest.approx(
            bd.algorithmic_logical_qubits * lq.logical_cycles_per_second
        )

    def test_achieved_error_within_budget(self):
        budget = 1e-3
        r = estimate(WORKLOAD, MAJ, budget=budget)
        lq = r.logical_qubit
        bd = r.breakdown
        logical_error = lq.logical_error_rate * bd.algorithmic_logical_qubits * bd.logical_depth
        assert logical_error <= r.error_budget.logical * (1 + 1e-9)
        t = r.t_factory
        assert t is not None
        t_error = t.factory.output_error_rate * bd.num_t_states
        assert t_error <= r.error_budget.t_states * (1 + 1e-9)

    def test_clifford_only_program_has_no_factory(self):
        counts = LogicalCounts(num_qubits=10, measurement_count=100)
        r = estimate(counts, MAJ, budget=1e-3)
        assert r.t_factory is None
        assert r.breakdown.num_t_states == 0
        assert r.breakdown.physical_qubits_for_t_factories == 0

    def test_rotations_enter_t_count(self):
        counts = LogicalCounts(
            num_qubits=10, rotation_count=100, rotation_depth=50
        )
        r = estimate(counts, MAJ, budget=1e-3)
        t_rot = r.algorithmic_resources.t_states_per_rotation
        assert t_rot > 0
        assert r.breakdown.num_t_states == 100 * t_rot

    def test_budget_object_and_float_equivalent(self):
        r1 = estimate(WORKLOAD, MAJ, budget=1e-3)
        r2 = estimate(WORKLOAD, MAJ, budget=ErrorBudget(total=1e-3))
        assert r1.physical_qubits == r2.physical_qubits
        assert r1.runtime_seconds == r2.runtime_seconds

    @given(st.sampled_from([1e-2, 1e-3, 1e-4, 1e-5]))
    @settings(deadline=None, max_examples=4)
    def test_property_tighter_budget_more_resources(self, budget):
        loose = estimate(WORKLOAD, MAJ, budget=budget * 10)
        tight = estimate(WORKLOAD, MAJ, budget=budget)
        assert tight.code_distance >= loose.code_distance
        assert tight.physical_qubits >= loose.physical_qubits


class TestConstraints:
    def test_validation(self):
        with pytest.raises(ValueError):
            Constraints(max_t_factories=0)
        with pytest.raises(ValueError):
            Constraints(logical_depth_factor=0.5)
        with pytest.raises(ValueError):
            Constraints(max_duration_ns=0)
        with pytest.raises(ValueError):
            Constraints(max_physical_qubits=0)

    def test_depth_factor_stretches_runtime(self):
        base = estimate(WORKLOAD, MAJ, budget=1e-3)
        slow = estimate(
            WORKLOAD, MAJ, budget=1e-3,
            constraints=Constraints(logical_depth_factor=4.0),
        )
        assert slow.breakdown.logical_depth >= 4 * base.breakdown.algorithmic_logical_depth
        assert slow.runtime_seconds > base.runtime_seconds

    def test_max_t_factories_reduces_factory_qubits(self):
        base = estimate(WORKLOAD, MAJ, budget=1e-3)
        assert base.t_factory is not None and base.t_factory.copies > 2
        capped = estimate(
            WORKLOAD, MAJ, budget=1e-3,
            constraints=Constraints(max_t_factories=2),
        )
        assert capped.t_factory is not None
        assert capped.t_factory.copies <= 2
        assert (
            capped.breakdown.physical_qubits_for_t_factories
            < base.breakdown.physical_qubits_for_t_factories
        )
        # Fewer factories must still deliver all T states: runtime grows.
        assert capped.runtime_seconds >= base.runtime_seconds

    def test_capped_factories_still_deliver_all_t_states(self):
        r = estimate(
            WORKLOAD, MAJ, budget=1e-3,
            constraints=Constraints(max_t_factories=1),
        )
        t = r.t_factory
        assert t is not None
        assert t.copies == 1
        produced = t.copies * t.runs_per_copy * t.factory.output_t_states
        assert produced >= r.breakdown.num_t_states

    def test_max_duration_violation_raises(self):
        with pytest.raises(EstimationError, match="runtime"):
            estimate(
                WORKLOAD, MAJ, budget=1e-3,
                constraints=Constraints(max_duration_ns=1.0),
            )

    def test_max_physical_qubits_violation_raises(self):
        with pytest.raises(EstimationError, match="physical qubits"):
            estimate(
                WORKLOAD, MAJ, budget=1e-3,
                constraints=Constraints(max_physical_qubits=100),
            )

    def test_tiny_program_stretched_to_fit_one_factory_run(self):
        # A program so short the factory cannot finish during it must be
        # slowed down rather than rejected.
        counts = LogicalCounts(num_qubits=2, t_count=1, measurement_count=1)
        r = estimate(counts, MAJ, budget=1e-3)
        t = r.t_factory
        assert t is not None
        assert t.runs_per_copy >= 1
        assert r.physical_counts.runtime_ns >= t.factory.duration_ns


class TestFrontier:
    def test_frontier_is_pareto_and_sorted(self):
        points = estimate_frontier(WORKLOAD, MAJ, budget=1e-3)
        assert points
        for a, b in zip(points, points[1:]):
            assert a.runtime_seconds <= b.runtime_seconds
            assert a.physical_qubits > b.physical_qubits

    def test_frontier_trades_qubits_for_time(self):
        points = estimate_frontier(WORKLOAD, MAJ, budget=1e-3)
        if len(points) > 1:
            assert points[-1].physical_qubits < points[0].physical_qubits
            assert points[-1].runtime_seconds > points[0].runtime_seconds

    def test_empty_depth_factors_rejected(self):
        with pytest.raises(ValueError):
            estimate_frontier(WORKLOAD, MAJ, depth_factors=[])


class TestOutputGroups:
    def test_to_dict_has_all_eight_groups(self):
        r = estimate(WORKLOAD, MAJ, budget=1e-3)
        d = r.to_dict()
        for key in (
            "physicalCounts",
            "breakdown",
            "logicalQubit",
            "tFactory",
            "preLayoutLogicalResources",
            "errorBudget",
            "physicalQubitParameters",
            "assumptions",
        ):
            assert key in d, key

    def test_json_roundtrip(self):
        r = estimate(WORKLOAD, MAJ, budget=1e-3)
        parsed = json.loads(r.to_json())
        assert parsed["physicalCounts"]["physicalQubits"] == r.physical_qubits
        assert parsed["breakdown"]["numTStates"] == r.breakdown.num_t_states

    def test_summary_renders(self):
        r = estimate(WORKLOAD, MAJ, budget=1e-3)
        text = r.summary()
        assert "Physical resource estimates" in text
        assert "Code distance" in text
        assert f"{r.code_distance}" in text

    def test_assumptions_listed(self):
        r = estimate(WORKLOAD, MAJ, budget=1e-3)
        assert any("2D nearest-neighbor" in a for a in r.assumptions)
