"""T-factory pipeline evaluation.

A pipeline is a sequence of :class:`DistillationRound`\\ s. Round 1 takes
raw (physical) T states with the technology's T-gate error rate; each
later round takes the previous round's outputs. Rounds run one after
another on the same patch of hardware, so the factory's physical qubit
footprint is the *maximum* round footprint while its duration is the *sum*
of round durations.

Failure handling follows the tool: instead of modelling restarts in time,
each round over-provisions parallel unit copies by ``1 / (1 - p_fail)`` so
that the expected number of successful units covers the next round's input
demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from ..qec import QECScheme
from ..qubits import PhysicalQubitParams
from .units import DistillationUnit


class TFactoryError(ValueError):
    """Raised when a pipeline is malformed or infeasible."""


@dataclass(frozen=True)
class DistillationRound:
    """One round of a factory pipeline.

    ``code_distance`` is ``None`` for a round running on bare physical
    qubits (allowed only in the first round) and an odd distance for a
    round running on logical qubits of the factory's QEC scheme.
    """

    unit: DistillationUnit
    code_distance: int | None

    def __post_init__(self) -> None:
        if self.code_distance is None:
            if self.unit.physical_spec is None:
                raise TFactoryError(
                    f"unit {self.unit.name!r} has no physical spec; give a code distance"
                )
        else:
            if self.unit.logical_spec is None:
                raise TFactoryError(
                    f"unit {self.unit.name!r} has no logical spec; "
                    "it can only run on physical qubits"
                )
            if self.code_distance < 1 or self.code_distance % 2 == 0:
                raise TFactoryError(
                    f"code distance must be a positive odd integer, got {self.code_distance}"
                )

    @property
    def is_physical(self) -> bool:
        return self.code_distance is None


@dataclass(frozen=True)
class _RoundReport:
    """Evaluated state of one round within a concrete factory."""

    round: DistillationRound
    num_units: int
    failure_probability: float
    input_error_rate: float
    output_error_rate: float
    physical_qubits: int
    duration_ns: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "unit": self.round.unit.name,
            "unitSpec": self.round.unit.to_dict(),
            "codeDistance": self.round.code_distance,
            "numUnits": self.num_units,
            "failureProbability": self.failure_probability,
            "inputErrorRate": self.input_error_rate,
            "outputErrorRate": self.output_error_rate,
            "physicalQubits": self.physical_qubits,
            "duration_ns": self.duration_ns,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "_RoundReport":
        """Inverse of :meth:`to_dict`, rebuilding the full unit definition."""
        return cls(
            round=DistillationRound(
                unit=DistillationUnit.from_dict(data["unitSpec"]),
                code_distance=data["codeDistance"],
            ),
            num_units=data["numUnits"],
            failure_probability=data["failureProbability"],
            input_error_rate=data["inputErrorRate"],
            output_error_rate=data["outputErrorRate"],
            physical_qubits=data["physicalQubits"],
            duration_ns=data["duration_ns"],
        )


@dataclass(frozen=True)
class TFactory:
    """A fully evaluated T factory (paper Sec. IV-D.4 output group)."""

    rounds: tuple[_RoundReport, ...]
    physical_qubits: int
    duration_ns: float
    output_t_states: int
    output_error_rate: float
    input_t_error_rate: float

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def input_t_states(self) -> int:
        """Raw T states consumed per factory run."""
        first = self.rounds[0]
        return first.num_units * first.round.unit.num_input_ts

    def runs_required(self, num_t_states: int) -> int:
        """Factory invocations needed to supply ``num_t_states``."""
        if num_t_states < 0:
            raise ValueError(f"num_t_states must be >= 0, got {num_t_states}")
        return math.ceil(num_t_states / self.output_t_states)

    def to_dict(self) -> dict[str, Any]:
        return {
            "numRounds": self.num_rounds,
            "physicalQubits": self.physical_qubits,
            "duration_ns": self.duration_ns,
            "outputTStates": self.output_t_states,
            "outputErrorRate": self.output_error_rate,
            "inputTErrorRate": self.input_t_error_rate,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TFactory":
        """Inverse of :meth:`to_dict`; the round reports carry full units."""
        return cls(
            rounds=tuple(_RoundReport.from_dict(r) for r in data["rounds"]),
            physical_qubits=data["physicalQubits"],
            duration_ns=data["duration_ns"],
            output_t_states=data["outputTStates"],
            output_error_rate=data["outputErrorRate"],
            input_t_error_rate=data["inputTErrorRate"],
        )


def evaluate_pipeline(
    rounds: Sequence[DistillationRound],
    qubit: PhysicalQubitParams,
    scheme: QECScheme,
) -> TFactory | None:
    """Evaluate a pipeline into a concrete :class:`TFactory`.

    Returns ``None`` when the pipeline is infeasible at these error rates
    (a round's failure probability reaches 1, or distillation fails to
    improve the error, indicating the protocol is operating above its own
    threshold). Raises :class:`TFactoryError` for structurally invalid
    pipelines.
    """
    if not rounds:
        raise TFactoryError("a T factory needs at least one distillation round")
    for r in rounds[1:]:
        if r.is_physical:
            raise TFactoryError(
                "physical-level distillation units may only appear in round 1"
            )

    # Forward pass: propagate error rates and per-unit failure.
    error_rate = qubit.t_gate_error_rate
    per_round: list[tuple[float, float, float]] = []  # (fail, e_in, e_out)
    for r in rounds:
        if r.is_physical:
            clifford = qubit.clifford_error_rate
        else:
            assert r.code_distance is not None
            clifford = scheme.logical_error_rate(qubit, r.code_distance)
        failure, out_error = r.unit.evaluate(error_rate, clifford)
        if failure >= 1.0:
            return None
        if out_error >= error_rate and out_error >= 1.0:
            return None
        per_round.append((failure, error_rate, out_error))
        error_rate = out_error

    # Backward pass: unit multiplicities. The final round runs one unit.
    multiplicities = [0] * len(rounds)
    multiplicities[-1] = 1
    for i in range(len(rounds) - 2, -1, -1):
        needed_inputs = multiplicities[i + 1] * rounds[i + 1].unit.num_input_ts
        failure = per_round[i][0]
        produced_per_unit = rounds[i].unit.num_output_ts * (1.0 - failure)
        multiplicities[i] = math.ceil(needed_inputs / produced_per_unit)

    # Footprint and duration.
    reports: list[_RoundReport] = []
    for r, mult, (failure, e_in, e_out) in zip(rounds, multiplicities, per_round):
        if r.is_physical:
            assert r.unit.physical_spec is not None
            qubits = mult * r.unit.physical_spec.num_qubits
            duration = r.unit.physical_spec.duration.evaluate_positive(
                qubit.formula_environment(1)
            )
        else:
            assert r.unit.logical_spec is not None and r.code_distance is not None
            qubits = (
                mult
                * r.unit.logical_spec.num_logical_qubits
                * scheme.physical_qubits(qubit, r.code_distance)
            )
            duration = r.unit.logical_spec.duration_in_cycles * scheme.cycle_time_ns(
                qubit, r.code_distance
            )
        reports.append(
            _RoundReport(
                round=r,
                num_units=mult,
                failure_probability=failure,
                input_error_rate=e_in,
                output_error_rate=e_out,
                physical_qubits=qubits,
                duration_ns=duration,
            )
        )

    return TFactory(
        rounds=tuple(reports),
        physical_qubits=max(rep.physical_qubits for rep in reports),
        duration_ns=sum(rep.duration_ns for rep in reports),
        output_t_states=rounds[-1].unit.num_output_ts,
        output_error_rate=per_round[-1][2],
        input_t_error_rate=qubit.t_gate_error_rate,
    )
