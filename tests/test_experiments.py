"""Integration tests: the experiment drivers reproduce the paper's shapes.

Full-size figure sweeps live in ``benchmarks/``; here we run reduced
sweeps that still exercise every code path, plus the 2048-bit in-text
claims, which are the paper's most precise numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    FIG3_BIT_SIZES,
    FIG4_PROFILES,
    evaluate_claims,
    run_estimate_row,
    run_fig3,
    run_fig4,
)
from repro.experiments.claims import format_claims
from repro.experiments.runner import ALGORITHMS, format_table


class TestFig3Reduced:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig3(bit_sizes=(32, 128, 512))

    def test_grid_complete(self, rows):
        assert len(rows) == 9
        assert {r.algorithm for r in rows} == set(ALGORITHMS)
        assert all(r.profile == "qubit_maj_ns_e4" for r in rows)

    def test_distance_starts_at_paper_value(self, rows):
        # Paper: distance 9 at 32 bits on this profile/budget.
        at_32 = [r for r in rows if r.bits == 32]
        assert {r.code_distance for r in at_32} == {9}

    def test_qubits_and_runtime_grow_with_size(self, rows):
        for algorithm in ALGORITHMS:
            series = sorted(
                (r for r in rows if r.algorithm == algorithm), key=lambda r: r.bits
            )
            qubits = [r.physical_qubits for r in series]
            runtimes = [r.runtime_seconds for r in series]
            assert qubits == sorted(qubits)
            assert runtimes == sorted(runtimes)

    def test_karatsuba_most_qubits_at_512(self, rows):
        at_512 = {r.algorithm: r for r in rows if r.bits == 512}
        assert (
            at_512["karatsuba"].physical_qubits
            > at_512["schoolbook"].physical_qubits
        )
        assert (
            at_512["karatsuba"].physical_qubits
            > at_512["windowed"].physical_qubits
        )

    def test_windowed_fastest_at_512(self, rows):
        at_512 = {r.algorithm: r for r in rows if r.bits == 512}
        assert at_512["windowed"].runtime_seconds < at_512["schoolbook"].runtime_seconds
        assert at_512["windowed"].runtime_seconds < at_512["karatsuba"].runtime_seconds

    def test_default_grid_matches_paper_range(self):
        assert FIG3_BIT_SIZES[0] == 32
        assert FIG3_BIT_SIZES[-1] == 16384

    def test_table_formatting(self, rows):
        text = format_table(rows)
        assert "schoolbook" in text and "qubit_maj_ns_e4" in text


class TestFig4Reduced:
    @pytest.fixture(scope="class")
    def rows(self):
        # Two profiles (one gate-based, one Majorana) at a reduced size.
        return run_fig4(
            profiles=("qubit_gate_ns_e3", "qubit_maj_ns_e4"), bits=256
        )

    def test_grid_complete(self, rows):
        assert len(rows) == 6
        assert {r.profile for r in rows} == {"qubit_gate_ns_e3", "qubit_maj_ns_e4"}

    def test_majorana_profile_faster_cycles(self, rows):
        gate = next(r for r in rows if r.profile == "qubit_gate_ns_e3" and r.algorithm == "windowed")
        maj = next(r for r in rows if r.profile == "qubit_maj_ns_e4" and r.algorithm == "windowed")
        # floquet cycles (3*100*d) beat surface cycles (400*d) at similar d
        assert maj.runtime_seconds < gate.runtime_seconds

    def test_all_profiles_listed(self):
        assert len(FIG4_PROFILES) == 6


class TestInTextClaims:
    """The paper's Sec. V numbers, at full 2048-bit size."""

    @pytest.fixture(scope="class")
    def claims(self):
        return {c.claim_id: c for c in evaluate_claims()}

    def test_all_claims_evaluated(self, claims):
        assert set(claims) == {
            "logical-qubits-2048-windowed",
            "logical-ops-2048-windowed",
            "runtime-span-2048-windowed",
            "rqops-span-2048-windowed",
            "karatsuba-most-qubits",
            "karatsuba-not-faster-2048",
        }

    def test_logical_qubits_match_paper(self, claims):
        c = claims["logical-qubits-2048-windowed"]
        assert c.holds, f"measured {c.measured_value} vs paper {c.paper_value}"
        # Our layout gives 20,792 vs the paper's 20,597: within 1%.
        assert abs(int(c.measured_value) - 20597) / 20597 < 0.02

    def test_logical_operations_match_paper(self, claims):
        assert claims["logical-ops-2048-windowed"].holds

    def test_runtime_span_matches_paper(self, claims):
        assert claims["runtime-span-2048-windowed"].holds

    def test_rqops_span_matches_paper(self, claims):
        assert claims["rqops-span-2048-windowed"].holds

    def test_karatsuba_qualitative_claims(self, claims):
        assert claims["karatsuba-most-qubits"].holds
        assert claims["karatsuba-not-faster-2048"].holds

    def test_formatting(self, claims):
        text = format_claims(list(claims.values()))
        assert "PASS" in text


class TestSingleRow:
    def test_row_fields_consistent(self):
        row = run_estimate_row("windowed", 128, "qubit_maj_ns_e6")
        assert row.algorithm == "windowed"
        assert row.bits == 128
        assert row.t_factory_copies > 0
        assert row.to_dict()["physicalQubits"] == row.physical_qubits
