"""Tests for the QIR text front end: parsing, emission, round-trips."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import estimate, qubit_params
from repro.ir import CircuitBuilder
from repro.qir import QIRParseError, emit_qir, parse_qir

SIMPLE_PROGRAM = """
; a QIR module
define void @main() {
entry:
  %q0 = call %Qubit* @__quantum__rt__qubit_allocate()
  %q1 = call %Qubit* @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(%Qubit* %q0)
  call void @__quantum__qis__cnot__body(%Qubit* %q0, %Qubit* %q1)
  call void @__quantum__qis__t__body(%Qubit* %q1)
  call void @__quantum__qis__t__adj(%Qubit* %q0)
  call void @__quantum__qis__rz__body(double 0.125, %Qubit* %q1)
  %r0 = call %Result* @__quantum__qis__m__body(%Qubit* %q0)
  call void @__quantum__rt__qubit_release(%Qubit* %q1)
  call void @__quantum__rt__qubit_release(%Qubit* %q0)
  ret void
}
"""


class TestParser:
    def test_simple_program_counts(self):
        counts = parse_qir(SIMPLE_PROGRAM).logical_counts()
        assert counts.num_qubits == 2
        assert counts.t_count == 2  # t body + t adj
        assert counts.rotation_count == 1
        assert counts.measurement_count == 1

    def test_three_qubit_gates(self):
        text = """
        define void @main() {
        entry:
          %a = call %Qubit* @__quantum__rt__qubit_allocate()
          %b = call %Qubit* @__quantum__rt__qubit_allocate()
          %c = call %Qubit* @__quantum__rt__qubit_allocate()
          call void @__quantum__qis__ccz__body(%Qubit* %a, %Qubit* %b, %Qubit* %c)
          call void @__quantum__qis__toffoli__body(%Qubit* %a, %Qubit* %b, %Qubit* %c)
          call void @__quantum__qis__ccix__body(%Qubit* %a, %Qubit* %b, %Qubit* %c)
          ret void
        }
        """
        counts = parse_qir(text).logical_counts()
        assert counts.ccz_count == 2
        assert counts.ccix_count == 1

    def test_static_qubit_literals(self):
        """Base-profile style: inttoptr literals and null instead of SSA."""
        text = """
        define void @main() {
        entry:
          call void @__quantum__qis__h__body(%Qubit* null)
          call void @__quantum__qis__cnot__body(%Qubit* null, %Qubit* inttoptr (i64 1 to %Qubit*))
          call void @__quantum__qis__t__body(%Qubit* inttoptr (i64 2 to %Qubit*))
          ret void
        }
        """
        counts = parse_qir(text).logical_counts()
        assert counts.num_qubits == 3
        assert counts.t_count == 1

    def test_rotation_adjoint_negates_angle(self):
        text = """
        define void @main() {
        entry:
          %q = call %Qubit* @__quantum__rt__qubit_allocate()
          call void @__quantum__qis__rz__adj(double 0.5, %Qubit* %q)
          ret void
        }
        """
        circuit = parse_qir(text)
        angles = [ins[4] for ins in circuit.instructions if ins[4] != 0.0]
        assert angles == [-0.5]

    def test_result_runtime_calls_ignored(self):
        text = """
        define void @main() {
        entry:
          %q = call %Qubit* @__quantum__rt__qubit_allocate()
          %r = call %Result* @__quantum__qis__m__body(%Qubit* %q)
          %b = call i1 @__quantum__rt__read_result(%Result* %r)
          call void @__quantum__rt__result_record_output(%Result* %r, i8* null)
          ret void
        }
        """
        assert parse_qir(text).logical_counts().measurement_count == 1

    def test_unknown_intrinsic_rejected(self):
        text = """
        define void @main() {
        entry:
          %q = call %Qubit* @__quantum__rt__qubit_allocate()
          call void @__quantum__qis__frobnicate__body(%Qubit* %q)
          ret void
        }
        """
        with pytest.raises(QIRParseError, match="frobnicate"):
            parse_qir(text)

    def test_unsupported_classical_instruction_rejected(self):
        text = """
        define void @main() {
        entry:
          %x = add i64 1, 2
          ret void
        }
        """
        with pytest.raises(QIRParseError, match="unsupported instruction"):
            parse_qir(text)

    def test_use_of_unallocated_qubit_rejected(self):
        text = """
        define void @main() {
        entry:
          call void @__quantum__qis__h__body(%Qubit* %ghost)
          ret void
        }
        """
        with pytest.raises(QIRParseError, match="unallocated"):
            parse_qir(text)

    def test_wrong_arity_rejected(self):
        text = """
        define void @main() {
        entry:
          %q = call %Qubit* @__quantum__rt__qubit_allocate()
          call void @__quantum__qis__cnot__body(%Qubit* %q)
          ret void
        }
        """
        with pytest.raises(QIRParseError, match="2 qubit argument"):
            parse_qir(text)

    def test_error_reports_line_number(self):
        text = "define void @main() {\nentry:\n  bogus instruction\n  ret void\n}"
        with pytest.raises(QIRParseError, match="line 3"):
            parse_qir(text)

    def test_parsed_circuit_estimates_end_to_end(self):
        result = estimate(
            parse_qir(SIMPLE_PROGRAM), qubit_params("qubit_gate_ns_e3"), budget=1e-3
        )
        assert result.physical_qubits > 0


class TestEmitter:
    def test_emit_contains_expected_intrinsics(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.h(q[0])
        b.cx(q[0], q[1])
        b.t_adj(q[1])
        b.rz(0.25, q[0])
        b.measure(q[0])
        text = emit_qir(b.finish())
        assert "@__quantum__rt__qubit_allocate()" in text
        assert "@__quantum__qis__cnot__body" in text
        assert "@__quantum__qis__t__adj" in text
        assert "double 0.25" in text
        assert "@__quantum__qis__m__body" in text
        assert text.strip().endswith("}")

    def test_and_pairs_lower_to_ccix_and_measure(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        t = b.and_compute(q[0], q[1])
        b.and_uncompute(q[0], q[1], t)
        text = emit_qir(b.finish())
        assert "ccix" in text
        assert "m__body" in text

    def test_account_for_estimates_rejected(self):
        from repro import LogicalCounts

        b = CircuitBuilder()
        b.allocate()
        b.account_for_estimates(LogicalCounts(num_qubits=1, t_count=5))
        with pytest.raises(ValueError, match="QIR"):
            emit_qir(b.finish())


class TestRoundTrip:
    def test_counts_preserved_through_round_trip(self):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        b.h(q[0]); b.t(q[0]); b.s(q[1]); b.s_adj(q[2])
        b.ccx(*q); b.ccz(*q)
        t = b.and_compute(q[0], q[1]); b.and_uncompute(q[0], q[1], t)
        b.rz(0.3, q[2]); b.rx(-0.7, q[0]); b.ry(math.pi / 4, q[1])
        b.measure(q[0]); b.reset(q[1])
        original = b.finish()
        reparsed = parse_qir(emit_qir(original))
        assert reparsed.logical_counts() == original.logical_counts()

    @given(
        ops=st.lists(
            st.sampled_from(["h", "t", "tadj", "cx", "ccz", "and", "rz", "m"]),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_random_circuits_round_trip(self, ops):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        for op in ops:
            if op == "h":
                b.h(q[0])
            elif op == "t":
                b.t(q[1])
            elif op == "tadj":
                b.t_adj(q[2])
            elif op == "cx":
                b.cx(q[0], q[2])
            elif op == "ccz":
                b.ccz(*q)
            elif op == "and":
                t = b.and_compute(q[0], q[1])
                b.and_uncompute(q[0], q[1], t)
            elif op == "rz":
                b.rz(0.123, q[0])
            elif op == "m":
                b.measure(q[2])
        original = b.finish()
        reparsed = parse_qir(emit_qir(original))
        assert reparsed.logical_counts() == original.logical_counts()

    def test_multiplier_circuit_round_trips(self):
        """A real arithmetic circuit survives QIR serialization."""
        from repro.arithmetic import SchoolbookMultiplier

        original = SchoolbookMultiplier(8).circuit()
        reparsed = parse_qir(emit_qir(original))
        assert reparsed.logical_counts() == original.logical_counts()
