"""Shared machinery for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..arithmetic import multiplier_by_name
from ..estimator import PhysicalResourceEstimates, estimate
from ..qec import default_scheme_for
from ..qubits import qubit_params

#: The three algorithms compared by the paper, in its plotting order.
ALGORITHMS = ("schoolbook", "karatsuba", "windowed")

#: Total error budget used throughout the paper's evaluation (Sec. V).
PAPER_ERROR_BUDGET = 1e-4


@dataclass(frozen=True)
class EstimateRow:
    """One point of a figure: an algorithm/size/profile combination."""

    algorithm: str
    bits: int
    profile: str
    physical_qubits: int
    runtime_seconds: float
    code_distance: int
    logical_qubits: int
    logical_depth: int
    num_t_states: int
    t_factory_copies: int
    rqops: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "bits": self.bits,
            "profile": self.profile,
            "physicalQubits": self.physical_qubits,
            "runtime_s": self.runtime_seconds,
            "codeDistance": self.code_distance,
            "logicalQubits": self.logical_qubits,
            "logicalDepth": self.logical_depth,
            "numTStates": self.num_t_states,
            "tFactoryCopies": self.t_factory_copies,
            "rqops": self.rqops,
        }


def run_estimate_row(
    algorithm: str,
    bits: int,
    profile: str,
    *,
    budget: float = PAPER_ERROR_BUDGET,
) -> EstimateRow:
    """Estimate one figure point, using the profile's default QEC scheme.

    Matches the paper's setup: surface code for gate-based profiles,
    floquet code for Majorana profiles, default T-factory search.
    """
    result = _estimate(algorithm, bits, profile, budget)
    return EstimateRow(
        algorithm=algorithm,
        bits=bits,
        profile=profile,
        physical_qubits=result.physical_qubits,
        runtime_seconds=result.runtime_seconds,
        code_distance=result.code_distance,
        logical_qubits=result.logical_qubits,
        logical_depth=result.breakdown.logical_depth,
        num_t_states=result.breakdown.num_t_states,
        t_factory_copies=result.t_factory.copies if result.t_factory else 0,
        rqops=result.rqops,
    )


def _estimate(
    algorithm: str, bits: int, profile: str, budget: float
) -> PhysicalResourceEstimates:
    qubit = qubit_params(profile)
    multiplier = multiplier_by_name(algorithm, bits)
    return estimate(
        multiplier.logical_counts(),
        qubit,
        scheme=default_scheme_for(qubit),
        budget=budget,
    )


def format_table(rows: list[EstimateRow]) -> str:
    """Fixed-width table of estimate rows for terminal output."""
    header = (
        f"{'algorithm':<11} {'bits':>6} {'profile':<17} {'phys qubits':>12} "
        f"{'runtime[s]':>11} {'d':>3} {'log qubits':>10} {'rQOPS':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:<11} {r.bits:>6} {r.profile:<17} "
            f"{r.physical_qubits:>12,} {r.runtime_seconds:>11.3g} "
            f"{r.code_distance:>3} {r.logical_qubits:>10,} {r.rqops:>10.3g}"
        )
    return "\n".join(lines)
