"""Tests for the circuit IR: builder, tracer, validation, adjoints."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import LogicalCounts
from repro.ir import CircuitBuilder, CircuitError, Op, trace, validate


class TestBuilder:
    def test_allocate_release_reuses_ids(self):
        b = CircuitBuilder()
        q0 = b.allocate()
        b.release(q0)
        q1 = b.allocate()
        assert q1 == q0
        assert b.num_active_qubits == 1

    def test_register_allocation(self):
        b = CircuitBuilder()
        reg = b.allocate_register(5)
        assert len(set(reg)) == 5
        with pytest.raises(CircuitError):
            b.allocate_register(0)

    def test_gate_on_unallocated_qubit_rejected(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.release(q)
        with pytest.raises(CircuitError, match="not allocated"):
            b.x(q)

    def test_duplicate_qubits_rejected(self):
        b = CircuitBuilder()
        q0, q1 = b.allocate(), b.allocate()
        with pytest.raises(CircuitError, match="distinct"):
            b.cx(q0, q0)
        with pytest.raises(CircuitError, match="distinct"):
            b.ccx(q0, q1, q0)

    def test_finish_freezes_builder(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.x(q)
        c = b.finish()
        assert len(c) == 2
        with pytest.raises(CircuitError, match="finished"):
            b.x(q)

    def test_and_compute_allocates_target(self):
        b = CircuitBuilder()
        q0, q1 = b.allocate(), b.allocate()
        t = b.and_compute(q0, q1)
        assert b.num_active_qubits == 3
        b.and_uncompute(q0, q1, t)
        assert b.num_active_qubits == 2


class TestTracer:
    def test_counts_all_gate_kinds(self):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        b.t(q[0])
        b.t_adj(q[1])
        b.ccz(*q)
        b.ccx(*q)
        b.ccix(*q)
        t = b.and_compute(q[0], q[1])
        b.and_uncompute(q[0], q[1], t)
        b.measure(q[2])
        b.reset(q[2])
        counts = b.finish().logical_counts()
        assert counts.t_count == 2
        assert counts.ccz_count == 2  # CCZ + Toffoli
        assert counts.ccix_count == 2  # CCiX + AND
        assert counts.measurement_count == 3  # AND uncompute + measure + reset

    def test_width_is_high_water_mark(self):
        b = CircuitBuilder()
        q0 = b.allocate()
        q1 = b.allocate()
        b.release(q1)
        q2 = b.allocate()  # reuses q1's id
        q3 = b.allocate()
        counts = b.finish().logical_counts()
        assert counts.num_qubits == 3  # never more than 3 live at once

    def test_clifford_gates_free(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.h(q[0]); b.s(q[0]); b.s_adj(q[0]); b.x(q[0]); b.y(q[0]); b.z(q[0])
        b.cx(q[0], q[1]); b.cz(q[0], q[1]); b.swap(q[0], q[1])
        counts = b.finish().logical_counts()
        assert counts.non_clifford_count == 0
        assert counts.measurement_count == 0

    def test_rotation_angle_classification(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.rz(math.pi, q)  # Clifford (Z)
        b.rz(math.pi / 2, q)  # Clifford (S)
        b.rz(math.pi / 4, q)  # T
        b.rz(0.3, q)  # arbitrary
        b.rx(-1.1, q)  # arbitrary
        counts = b.finish().logical_counts()
        assert counts.t_count == 1
        assert counts.rotation_count == 2
        assert counts.rotation_depth == 2

    def test_rotation_depth_parallel_layers(self):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        # Three rotations on distinct qubits: one layer.
        for qubit in q:
            b.rz(0.1, qubit)
        assert b.finish().logical_counts().rotation_depth == 1

    def test_rotation_depth_sequential_same_qubit(self):
        b = CircuitBuilder()
        q = b.allocate()
        for _ in range(4):
            b.rz(0.1, q)
        assert b.finish().logical_counts().rotation_depth == 4

    def test_rotation_depth_propagates_through_entanglers(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.rz(0.1, q[0])  # layer 1 on q0
        b.cx(q[0], q[1])  # sync
        b.rz(0.1, q[1])  # layer 2 (depends on q0's rotation)
        counts = b.finish().logical_counts()
        assert counts.rotation_depth == 2

    def test_account_for_estimates(self):
        injected = LogicalCounts(num_qubits=50, t_count=1000, ccz_count=7)
        b = CircuitBuilder()
        q = b.allocate()
        b.t(q)
        b.account_for_estimates(injected)
        counts = b.finish().logical_counts()
        assert counts.t_count == 1001
        assert counts.ccz_count == 7
        assert counts.num_qubits == 51  # aux qubits add to the traced width


class TestAdjoint:
    def test_adjoint_of_clifford_t_sequence(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.start_recording()
        b.h(q[0]); b.t(q[0]); b.s(q[1]); b.cx(q[0], q[1])
        tape = b.stop_recording()
        b.emit_adjoint(tape)
        ops = [ins[0] for ins in b.finish().instructions]
        # forward: H T S CX | adjoint: CX S_ADJ T_ADJ H
        assert ops[2:] == [Op.H, Op.T, Op.S, Op.CX, Op.CX, Op.S_ADJ, Op.T_ADJ, Op.H]

    def test_adjoint_flips_and_to_uncompute(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.start_recording()
        t = b.and_compute(q[0], q[1])
        tape = b.stop_recording()
        b.emit_adjoint(tape)
        counts = b.finish().logical_counts()
        assert counts.ccix_count == 1
        assert counts.measurement_count == 1

    def test_adjoint_restores_allocation_state(self):
        b = CircuitBuilder()
        q = b.allocate_register(2)
        b.start_recording()
        anc = b.allocate()
        b.cx(q[0], anc)
        tape = b.stop_recording()
        before = b.num_active_qubits
        b.emit_adjoint(tape)
        assert b.num_active_qubits == before - 1  # anc released by adjoint

    def test_adjoint_of_measurement_rejected(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.start_recording()
        b.measure(q)
        tape = b.stop_recording()
        with pytest.raises(CircuitError, match="irreversible"):
            b.emit_adjoint(tape)

    def test_nested_recording(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.start_recording()
        b.x(q)
        b.start_recording()
        b.t(q)
        inner = b.stop_recording()
        outer = b.stop_recording()
        assert len(inner) == 1
        assert len(outer) == 2

    def test_unmatched_stop_recording(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError, match="without"):
            b.stop_recording()

    def test_rotation_adjoint_negates_angle(self):
        b = CircuitBuilder()
        q = b.allocate()
        b.start_recording()
        b.rz(0.7, q)
        tape = b.stop_recording()
        b.emit_adjoint(tape)
        instructions = list(b.finish().instructions)
        assert instructions[-1][4] == pytest.approx(-0.7)


class TestAllocatorFreeList:
    """Regression tests for free-list handling around emit_adjoint.

    Resurrecting a released id (adjoint of a RELEASE) used to leave the id
    on the free list while active; the stale entry was later popped and
    silently discarded by allocate(), and repeated record/adjoint cycles
    grew the free list with duplicates. The allocator now keeps the free
    list to inactive ids only and retains (never drops) anything it skips.
    """

    def _release_and_resurrect(self, b, q):
        b.start_recording()
        b.release(q)
        tape = b.stop_recording()
        b.emit_adjoint(tape)  # q is active again

    def test_resurrected_id_leaves_free_list(self):
        b = CircuitBuilder()
        q = b.allocate()
        self._release_and_resurrect(b, q)
        assert q not in b._free
        assert b.num_active_qubits == 1

    def test_allocate_after_adjoint_mints_fresh_id_without_corruption(self):
        b = CircuitBuilder()
        q = b.allocate()
        self._release_and_resurrect(b, q)
        fresh = b.allocate()
        assert fresh != q
        assert b.num_active_qubits == 2
        # Both ids stay usable and releasable exactly once.
        b.release(q)
        b.release(fresh)
        assert sorted(b._free) == sorted({q, fresh})

    def test_repeated_adjoint_cycles_do_not_grow_free_list(self):
        b = CircuitBuilder()
        q = b.allocate()
        for _ in range(10):
            self._release_and_resurrect(b, q)
        assert b._free == []
        b.release(q)
        assert b._free == [q]
        # The released id is reused, not replaced by a fresh one.
        assert b.allocate() == q
        assert b._next_id == 1

    def test_released_then_resurrected_then_released_is_reusable(self):
        b = CircuitBuilder()
        a = b.allocate()
        keep = b.allocate()
        self._release_and_resurrect(b, a)
        b.release(a)
        # a must come back before any fresh id is minted.
        assert b.allocate() == a
        b.cx(a, keep)  # both operable
        circuit = b.finish()
        assert circuit.logical_counts().num_qubits == 2

    def test_skipped_active_entry_is_retained(self):
        # Defensive path: hand-craft a free list containing an active id
        # (not reachable through the public API anymore) and check the
        # allocator retains it instead of dropping it.
        b = CircuitBuilder()
        q = b.allocate()
        b._free.append(q)  # simulate a stale entry for an active qubit
        fresh = b.allocate()
        assert fresh != q
        assert q in b._free  # retained, not silently discarded


class TestValidate:
    def test_valid_circuit_passes(self):
        b = CircuitBuilder()
        q = b.allocate_register(3)
        b.ccx(*q)
        t = b.and_compute(q[0], q[1])
        b.and_uncompute(q[0], q[1], t)
        b.measure(q[2])
        validate(b.finish())

    def test_detects_dangling_and(self):
        from repro.ir.circuit import Circuit

        # Hand-build a stream that releases an AND target without uncompute.
        instructions = [
            (Op.ALLOC, 0, -1, -1, 0.0),
            (Op.ALLOC, 1, -1, -1, 0.0),
            (Op.ALLOC, 2, -1, -1, 0.0),
            (Op.AND, 0, 1, 2, 0.0),
            (Op.RELEASE, 2, -1, -1, 0.0),
        ]
        with pytest.raises(CircuitError, match="without uncompute"):
            validate(Circuit(instructions))

    def test_detects_use_of_released_qubit(self):
        from repro.ir.circuit import Circuit

        instructions = [
            (Op.ALLOC, 0, -1, -1, 0.0),
            (Op.RELEASE, 0, -1, -1, 0.0),
            (Op.X, 0, -1, -1, 0.0),
        ]
        with pytest.raises(CircuitError, match="not allocated"):
            validate(Circuit(instructions))

    def test_detects_double_alloc(self):
        from repro.ir.circuit import Circuit

        instructions = [
            (Op.ALLOC, 0, -1, -1, 0.0),
            (Op.ALLOC, 0, -1, -1, 0.0),
        ]
        with pytest.raises(CircuitError, match="already allocated"):
            validate(Circuit(instructions))


@given(st.lists(st.sampled_from(["t", "ccz", "and", "measure", "rz"]), max_size=60))
def test_property_tracer_tallies_match_manual_count(ops):
    """Tracer tallies equal a straightforward manual count of emitted ops."""
    b = CircuitBuilder()
    q = b.allocate_register(3)
    expect = {"t": 0, "ccz": 0, "ccix": 0, "meas": 0, "rot": 0}
    for op in ops:
        if op == "t":
            b.t(q[0]); expect["t"] += 1
        elif op == "ccz":
            b.ccz(*q); expect["ccz"] += 1
        elif op == "and":
            t = b.and_compute(q[0], q[1])
            b.and_uncompute(q[0], q[1], t)
            expect["ccix"] += 1; expect["meas"] += 1
        elif op == "measure":
            b.measure(q[2]); expect["meas"] += 1
        elif op == "rz":
            b.rz(0.37, q[1]); expect["rot"] += 1
    counts = b.finish().logical_counts()
    assert counts.t_count == expect["t"]
    assert counts.ccz_count == expect["ccz"]
    assert counts.ccix_count == expect["ccix"]
    assert counts.measurement_count == expect["meas"]
    assert counts.rotation_count == expect["rot"]
    assert counts.rotation_depth == expect["rot"]  # all on one qubit
